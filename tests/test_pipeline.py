"""Tests for :mod:`repro.pipeline` — declarative consensus pipelines.

Covers the three satellite requirements: a golden end-to-end Figure 3
style run on the synthetic 2-D dataset, config-validation errors with
actionable messages, and bit-identical results across ``REPRO_JOBS``
settings — plus the CLI front door (``repro pipeline run/validate``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.pipeline import (
    PipelineConfigError,
    load_config,
    parse_config,
    run_pipeline,
)

FIG3_RAW = {
    "pipeline": {"name": "fig3", "seed": 0},
    "dataset": {"source": "seven-groups"},
    "base": [
        {
            "clusterer": "linkage",
            "params": {"k": 7},
            "sweep": {"method": ["single", "complete", "average"]},
        },
        {"clusterer": "kmeans", "params": {"k": 7}, "runs": 2, "missing_rate": 0.1},
    ],
    "aggregate": {"method": "agglomerative"},
    "score": {"metrics": ["ari", "classification-error", "disagreement"]},
}


def fig3_config():
    return parse_config(json.loads(json.dumps(FIG3_RAW)))


# ---------------------------------------------------------------------------
# Golden end-to-end run (Figure 3 scenario)
# ---------------------------------------------------------------------------


def test_fig3_style_run_recovers_structure() -> None:
    result = run_pipeline(fig3_config())
    # 3 linkage variants + 2 kmeans runs.
    assert result.m == 5
    assert [run.clusterer for run in result.bases] == [
        "linkage",
        "linkage",
        "linkage",
        "kmeans",
        "kmeans",
    ]
    # The sweep parameters are reported per job, in config order.
    assert [run.params.get("method") for run in result.bases[:3]] == [
        "single",
        "complete",
        "average",
    ]
    # Missing-label injection hit the kmeans columns only.
    assert all(run.missing == 0 for run in result.bases[:3])
    assert all(run.missing > 0 for run in result.bases[3:])
    # The aggregation recovers most of the seven-group structure even
    # though every base clusterer is broken in its own way (Fig. 3).
    assert result.scores["ari"] > 0.6
    assert result.scores["classification-error"] < 0.35
    assert result.scores["disagreement"] == pytest.approx(result.disagreements)
    report = result.to_dict()
    assert report["dataset"]["n"] == result.n
    assert len(report["labels"]) == result.n
    assert "fig3" in result.render()


def test_categorical_dataset_needs_no_base_stage() -> None:
    raw = {
        "dataset": {"source": "votes"},
        "aggregate": {"method": "agglomerative"},
        "score": {"metrics": ["classification-error"]},
    }
    result = run_pipeline(parse_config(raw))
    assert result.bases == ()
    assert result.m == 16  # the 16 roll-call attributes are the inputs
    assert result.k == 2
    assert result.scores["classification-error"] < 0.2


def test_baseline_methods_run_through_pipeline() -> None:
    raw = {
        "dataset": {"source": "votes"},
        "aggregate": {"method": "cspa", "params": {"k": 2}},
        "score": {"metrics": ["disagreement"]},
    }
    result = run_pipeline(parse_config(raw))
    assert result.method == "cspa"
    assert result.k == 2
    assert result.disagreements is not None


# ---------------------------------------------------------------------------
# Determinism (seed stability across REPRO_JOBS)
# ---------------------------------------------------------------------------


def test_same_seed_is_bit_identical() -> None:
    first = run_pipeline(fig3_config())
    second = run_pipeline(fig3_config())
    assert np.array_equal(first.clustering.labels, second.clustering.labels)
    assert first.scores == second.scores


def test_different_seed_changes_base_clusterings() -> None:
    raw = json.loads(json.dumps(FIG3_RAW))
    raw["pipeline"]["seed"] = 12345
    shifted = run_pipeline(parse_config(raw))
    base = run_pipeline(fig3_config())
    # kmeans restarts draw from the per-job streams, so the injected
    # missing pattern or the consensus itself must differ.
    assert [run.missing for run in shifted.bases] != [
        run.missing for run in base.bases
    ] or not np.array_equal(shifted.clustering.labels, base.clustering.labels)


def test_bit_identity_across_worker_counts(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.setenv("REPRO_JOBS", "1")
    serial = run_pipeline(fig3_config(), n_jobs=None)
    monkeypatch.setenv("REPRO_JOBS", "2")
    parallel = run_pipeline(fig3_config(), n_jobs=None)
    assert np.array_equal(serial.clustering.labels, parallel.clustering.labels)
    assert serial.scores == parallel.scores
    strip = lambda run: {k: v for k, v in run.items() if k != "elapsed_seconds"}  # noqa: E731
    assert [strip(r) for r in serial.to_dict()["bases"]] == [
        strip(r) for r in parallel.to_dict()["bases"]
    ]


# ---------------------------------------------------------------------------
# Config validation errors (actionable messages)
# ---------------------------------------------------------------------------


def test_missing_dataset_section() -> None:
    with pytest.raises(PipelineConfigError, match=r"missing the required \[dataset\]"):
        parse_config({"aggregate": {"method": "balls"}})


def test_unknown_dataset_source() -> None:
    with pytest.raises(PipelineConfigError, match="unknown dataset source 'iris'"):
        parse_config({"dataset": {"source": "iris"}})


def test_unknown_aggregate_method_lists_choices() -> None:
    raw = {"dataset": {"source": "votes"}, "aggregate": {"method": "majority"}}
    with pytest.raises(PipelineConfigError) as excinfo:
        parse_config(raw)
    assert "unknown method 'majority'" in str(excinfo.value)


def test_unknown_clusterer_is_prefixed_with_entry() -> None:
    raw = {
        "dataset": {"source": "seven-groups"},
        "base": [{"clusterer": "spectral"}],
    }
    with pytest.raises(PipelineConfigError, match=r"\[\[base\]\] entry #1"):
        parse_config(raw)


def test_clusterer_dataset_kind_mismatch() -> None:
    raw = {
        "dataset": {"source": "votes"},
        "base": [{"clusterer": "kmeans", "params": {"k": 2}}],
    }
    with pytest.raises(PipelineConfigError, match="consumes points data"):
        parse_config(raw)


def test_bad_sweep_grid() -> None:
    raw = {
        "dataset": {"source": "seven-groups"},
        "base": [{"clusterer": "kmeans", "params": {"k": 7}, "sweep": {"k": []}}],
    }
    with pytest.raises(PipelineConfigError, match="non-empty"):
        parse_config(raw)


def test_sweep_over_unknown_parameter() -> None:
    raw = {
        "dataset": {"source": "seven-groups"},
        "base": [{"clusterer": "kmeans", "sweep": {"klusters": [3, 5]}}],
    }
    with pytest.raises(PipelineConfigError, match="unknown parameter"):
        parse_config(raw)


def test_missing_required_clusterer_parameter() -> None:
    raw = {
        "dataset": {"source": "seven-groups"},
        "base": [{"clusterer": "kmeans"}],
    }
    with pytest.raises(PipelineConfigError, match="requires parameter"):
        parse_config(raw)


def test_points_dataset_requires_bases() -> None:
    raw = {"dataset": {"source": "seven-groups"}}
    with pytest.raises(PipelineConfigError, match="at least\none|at least"):
        parse_config(raw)


def test_unknown_metric_lists_choices() -> None:
    raw = {
        "dataset": {"source": "votes"},
        "score": {"metrics": ["silhouette"]},
    }
    with pytest.raises(PipelineConfigError, match="unknown metric 'silhouette'"):
        parse_config(raw)


def test_unknown_base_key_rejected() -> None:
    raw = {
        "dataset": {"source": "seven-groups"},
        "base": [{"clusterer": "kmeans", "params": {"k": 3}, "repeat": 4}],
    }
    with pytest.raises(PipelineConfigError, match="unknown key"):
        parse_config(raw)


def test_collapse_unsupported_method_rejected() -> None:
    raw = {
        "dataset": {"source": "votes"},
        "aggregate": {"method": "best", "collapse": True},
    }
    with pytest.raises(PipelineConfigError, match="does not support collapse"):
        parse_config(raw)


def test_load_config_missing_file(tmp_path) -> None:
    with pytest.raises(PipelineConfigError, match="not found"):
        load_config(tmp_path / "nope.toml")


def test_load_config_bad_toml(tmp_path) -> None:
    path = tmp_path / "broken.toml"
    path.write_text("[dataset\nsource=")
    with pytest.raises(PipelineConfigError, match="not valid TOML"):
        load_config(path)


# ---------------------------------------------------------------------------
# CLI front door and shipped example configs
# ---------------------------------------------------------------------------


def _write_config(tmp_path, text: str) -> str:
    path = tmp_path / "pipeline.toml"
    path.write_text(text)
    return str(path)


MINIMAL_TOML = """
[pipeline]
name = "cli-votes"
seed = 0

[dataset]
source = "votes"

[aggregate]
method = "agglomerative"

[score]
metrics = ["classification-error"]
"""


def test_cli_pipeline_validate(tmp_path, capsys) -> None:
    path = _write_config(tmp_path, MINIMAL_TOML)
    assert main(["pipeline", "validate", path]) == 0
    out = capsys.readouterr().out
    assert "cli-votes" in out
    assert "agglomerative" in out


def test_cli_pipeline_run_json_and_out(tmp_path, capsys) -> None:
    path = _write_config(tmp_path, MINIMAL_TOML)
    out_path = tmp_path / "report.json"
    assert main(["pipeline", "run", path, "--json", "--out", str(out_path)]) == 0
    stdout = capsys.readouterr().out
    report = json.loads(stdout)
    assert report["pipeline"] == "cli-votes"
    assert report["aggregate"]["k"] == 2
    assert json.loads(out_path.read_text()) == report


def test_cli_pipeline_run_trace(tmp_path, capsys) -> None:
    path = _write_config(tmp_path, MINIMAL_TOML)
    assert main(["pipeline", "run", path, "--trace"]) == 0
    out = capsys.readouterr().out
    assert "pipeline.dataset" in out
    assert "pipeline.aggregate" in out


def test_cli_pipeline_config_error_is_friendly(tmp_path, capsys) -> None:
    path = _write_config(tmp_path, "[dataset]\nsource = 'iris'\n")
    assert main(["pipeline", "run", path]) == 2
    err = capsys.readouterr().err
    assert "unknown dataset source" in err
    assert "Traceback" not in err


def test_shipped_example_configs_validate() -> None:
    from pathlib import Path

    examples = Path(__file__).resolve().parents[1] / "examples"
    configs = sorted(examples.glob("*.toml"))
    assert configs, "no example pipeline configs shipped"
    for config_path in configs:
        config = load_config(config_path)
        assert config.metrics
