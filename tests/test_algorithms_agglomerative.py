"""Tests for the AGGLOMERATIVE algorithm (repro.algorithms.agglomerative)."""

import numpy as np
import pytest

from repro import Clustering
from repro.core import CorrelationInstance
from repro.algorithms import agglomerative

from conftest import random_aggregation_instance


def reference_agglomerative(instance, threshold=0.5, force_k=None):
    """Straightforward O(n^3) re-implementation used as an oracle."""
    X = np.asarray(instance.X, dtype=np.float64)
    n = instance.n
    clusters = [[i] for i in range(n)]
    while len(clusters) > 1:
        best = None
        best_value = np.inf
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                value = X[np.ix_(clusters[i], clusters[j])].mean()
                if value < best_value - 1e-12:
                    best_value = value
                    best = (i, j)
        if force_k is None and best_value >= threshold:
            break
        if force_k is not None and len(clusters) <= force_k:
            break
        i, j = best
        clusters[i] = clusters[i] + clusters[j]
        del clusters[j]
    labels = np.empty(n, dtype=np.int64)
    for cluster_id, members in enumerate(clusters):
        labels[members] = cluster_id
    return Clustering(labels)


class TestBasics:
    def test_figure1_optimum(self, figure1_instance):
        assert agglomerative(figure1_instance) == Clustering([0, 1, 0, 1, 2, 2])

    def test_single_object(self):
        instance = CorrelationInstance.from_distances(np.zeros((1, 1)))
        assert agglomerative(instance).k == 1

    def test_identical_objects_merge_fully(self):
        matrix = np.zeros((10, 3), dtype=np.int32)
        instance = CorrelationInstance.from_label_matrix(matrix)
        assert agglomerative(instance).k == 1

    def test_distinct_objects_stay_apart(self):
        matrix = np.tile(np.arange(8, dtype=np.int32)[:, None], (1, 3))
        instance = CorrelationInstance.from_label_matrix(matrix)
        assert agglomerative(instance).k == 8

    def test_force_k(self, figure1_instance):
        for k in (1, 2, 3, 4, 6):
            assert agglomerative(figure1_instance, force_k=k).k == k

    def test_force_k_out_of_range(self, figure1_instance):
        with pytest.raises(ValueError):
            agglomerative(figure1_instance, force_k=0)
        with pytest.raises(ValueError):
            agglomerative(figure1_instance, force_k=7)

    def test_average_distance_within_clusters_below_half(self):
        """The paper's key property: every produced cluster has average
        pairwise distance at most 1/2 ("the opinion of the majority is
        respected on average")."""
        for seed in range(6):
            _, instance = random_aggregation_instance(n=25, m=5, k=3, seed=seed)
            result = agglomerative(instance)
            X = instance.X
            for members in result.clusters():
                if members.size < 2:
                    continue
                sub = X[np.ix_(members, members)]
                pairs = members.size * (members.size - 1)
                assert sub.sum() / pairs <= 0.5 + 1e-9


def random_float_instance(n: int, seed: int) -> CorrelationInstance:
    """A generic (tie-free) correlation instance with uniform distances."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.05, 0.95, size=(n, n))
    X = (X + X.T) / 2.0
    np.fill_diagonal(X, 0.0)
    return CorrelationInstance.from_distances(X)


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_cubic_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 16))
        instance = random_float_instance(n, seed + 50)
        ours = agglomerative(instance)
        oracle = reference_agglomerative(instance)
        assert ours == oracle

    @pytest.mark.parametrize("seed", range(5))
    def test_force_k_matches_reference(self, seed):
        instance = random_float_instance(12, seed)
        for k in (2, 4, 6):
            ours = agglomerative(instance, force_k=k)
            oracle = reference_agglomerative(instance, force_k=k)
            assert ours == oracle

    @pytest.mark.parametrize("seed", range(10))
    def test_factor_two_for_three_clusterings(self, seed):
        """Paper §4: for m = 3 AGGLOMERATIVE is a 2-approximation."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 11))
        _, instance = random_aggregation_instance(n=n, m=3, k=3, seed=seed + 700)
        from repro.algorithms import exact_optimum

        _, optimal = exact_optimum(instance)
        cost = instance.cost(agglomerative(instance))
        if optimal == 0:
            assert cost == 0
        else:
            assert cost <= 2.0 * optimal + 1e-9

    def test_threshold_parameter(self, figure1_instance):
        # Threshold 0 forbids all merging; threshold 1.01 merges everything.
        assert agglomerative(figure1_instance, threshold=0.0).k == 6
        assert agglomerative(figure1_instance, threshold=1.01).k == 1
