"""Tests for the top-level aggregate() API (repro.core.aggregate)."""

import numpy as np
import pytest

from repro import Clustering, aggregate, available_methods
from repro.core.aggregate import resolve_inner
from repro.core.labels import MISSING, as_label_matrix

from conftest import planted_instance


ALL_METHODS = (
    "best",
    "balls",
    "agglomerative",
    "furthest",
    "local-search",
    "annealing",
    "genetic",
    "sampling",
    "pivot",
    "cmsy",
    "sharded",
    "streaming",
    "portfolio",
    "exact",
)


class TestApi:
    def test_available_methods(self):
        assert set(available_methods()) == set(ALL_METHODS)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_method_runs_on_figure1(self, figure1_clusterings, method):
        result = aggregate(figure1_clusterings, method=method)
        assert result.clustering.n == 6
        assert result.method == method
        assert result.disagreements >= 5.0  # optimum of Figure 1

    @pytest.mark.parametrize(
        "method", ("agglomerative", "furthest", "local-search", "exact", "best")
    )
    def test_optimal_methods_find_figure1_optimum(
        self, figure1_clusterings, figure1_optimum, method
    ):
        result = aggregate(figure1_clusterings, method=method)
        assert result.clustering == figure1_optimum
        assert result.disagreements == pytest.approx(5.0)

    def test_unknown_method_rejected(self, figure1_clusterings):
        with pytest.raises(ValueError, match="unknown method"):
            aggregate(figure1_clusterings, method="magic")

    def test_accepts_label_matrix(self, figure1_clusterings):
        matrix = as_label_matrix(figure1_clusterings)
        result = aggregate(matrix, method="agglomerative")
        assert result.disagreements == pytest.approx(5.0)

    def test_accepts_categorical_dataset(self):
        from repro.datasets import generate_votes

        dataset = generate_votes(n=80, rng=0)
        result = aggregate(dataset, method="agglomerative")
        assert result.clustering.n == 80

    def test_accepts_instance(self, figure1_instance):
        result = aggregate(figure1_instance, method="agglomerative")
        assert result.cost == pytest.approx(5.0 / 3.0)
        assert result.disagreements == pytest.approx(5.0)

    def test_best_rejects_raw_instance(self, figure1_instance):
        with pytest.raises(ValueError, match="input clusterings"):
            aggregate(figure1_instance, method="best")

    def test_result_fields(self, figure1_clusterings):
        result = aggregate(figure1_clusterings, method="local-search")
        assert result.k == result.clustering.k
        assert result.cost == pytest.approx(result.disagreements / 3)
        assert result.lower_bound is not None
        assert result.disagreement_lower_bound == pytest.approx(result.lower_bound * 3)
        assert result.elapsed_seconds >= 0
        assert "method=local-search" in result.summary()

    def test_lower_bound_skippable(self, figure1_clusterings):
        result = aggregate(figure1_clusterings, method="agglomerative", compute_lower_bound=False)
        assert result.lower_bound is None

    def test_params_forwarded(self, figure1_clusterings):
        result = aggregate(figure1_clusterings, method="balls", alpha=0.4)
        assert result.params == {"alpha": 0.4}

    def test_sampling_inner_by_name(self, figure1_clusterings):
        result = aggregate(
            figure1_clusterings, method="sampling", inner="local-search", sample_size=6, rng=0
        )
        assert result.disagreements == pytest.approx(5.0)

    def test_resolve_inner_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_inner("nope")

    def test_resolve_inner_accepts_callable(self):
        fn = resolve_inner(lambda instance: Clustering.singletons(instance.n))
        assert callable(fn)


class TestBehaviour:
    def test_planted_clusters_recovered(self):
        truth, matrix = planted_instance(n=60, m=7, groups=4, flip=0.15, seed=0)
        for method in ("agglomerative", "furthest", "local-search"):
            result = aggregate(matrix, method=method)
            assert result.clustering == Clustering(truth), method

    def test_identical_inputs_returned_exactly(self):
        base = Clustering([0, 0, 1, 1, 2])
        result = aggregate([base, base, base], method="agglomerative")
        assert result.clustering == base
        assert result.disagreements == 0.0

    def test_single_input_clustering(self):
        base = Clustering([0, 1, 1, 2])
        result = aggregate([base], method="local-search")
        assert result.clustering == base

    def test_missing_values_supported_end_to_end(self):
        matrix = np.array(
            [
                [0, 0, 0],
                [0, 0, MISSING],
                [1, 1, 1],
                [1, MISSING, 1],
            ],
            dtype=np.int32,
        )
        result = aggregate(matrix, method="agglomerative", p=0.5)
        assert result.clustering == Clustering([0, 0, 1, 1])

    def test_number_of_clusters_is_discovered(self):
        # The "identifying the correct number of clusters" property of §2:
        # no method is told k, yet the consensus has the planted k.
        truth, matrix = planted_instance(n=80, m=9, groups=5, flip=0.1, seed=3)
        result = aggregate(matrix, method="agglomerative")
        assert result.k == 5

    def test_all_methods_beat_or_match_worst_input(self, figure1_clusterings):
        from repro.core import total_disagreement

        worst = max(
            total_disagreement(figure1_clusterings, c) for c in figure1_clusterings
        )
        for method in ALL_METHODS:
            result = aggregate(figure1_clusterings, method=method)
            assert result.disagreements <= worst
