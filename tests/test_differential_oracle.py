"""Differential testing sweep: every heuristic vs the exact oracle.

Each case draws a small random aggregation problem (``n <= 7`` objects, so
:func:`repro.algorithms.exact.exact_optimum` enumerates the ground truth
in milliseconds), optionally punches a deterministic missing-value pattern
into the label matrix, and then checks every paper algorithm against the
optimum:

- no algorithm ever reports a cost *below* the optimum (they all return
  feasible clusterings scored by the same objective);
- BALLS at ``THEORY_ALPHA`` stays within its proven factor-3 guarantee;
- AGGLOMERATIVE stays within factor 2 on ``m = 3`` inputs (the paper's
  majority-respecting bound);
- LOCALSEARCH never ends above its starting cost, from any start;
- ``aggregate(method=...)`` reports exactly the cost of the underlying
  algorithm it dispatches to.

Every assertion message embeds the generating ``(n, m, k, seed,
missing)`` tuple so a failing case reproduces with a one-liner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.agglomerative import agglomerative
from repro.algorithms.balls import THEORY_ALPHA, balls
from repro.algorithms.exact import exact_optimum
from repro.algorithms.furthest import furthest
from repro.algorithms.local_search import local_search
from repro.algorithms.sampling import sampling
from repro.core.aggregate import aggregate
from repro.core.instance import CorrelationInstance
from repro.core.labels import MISSING
from repro.core.partition import Clustering

_EPS = 1e-9

# The sweep grid: every (n, m, missing) combination for two seeds each.
CASES = [
    (n, m, seed, missing)
    for n in (3, 4, 5, 6, 7)
    for m in (2, 3, 5)
    for seed in (0, 1)
    for missing in (0.0, 0.25)
]


def _case_id(case: tuple[int, int, int, float]) -> str:
    n, m, seed, missing = case
    return f"n{n}-m{m}-s{seed}-miss{missing}"


def _build_case(
    n: int, m: int, seed: int, missing: float
) -> tuple[np.ndarray, CorrelationInstance, int]:
    """A reproducible random aggregation problem, possibly with holes."""
    rng = np.random.default_rng(seed * 10_007 + n * 101 + m)
    k = int(rng.integers(2, max(3, n)))
    matrix = rng.integers(0, k, size=(n, m)).astype(np.int64)
    if missing > 0.0:
        holes = rng.random(size=matrix.shape) < missing
        holes[0, :] = False  # a fully-missing input clustering is invalid
        matrix[holes] = MISSING
    return matrix, CorrelationInstance.from_label_matrix(matrix), k


@pytest.mark.parametrize("case", CASES, ids=_case_id)
def test_heuristics_against_the_exact_oracle(case: tuple[int, int, int, float]) -> None:
    n, m, seed, missing = case
    matrix, instance, k = _build_case(n, m, seed, missing)
    context = f"case n={n} m={m} k={k} seed={seed} missing={missing}"

    _, opt_cost = exact_optimum(instance)

    heuristics = {
        "balls": balls(instance, alpha=THEORY_ALPHA),
        "agglomerative": agglomerative(instance),
        "furthest": furthest(instance),
        "local-search": local_search(instance, rng=seed),
        "sampling": sampling(instance, inner=agglomerative, sample_size=n, rng=seed),
    }
    costs = {name: instance.cost(clustering) for name, clustering in heuristics.items()}

    # Feasibility: the oracle is a true lower bound for every heuristic.
    for name, cost in costs.items():
        assert cost >= opt_cost - _EPS, (
            f"{name} reported cost {cost} below the exact optimum {opt_cost} — "
            f"oracle or objective bug ({context})"
        )

    # BALLS: Theorem 1's 3-approximation at the proof's alpha.
    assert costs["balls"] <= 3.0 * opt_cost + _EPS, (
        f"balls(alpha={THEORY_ALPHA}) cost {costs['balls']} exceeds 3x the "
        f"optimum {opt_cost} ({context})"
    )

    # AGGLOMERATIVE: factor 2 on three input clusterings.
    if m == 3:
        assert costs["agglomerative"] <= 2.0 * opt_cost + _EPS, (
            f"agglomerative cost {costs['agglomerative']} exceeds 2x the "
            f"optimum {opt_cost} on an m=3 instance ({context})"
        )


@pytest.mark.parametrize("case", CASES[:: len(CASES) // 15 or 1], ids=_case_id)
def test_local_search_never_worsens_any_start(case: tuple[int, int, int, float]) -> None:
    n, m, seed, missing = case
    _, instance, k = _build_case(n, m, seed, missing)
    context = f"case n={n} m={m} k={k} seed={seed} missing={missing}"

    rng = np.random.default_rng(seed)
    starts = {
        "singletons": Clustering.singletons(n),
        "one-cluster": Clustering.single_cluster(n),
        "random": Clustering(rng.integers(0, max(2, n // 2), size=n)),
        "balls": balls(instance),
    }
    for label, start in starts.items():
        start_cost = instance.cost(start)
        refined = local_search(instance, initial=start)
        refined_cost = instance.cost(refined)
        assert refined_cost <= start_cost + _EPS, (
            f"local_search from {label} start rose from {start_cost} to "
            f"{refined_cost} ({context})"
        )


@pytest.mark.parametrize("method", ["balls", "agglomerative", "furthest", "local-search"])
def test_aggregate_reports_the_dispatched_algorithm_cost(method: str) -> None:
    matrix, instance, _ = _build_case(n=7, m=3, seed=0, missing=0.0)
    direct = {
        "balls": balls(instance),
        "agglomerative": agglomerative(instance),
        "furthest": furthest(instance),
        "local-search": local_search(instance, rng=0),
    }[method]
    params = {"rng": 0} if method == "local-search" else {}
    result = aggregate(matrix, method=method, **params)
    assert result.cost == pytest.approx(instance.cost(direct))
    assert np.array_equal(result.clustering.labels, direct.labels)


def test_exact_oracle_matches_figure1(figure1_instance, figure1_optimum) -> None:
    """Anchor the oracle itself against the paper's hand-checked example."""
    best, cost = exact_optimum(figure1_instance)
    assert cost == pytest.approx(figure1_instance.cost(figure1_optimum))
    assert np.array_equal(best.labels, figure1_optimum.labels)
