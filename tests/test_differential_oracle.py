"""Differential testing sweep: every heuristic vs the exact oracle.

Each case draws a small random aggregation problem (``n <= 7`` objects, so
:func:`repro.algorithms.exact.exact_optimum` enumerates the ground truth
in milliseconds), optionally punches a deterministic missing-value pattern
into the label matrix, and then checks every paper algorithm against the
optimum:

- no algorithm ever reports a cost *below* the optimum (they all return
  feasible clusterings scored by the same objective);
- BALLS at ``THEORY_ALPHA`` stays within its proven factor-3 guarantee;
- AGGLOMERATIVE stays within factor 2 on ``m = 3`` inputs (the paper's
  majority-respecting bound);
- LOCALSEARCH never ends above its starting cost, from any start;
- PIVOT and CMSY are *expected*-factor algorithms, so their guarantees
  are checked statistically: over a fixed seed sequence of 200+ trials
  the mean cost must sit within a Hoeffding-style confidence margin of
  the proven factor (3 for PIVOT, 2.06 for CMSY's LP tier) — never on a
  single run, which can legitimately exceed the factor;
- ``aggregate(method=...)`` reports exactly the cost of the underlying
  algorithm it dispatches to.

Every assertion message embeds the generating ``(n, m, k, seed,
missing)`` tuple *and* the label matrix itself, so a failing case can be
replayed with a one-liner even if the generator recipe later changes.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms.agglomerative import agglomerative
from repro.algorithms.balls import THEORY_ALPHA, balls
from repro.algorithms.exact import exact_optimum
from repro.algorithms.furthest import furthest
from repro.algorithms.local_search import local_search
from repro.algorithms.pivot import DEFAULT_LP_THRESHOLD, cmsy, pivot
from repro.algorithms.sampling import sampling
from repro.core.aggregate import aggregate
from repro.core.instance import CorrelationInstance
from repro.core.partition import Clustering

from strategies import oracle_case

_EPS = 1e-9

# The sweep grid: every (n, m, missing) combination for two seeds each.
CASES = [
    (n, m, seed, missing)
    for n in (3, 4, 5, 6, 7)
    for m in (2, 3, 5)
    for seed in (0, 1)
    for missing in (0.0, 0.25)
]


def _case_id(case: tuple[int, int, int, float]) -> str:
    n, m, seed, missing = case
    return f"n{n}-m{m}-s{seed}-miss{missing}"


def _build_case(
    n: int, m: int, seed: int, missing: float
) -> tuple[np.ndarray, CorrelationInstance, int]:
    """A reproducible random aggregation problem, possibly with holes."""
    matrix, k = oracle_case(n, m, seed, missing)
    return matrix, CorrelationInstance.from_label_matrix(matrix), k


def _context(n: int, m: int, k: int, seed: int, missing: float, matrix: np.ndarray) -> str:
    """Assertion context: the generating tuple plus the label matrix itself,
    so a failing case can be replayed without re-running the generator."""
    return (
        f"case n={n} m={m} k={k} seed={seed} missing={missing} "
        f"matrix={matrix.tolist()}"
    )


@pytest.mark.parametrize("case", CASES, ids=_case_id)
def test_heuristics_against_the_exact_oracle(case: tuple[int, int, int, float]) -> None:
    n, m, seed, missing = case
    matrix, instance, k = _build_case(n, m, seed, missing)
    context = _context(n, m, k, seed, missing, matrix)

    _, opt_cost = exact_optimum(instance)

    heuristics = {
        "balls": balls(instance, alpha=THEORY_ALPHA),
        "agglomerative": agglomerative(instance),
        "furthest": furthest(instance),
        "local-search": local_search(instance, rng=seed),
        "sampling": sampling(instance, inner=agglomerative, sample_size=n, rng=seed),
        "pivot": pivot(instance, rng=seed),
        "cmsy": cmsy(instance, rng=seed),
    }
    costs = {name: instance.cost(clustering) for name, clustering in heuristics.items()}

    # Feasibility: the oracle is a true lower bound for every heuristic.
    for name, cost in costs.items():
        assert cost >= opt_cost - _EPS, (
            f"{name} reported cost {cost} below the exact optimum {opt_cost} — "
            f"oracle or objective bug ({context})"
        )

    # BALLS: Theorem 1's 3-approximation at the proof's alpha.
    assert costs["balls"] <= 3.0 * opt_cost + _EPS, (
        f"balls(alpha={THEORY_ALPHA}) cost {costs['balls']} exceeds 3x the "
        f"optimum {opt_cost} ({context})"
    )

    # AGGLOMERATIVE: factor 2 on three input clusterings.
    if m == 3:
        assert costs["agglomerative"] <= 2.0 * opt_cost + _EPS, (
            f"agglomerative cost {costs['agglomerative']} exceeds 2x the "
            f"optimum {opt_cost} on an m=3 instance ({context})"
        )


@pytest.mark.parametrize("case", CASES[:: len(CASES) // 15 or 1], ids=_case_id)
def test_local_search_never_worsens_any_start(case: tuple[int, int, int, float]) -> None:
    n, m, seed, missing = case
    matrix, instance, k = _build_case(n, m, seed, missing)
    context = _context(n, m, k, seed, missing, matrix)

    rng = np.random.default_rng(seed)
    starts = {
        "singletons": Clustering.singletons(n),
        "one-cluster": Clustering.single_cluster(n),
        "random": Clustering(rng.integers(0, max(2, n // 2), size=n)),
        "balls": balls(instance),
    }
    for label, start in starts.items():
        start_cost = instance.cost(start)
        refined = local_search(instance, initial=start)
        refined_cost = instance.cost(refined)
        assert refined_cost <= start_cost + _EPS, (
            f"local_search from {label} start rose from {start_cost} to "
            f"{refined_cost} ({context})"
        )


@pytest.mark.parametrize("method", ["balls", "agglomerative", "furthest", "local-search"])
def test_aggregate_reports_the_dispatched_algorithm_cost(method: str) -> None:
    matrix, instance, _ = _build_case(n=7, m=3, seed=0, missing=0.0)
    direct = {
        "balls": balls(instance),
        "agglomerative": agglomerative(instance),
        "furthest": furthest(instance),
        "local-search": local_search(instance, rng=0),
    }[method]
    params = {"rng": 0} if method == "local-search" else {}
    result = aggregate(matrix, method=method, **params)
    assert result.cost == pytest.approx(instance.cost(direct))
    assert np.array_equal(result.clustering.labels, direct.labels)


def test_exact_oracle_matches_figure1(figure1_instance, figure1_optimum) -> None:
    """Anchor the oracle itself against the paper's hand-checked example."""
    best, cost = exact_optimum(figure1_instance)
    assert cost == pytest.approx(figure1_instance.cost(figure1_optimum))
    assert np.array_equal(best.labels, figure1_optimum.labels)


# ---------------------------------------------------------------------------
# Statistical differential tests for the expected-factor algorithms.
#
# PIVOT's guarantee is E[cost] <= 3 * opt (Ailon-Charikar-Newman), and
# CMSY's LP tier gives E[cost] <= 2.06 * opt; single runs can and do
# exceed the factor, so these are checked on the *mean* over a fixed,
# deterministic seed sequence with an explicit confidence margin.
#
# Per trial the statistic is s = (cost - factor * opt) / pairs, where
# pairs = n * (n - 1) / 2 bounds both cost and opt, so s lies in
# [-factor, 1] — a spread of (factor + 1).  Under the guarantee
# E[s] <= 0, so by Hoeffding's inequality
#
#     P(mean(s) > margin) <= exp(-2 T margin^2 / spread^2)
#
# and margin = spread * sqrt(ln(1/delta) / (2 T)) bounds the false-alarm
# probability of this test by delta = 1e-6 even if the algorithm only
# *just* meets its guarantee.  With T = 216 trials the pivot margin is
# ~0.70 normalized disagreements per pair.
# ---------------------------------------------------------------------------

_STAT_GRID = [(n, m, seed) for n in (5, 6, 7) for m in (2, 3) for seed in (0, 1, 2)]
_TRIALS_PER_CASE = 12
_STAT_DELTA = 1e-6
_STAT_SEED = 1729  # fixed root: the whole trial sequence is deterministic


@pytest.fixture(scope="module")
def statistical_cases():
    """The trial instances with their exact optima, solved once."""
    cases = []
    for n, m, seed in _STAT_GRID:
        matrix, instance, _ = _build_case(n, m, seed, 0.0)
        _, opt = exact_optimum(instance)
        cases.append((matrix, instance, opt))
    return cases


def _hoeffding_margin(spread: float, trials: int, delta: float = _STAT_DELTA) -> float:
    return spread * math.sqrt(math.log(1.0 / delta) / (2.0 * trials))


def _mean_excess(statistical_cases, algorithm, factor: float) -> tuple[float, float, int]:
    """Mean of the normalized excess statistic over the full trial grid."""
    seeds = np.random.SeedSequence(_STAT_SEED).generate_state(
        len(statistical_cases) * _TRIALS_PER_CASE
    )
    stats = []
    index = 0
    for matrix, instance, opt in statistical_cases:
        pairs = instance.n * (instance.n - 1) / 2.0
        for _ in range(_TRIALS_PER_CASE):
            clustering = algorithm(matrix, rng=int(seeds[index]))
            index += 1
            cost = instance.cost(clustering)
            assert cost >= opt - _EPS, (
                f"cost {cost} below the exact optimum {opt} on "
                f"matrix={matrix.tolist()} — objective bug, not bad luck"
            )
            stats.append((cost - factor * opt) / pairs)
    trials = len(stats)
    return float(np.mean(stats)), _hoeffding_margin(factor + 1.0, trials), trials


def test_pivot_is_an_expected_3_approximation(statistical_cases) -> None:
    mean, margin, trials = _mean_excess(statistical_cases, pivot, factor=3.0)
    assert trials >= 200
    assert mean <= margin, (
        f"mean normalized excess {mean:.4f} over {trials} trials exceeds the "
        f"Hoeffding margin {margin:.4f} (delta={_STAT_DELTA}) — PIVOT is not "
        f"behaving as an expected 3-approximation"
    )


def test_cmsy_lp_tier_is_an_expected_2_06_approximation(statistical_cases) -> None:
    pytest.importorskip("scipy")  # the LP tier is what carries the 2.06 factor
    assert all(instance.n <= DEFAULT_LP_THRESHOLD for _, instance, _ in statistical_cases)
    mean, margin, trials = _mean_excess(statistical_cases, cmsy, factor=2.06)
    assert trials >= 200
    assert mean <= margin, (
        f"mean normalized excess {mean:.4f} over {trials} trials exceeds the "
        f"Hoeffding margin {margin:.4f} (delta={_STAT_DELTA}) — CMSY's LP "
        f"rounding is not behaving as an expected 2.06-approximation"
    )
