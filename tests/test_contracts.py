"""Runtime-contract tests: corrupt state and assert the contracts fire.

The autouse fixture in ``conftest.py`` enables contracts for every test
here, so constructor-level hooks (``CorrelationInstance``, ``Clustering``,
the streaming engine) are live without any per-test setup.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import Clustering
from repro.analysis.contracts import (
    ContractViolation,
    check_canonical_labels,
    check_distance_matrix,
    check_stream_drift,
    contracts,
    contracts_enabled,
    disable_contracts,
    enable_contracts,
    max_triangle_violation,
)
from repro.core import CorrelationInstance
from repro.core.labels import as_label_matrix
from repro.stream import IncrementalCorrelationInstance, StreamingAggregator

#: What `contracts_enabled()` reported at import time, i.e. outside any
#: test and before the autouse fixture runs (env-derived process default).
_PROCESS_DEFAULT = contracts_enabled()


# ---------------------------------------------------------------------------
# Toggling
# ---------------------------------------------------------------------------


def test_autouse_fixture_enables_contracts() -> None:
    assert contracts_enabled()


@pytest.mark.no_contracts
def test_no_contracts_marker_skips_the_fixture() -> None:
    # The fixture must not force-enable contracts here; we observe the
    # process default instead (False locally, True under REPRO_CONTRACTS=1).
    assert contracts_enabled() == _PROCESS_DEFAULT


def test_context_manager_restores_prior_state() -> None:
    assert contracts_enabled()
    with contracts(False):
        assert not contracts_enabled()
        with contracts(True):
            assert contracts_enabled()
        assert not contracts_enabled()
    assert contracts_enabled()


def test_enable_disable_functions() -> None:
    try:
        disable_contracts()
        assert not contracts_enabled()
        enable_contracts()
        assert contracts_enabled()
    finally:
        enable_contracts()


def test_env_var_enables_contracts_in_fresh_process() -> None:
    src = Path(__file__).resolve().parents[1] / "src"
    code = "from repro.analysis.contracts import contracts_enabled; print(contracts_enabled())"
    for value, expected in [("1", "True"), ("", "False"), ("0", "False"), ("yes", "True")]:
        env = {**os.environ, "REPRO_CONTRACTS": value, "PYTHONPATH": str(src)}
        result = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True, check=True
        )
        assert result.stdout.strip() == expected, f"REPRO_CONTRACTS={value!r}"


def test_violation_is_assertion_error() -> None:
    assert issubclass(ContractViolation, AssertionError)


# ---------------------------------------------------------------------------
# Distance-matrix contract
# ---------------------------------------------------------------------------


def _clean_matrix() -> np.ndarray:
    X = np.array(
        [[0.0, 0.4, 0.6], [0.4, 0.0, 0.5], [0.6, 0.5, 0.0]], dtype=np.float64
    )
    return X


def test_distance_matrix_accepts_well_formed() -> None:
    check_distance_matrix(_clean_matrix(), check_triangle=True)


@pytest.mark.parametrize(
    "corrupt, match",
    [
        (lambda X: X[:2], "square"),
        (lambda X: X.astype(np.int64), "floating"),
        (lambda X: _with(X, (1, 1), 0.3), "diagonal"),
        (lambda X: _with(X, (0, 1), 0.9), "symmetric"),
        (lambda X: _with_sym(X, (0, 1), -0.2), "lie in"),
        (lambda X: _with_sym(X, (0, 1), 1.7), "lie in"),
    ],
)
def test_distance_matrix_rejects_corruption(corrupt, match) -> None:
    with pytest.raises(ContractViolation, match=match):
        check_distance_matrix(corrupt(_clean_matrix()))


def _with(X: np.ndarray, index: tuple[int, int], value: float) -> np.ndarray:
    X = X.copy()
    X[index] = value
    return X


def _with_sym(X: np.ndarray, index: tuple[int, int], value: float) -> np.ndarray:
    i, j = index
    X = X.copy()
    X[i, j] = X[j, i] = value
    return X


def test_triangle_inequality_contract() -> None:
    # d(0,2)=1.0 > d(0,1)+d(1,2)=0.4: a clear metric violation.
    X = np.array(
        [[0.0, 0.2, 1.0], [0.2, 0.0, 0.2], [1.0, 0.2, 0.0]], dtype=np.float64
    )
    assert max_triangle_violation(X) == pytest.approx(0.6)
    check_distance_matrix(X)  # fine without the triangle sweep
    with pytest.raises(ContractViolation, match="triangle"):
        check_distance_matrix(X, check_triangle=True)


def test_instance_constructor_contract_fires(figure1_clusterings) -> None:
    good = CorrelationInstance.from_clusterings(figure1_clusterings)
    check_distance_matrix(good.X, check_triangle=True)

    bad = good.X.copy()
    bad[0, 1] = 0.9  # break symmetry
    with pytest.raises(ContractViolation, match="symmetric"):
        CorrelationInstance(bad, validate=False)
    with contracts(False):
        CorrelationInstance(bad, validate=False)  # hooks compiled out


def test_from_label_matrix_runs_triangle_contract(figure1_clusterings) -> None:
    matrix = as_label_matrix([c.labels for c in figure1_clusterings])
    instance = CorrelationInstance.from_label_matrix(matrix)
    assert max_triangle_violation(instance.X) <= 1e-12


# ---------------------------------------------------------------------------
# Canonical-labels contract
# ---------------------------------------------------------------------------


def test_canonical_labels_accepts_valid() -> None:
    check_canonical_labels(np.array([0, 0, 1, 2, 1], dtype=np.int32))
    check_canonical_labels(np.zeros(4, dtype=np.int64))


@pytest.mark.parametrize(
    "labels, match",
    [
        (np.array([[0, 1]]), "vector"),
        (np.array([], dtype=np.int64), "vector"),
        (np.array([0.0, 1.0]), "integers"),
        (np.array([0, -1]), "non-negative"),
        (np.array([0, 2, 2]), "dense"),
        (np.array([1, 0, 1]), "first appearance"),
    ],
)
def test_canonical_labels_rejects_corruption(labels, match) -> None:
    with pytest.raises(ContractViolation, match=match):
        check_canonical_labels(labels)


def test_clustering_constructor_satisfies_contract() -> None:
    # Arbitrary labels are canonicalized on the way in; the contract hook
    # in Clustering.__init__ re-validates that postcondition.
    c = Clustering([7, 7, 3, 9, 3])
    check_canonical_labels(c.labels)
    assert c.labels.tolist() == [0, 0, 1, 2, 1]


def test_clustering_contract_catches_broken_canonicalization(monkeypatch) -> None:
    from repro.core import partition

    monkeypatch.setattr(partition, "_canonicalize", lambda arr: arr.astype(np.int32))
    with pytest.raises(ContractViolation):
        Clustering([5, 5, 9])
    with contracts(False):
        Clustering([5, 5, 9])  # corruption goes unnoticed when disabled


# ---------------------------------------------------------------------------
# Streaming contracts
# ---------------------------------------------------------------------------


def test_stream_drift_tolerates_rounding() -> None:
    check_stream_drift(10.0 + 1e-9, 10.0, pairs=66.0)


def test_stream_drift_rejects_divergence() -> None:
    with pytest.raises(ContractViolation, match="drifted"):
        check_stream_drift(11.0, 10.0, pairs=66.0)


def test_incremental_distances_contract() -> None:
    inst = IncrementalCorrelationInstance(5)
    inst.observe(np.array([0, 0, 1, 1, 2]))
    inst.distances()  # well-formed: contract passes

    inst._separation[0, 1] = inst._separation[1, 0] = -3.0  # corrupt counts
    with pytest.raises(ContractViolation, match="lie in"):
        inst.distances()


def test_streaming_engine_runs_clean_under_contracts() -> None:
    rng = np.random.default_rng(7)
    engine = StreamingAggregator(12, rng=0)
    for _ in range(6):
        engine.observe(rng.integers(0, 3, size=12))
    assert engine.cost() >= 0.0


def test_streaming_engine_contract_catches_drifting_cost(monkeypatch) -> None:
    # Simulate broken incremental mass maintenance by skewing the cost the
    # warm path reads off the masses; observe() must trip the drift bound
    # against the from-scratch recomputation.
    from repro.core.objective import MoveEvaluator

    rng = np.random.default_rng(7)
    engine = StreamingAggregator(12, rng=0)
    for _ in range(4):
        engine.observe(rng.integers(0, 3, size=12))
    assert engine._evaluator is not None  # warm path active

    real = MoveEvaluator.total_cost_fast
    monkeypatch.setattr(MoveEvaluator, "total_cost_fast", lambda self: real(self) + 1.0)
    with pytest.raises(ContractViolation, match="drifted"):
        engine.observe(rng.integers(0, 3, size=12))
    with contracts(False):
        engine.observe(rng.integers(0, 3, size=12))  # unchecked when disabled
