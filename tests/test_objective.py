"""Tests for the incremental-cost machinery (repro.core.objective)."""

import numpy as np
import pytest

from repro import Clustering
from repro.core import CorrelationInstance
from repro.core.labels import MISSING
from repro.core.objective import ClusterCountTables, MoveEvaluator

from conftest import random_aggregation_instance


def explicit_mass(instance, labels, v):
    """Reference M(v, C_i) from the distance matrix."""
    X = instance.X
    out = {}
    for cluster in np.unique(labels[labels >= 0]):
        members = np.flatnonzero(labels == cluster)
        out[int(cluster)] = float(X[v, members].sum())
    return out


class TestMoveEvaluator:
    def test_initial_state(self, figure1_instance):
        evaluator = MoveEvaluator(figure1_instance, Clustering([0, 0, 1, 1, 2, 2]))
        assert evaluator.n == 6
        assert sorted(evaluator.active_slots().tolist()) == [0, 1, 2]

    def test_clustering_round_trip(self, figure1_instance):
        initial = Clustering([0, 1, 0, 1, 2, 2])
        evaluator = MoveEvaluator(figure1_instance, initial)
        assert evaluator.clustering() == initial

    def test_detach_attach_restores_state(self, figure1_instance):
        initial = Clustering([0, 0, 1, 1, 2, 2])
        evaluator = MoveEvaluator(figure1_instance, initial)
        origin = evaluator.detach(3)
        evaluator.attach(3, origin)
        assert evaluator.clustering() == initial

    def test_detach_last_member_frees_slot(self, figure1_instance):
        evaluator = MoveEvaluator(figure1_instance, Clustering([0, 0, 0, 0, 0, 1]))
        evaluator.detach(5)
        assert sorted(evaluator.active_slots().tolist()) == [0]

    def test_cannot_detach_twice(self, figure1_instance):
        evaluator = MoveEvaluator(figure1_instance, Clustering.singletons(6))
        evaluator.detach(0)
        with pytest.raises(RuntimeError):
            evaluator.detach(0)

    def test_cannot_attach_to_empty_slot(self, figure1_instance):
        evaluator = MoveEvaluator(figure1_instance, Clustering([0, 0, 0, 0, 0, 1]))
        evaluator.detach(5)  # slot 1 now empty
        with pytest.raises(ValueError):
            evaluator.attach(5, 1)

    def test_clustering_fails_while_detached(self, figure1_instance):
        evaluator = MoveEvaluator(figure1_instance, Clustering.singletons(6))
        evaluator.detach(2)
        with pytest.raises(RuntimeError):
            evaluator.clustering()

    def test_singleton_growth(self, figure1_instance):
        evaluator = MoveEvaluator(figure1_instance, Clustering.single_cluster(6))
        evaluator.detach(0)
        slot = evaluator.attach_singleton(0)
        assert evaluator.is_active(slot)
        assert evaluator.clustering().k == 2

    def test_placement_scores_match_explicit_costs(self):
        _, instance = random_aggregation_instance(n=15, m=4, k=3, seed=11)
        labels = np.random.default_rng(0).integers(0, 3, size=15)
        evaluator = MoveEvaluator(instance, Clustering(labels))
        v = 7
        evaluator.detach(v)
        slots, scores, singleton = evaluator.placement_scores(v)
        # Reconstruct the true costs: d(v, C_i) = M + sum_others (|C| - M).
        current = evaluator._labels.copy()
        masses = explicit_mass(instance, current, v)
        sizes = {s: int((current == s).sum()) for s in masses}
        total_elsewhere = sum(sizes[s] - masses[s] for s in masses)
        true_costs = {
            s: masses[s] + total_elsewhere - (sizes[s] - masses[s]) for s in masses
        }
        singleton_cost = total_elsewhere
        # Scores are offset by a common term; differences must match exactly.
        for slot, score in zip(slots, scores):
            assert score - singleton == pytest.approx(
                true_costs[int(slot)] - singleton_cost
            )

    def test_move_to_best_never_increases_cost(self):
        _, instance = random_aggregation_instance(n=18, m=3, k=4, seed=5)
        evaluator = MoveEvaluator(instance, Clustering.random(18, 4, rng=2))
        cost = evaluator.total_cost()
        for v in range(18):
            evaluator.move_to_best(v)
            new_cost = evaluator.total_cost()
            assert new_cost <= cost + 1e-9
            cost = new_cost

    def test_mass_consistency_after_many_moves(self):
        _, instance = random_aggregation_instance(n=12, m=3, k=3, seed=9)
        evaluator = MoveEvaluator(instance, Clustering.random(12, 3, rng=0))
        rng = np.random.default_rng(4)
        for _ in range(40):
            evaluator.move_to_best(int(rng.integers(12)))
        labels = evaluator._labels
        for v in range(12):
            masses = explicit_mass(instance, labels, v)
            for slot, mass in masses.items():
                assert evaluator._mass[v, slot] == pytest.approx(mass)

    def test_best_placement_prefers_cluster_on_tie(self):
        # Two identical objects: joining is never worse than a singleton.
        matrix = np.array([[0, 0], [0, 0]], dtype=np.int32).T.copy().T
        instance = CorrelationInstance.from_label_matrix(
            np.array([[0, 0], [0, 0]], dtype=np.int32)
        )
        evaluator = MoveEvaluator(instance, Clustering([0, 1]))
        evaluator.detach(1)
        slot, _ = evaluator.best_placement(1)
        assert slot == 0


class TestClusterCountTables:
    def make_case(self, seed, n=40, m=5, missing_rate=0.2):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 3, size=(n, m)).astype(np.int32)
        matrix[rng.random((n, m)) < missing_rate] = MISSING
        matrix[0] = 0  # keep every column partially concrete
        members = rng.choice(n, size=n // 2, replace=False)
        labels = rng.integers(0, 3, size=members.size)
        # Ensure labels 0..2 all appear.
        labels[:3] = [0, 1, 2]
        return matrix, np.sort(members), labels[np.argsort(members)]

    def test_masses_match_matrix_path(self):
        matrix, members, labels = self.make_case(0)
        p = 0.4
        tables = ClusterCountTables(matrix, members, labels, p=p)
        instance = CorrelationInstance.from_label_matrix(matrix, p=p)
        X = instance.X
        rest = np.setdiff1d(np.arange(matrix.shape[0]), members)
        masses = tables.masses(rest)
        for i, v in enumerate(rest):
            for cluster in range(tables.k):
                cluster_members = members[labels == cluster]
                assert masses[i, cluster] == pytest.approx(
                    float(X[v, cluster_members].sum()), abs=1e-9
                )

    def test_assign_matches_explicit_scores(self):
        matrix, members, labels = self.make_case(3)
        tables = ClusterCountTables(matrix, members, labels)
        rest = np.setdiff1d(np.arange(matrix.shape[0]), members)
        scores, singleton = tables.placement_scores(rest)
        assigned = tables.assign(rest)
        for i in range(len(rest)):
            best = int(np.argmin(scores[i]))
            if scores[i, best] <= singleton[i]:
                assert assigned[i] == best
            else:
                assert assigned[i] == -1

    def test_sizes_property(self):
        matrix, members, labels = self.make_case(1)
        tables = ClusterCountTables(matrix, members, labels)
        assert np.array_equal(tables.sizes, np.bincount(labels))

    def test_rejects_empty_members(self):
        matrix, members, labels = self.make_case(2)
        with pytest.raises(ValueError):
            ClusterCountTables(matrix, members[:0], labels[:0])

    def test_rejects_label_gaps(self):
        matrix, members, labels = self.make_case(4)
        labels = np.where(labels == 1, 2, labels)  # label 1 vanishes
        if 2 not in labels:
            labels[0] = 2
        with pytest.raises(ValueError):
            ClusterCountTables(matrix, members, labels)

    def test_rejects_bad_p(self):
        matrix, members, labels = self.make_case(5)
        with pytest.raises(ValueError):
            ClusterCountTables(matrix, members, labels, p=2.0)

    def test_all_missing_row_is_indifferent(self):
        matrix = np.array(
            [[0, 0], [1, 1], [MISSING, MISSING], [0, 1]], dtype=np.int32
        )
        tables = ClusterCountTables(matrix, np.array([0, 1]), np.array([0, 1]), p=0.5)
        masses = tables.masses(np.array([2]))
        # Distance 0.5 to each member of each (size-1) cluster.
        assert masses[0, 0] == pytest.approx(0.5)
        assert masses[0, 1] == pytest.approx(0.5)
