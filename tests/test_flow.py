"""Flow analyzer tests: call graph, RPR010-RPR013, reports, CLI, repo gate.

Every rule is proven both ways: it fires on a seeded synthetic violation
and stays silent on the corrected version of the same code.  Synthetic
sources use ``repro``-package paths because every pass scopes off the
module's position inside the package tree (RPR010: ``serve`` only,
RPR013: kernel subpackages only).
"""

from __future__ import annotations

import json
import textwrap
import time

import pytest

from repro.analysis.flow import RULES, analyze_paths, analyze_sources
from repro.analysis.flow.blocking import compute_blocking
from repro.analysis.flow.callgraph import CallGraph, ModuleIndex, module_name_for
from repro.analysis.flow.cli import main
from repro.analysis.flow.report import (
    fingerprint,
    load_baseline,
    render_sarif,
    split_baselined,
    write_baseline,
)
from repro.analysis.flow.rng import compute_ships_params
from repro.analysis.lint import Finding

SERVE = "src/repro/serve/snippet.py"
PARALLEL = "src/repro/parallel/snippet.py"
CORE = "src/repro/core/snippet.py"


def flow(sources: dict[str, str]) -> list[Finding]:
    return analyze_sources(
        {path: textwrap.dedent(source) for path, source in sources.items()}
    )


def codes(sources: dict[str, str]) -> list[str]:
    return [finding.rule for finding in flow(sources)]


# ---------------------------------------------------------------------------
# Call graph construction
# ---------------------------------------------------------------------------


def test_module_naming_anchors_on_repro() -> None:
    assert module_name_for("src/repro/core/instance.py") == "repro.core.instance"
    assert module_name_for("src/repro/stream/__init__.py") == "repro.stream"
    assert module_name_for("tests/test_x.py") == "tests.test_x"


def test_alias_chase_through_init_reexport() -> None:
    index = ModuleIndex.from_sources(
        {
            "src/repro/stream/__init__.py": "from .checkpoint import load_checkpoint\n",
            "src/repro/stream/checkpoint.py": "def load_checkpoint(path):\n    return path\n",
            "src/repro/serve/app.py": (
                "from repro.stream import load_checkpoint\n"
                "def go(p):\n    return load_checkpoint(p)\n"
            ),
        }
    )
    graph = CallGraph(index)
    (site,) = graph.sites["repro.serve.app.go"]
    assert site.callee == "repro.stream.checkpoint.load_checkpoint"


def test_method_resolution_walks_base_classes() -> None:
    index = ModuleIndex.from_sources(
        {
            "src/repro/core/snippet.py": (
                "class Base:\n"
                "    def step(self):\n        return 1\n"
                "class Child(Base):\n"
                "    def run(self):\n        return self.step()\n"
            ),
        }
    )
    graph = CallGraph(index)
    (site,) = graph.sites["repro.core.snippet.Child.run"]
    assert site.callee == "repro.core.snippet.Base.step"


def test_higher_order_edges_map_and_executor() -> None:
    index = ModuleIndex.from_sources(
        {
            "src/repro/parallel/snippet.py": (
                "from functools import partial\n"
                "from repro.parallel.build import pool\n"
                "def work(i):\n    return i\n"
                "def fan(items):\n"
                "    with pool(2) as workers:\n"
                "        return workers.map(work, items)\n"
                "async def hand_off(loop, x):\n"
                "    return await loop.run_in_executor(None, partial(work, x))\n"
            ),
            "src/repro/parallel/build.py": "def pool(jobs):\n    return jobs\n",
        }
    )
    graph = CallGraph(index)
    fan_roles = {s.role: s for s in graph.sites["repro.parallel.snippet.fan"]}
    assert fan_roles["fanout"].indirect == ("repro.parallel.snippet.work",)
    executor = [
        s for s in graph.sites["repro.parallel.snippet.hand_off"] if s.role == "executor"
    ]
    assert executor[0].indirect == ("repro.parallel.snippet.work",)


def test_blocking_fixpoint_propagates_through_sync_chain() -> None:
    index = ModuleIndex.from_sources(
        {
            "src/repro/serve/snippet.py": (
                "import time\n"
                "def deep():\n    time.sleep(1)\n"
                "def mid():\n    return deep()\n"
                "def top():\n    return mid()\n"
                "def innocent():\n    return 1\n"
            ),
        }
    )
    blocking = compute_blocking(CallGraph(index))
    top = blocking["repro.serve.snippet.top"]
    assert top.desc == "`time.sleep()`"
    assert top.chain == (
        "repro.serve.snippet.top",
        "repro.serve.snippet.mid",
        "repro.serve.snippet.deep",
    )
    assert "repro.serve.snippet.innocent" not in blocking


# ---------------------------------------------------------------------------
# RPR010: transitive blocking in serve/ async handlers
# ---------------------------------------------------------------------------

_BLOCKING_HELPER = """
    import time
    def helper(x):
        return deeper(x)
    def deeper(x):
        time.sleep(0.1)
        return x
"""


def test_rpr010_fires_on_transitive_sleep() -> None:
    findings = flow(
        {
            SERVE: (
                "from repro.serve.helpers import helper\n"
                "async def handler(request):\n"
                "    return helper(request)\n"
            ),
            "src/repro/serve/helpers.py": _BLOCKING_HELPER,
        }
    )
    assert [f.rule for f in findings] == ["RPR010"]
    assert "time.sleep" in findings[0].message
    assert "helper" in findings[0].message  # witness chain names the route


def test_rpr010_silent_when_handed_to_executor() -> None:
    assert (
        codes(
            {
                SERVE: (
                    "import asyncio\n"
                    "from repro.serve.helpers import helper\n"
                    "async def handler(loop, request):\n"
                    "    return await loop.run_in_executor(None, helper, request)\n"
                ),
                "src/repro/serve/helpers.py": _BLOCKING_HELPER,
            }
        )
        == []
    )


def test_rpr010_skips_direct_primitives_and_non_serve() -> None:
    # Direct primitive: RPR009's fast path, not RPR010.
    assert (
        codes({SERVE: "import time\nasync def handler():\n    time.sleep(1)\n"}) == []
    )
    # Same transitive chain outside serve/: out of scope.
    assert (
        codes(
            {
                "src/repro/core/snippet.py": (
                    "from repro.core.helpers import helper\n"
                    "async def handler(request):\n"
                    "    return helper(request)\n"
                ),
                "src/repro/core/helpers.py": _BLOCKING_HELPER,
            }
        )
        == []
    )


def test_rpr010_fires_on_await_into_blocking_coroutine() -> None:
    findings = flow(
        {
            SERVE: (
                "import time\n"
                "async def inner():\n"
                "    helper()\n"
                "async def handler():\n"
                "    await inner()\n"
                "def helper():\n"
                "    time.sleep(1)\n"
            ),
        }
    )
    rules = [(f.rule, f.line) for f in findings]
    assert ("RPR010", 5) in rules  # the await site in handler


# ---------------------------------------------------------------------------
# RPR011: RNG provenance
# ---------------------------------------------------------------------------

_POOL_STUB = "def pool(jobs, initializer=None, initargs=()):\n    return jobs\n"


def _fanout_source(first: str, second: str) -> dict[str, str]:
    return {
        PARALLEL: (
            "from repro.parallel.build import pool\n"
            "def setup(r):\n    pass\n"
            "def run(i):\n    return i\n"
            "def fanout(work, rng):\n"
            f"    {first}\n"
            "    with pool(2, initializer=setup, initargs=(first,)) as workers:\n"
            "        a = workers.map(run, [1, 2])\n"
            f"    {second}\n"
            "    with pool(2, initializer=setup, initargs=(second,)) as workers:\n"
            "        b = workers.map(run, [3, 4])\n"
            "    return a + b\n"
        ),
        "src/repro/parallel/build.py": _POOL_STUB,
    }


def test_rpr011_fires_on_generator_reaching_two_pools() -> None:
    findings = flow(_fanout_source("first = rng", "second = rng"))
    assert [f.rule for f in findings] == ["RPR011"]
    assert "second parallel-work site" in findings[0].message


def test_rpr011_silent_with_spawned_children() -> None:
    assert codes(_fanout_source("first = rng.spawn(1)", "second = rng.spawn(1)")) == []


def test_rpr011_fires_on_use_after_ship() -> None:
    findings = flow(
        {
            PARALLEL: (
                "from repro.parallel.build import pool\n"
                "def setup(r):\n    pass\n"
                "def fanout(rng):\n"
                "    with pool(2, initializer=setup, initargs=(rng,)) as workers:\n"
                "        workers.map(setup, [1])\n"
                "    return rng.integers(10)\n"
            ),
            "src/repro/parallel/build.py": _POOL_STUB,
        }
    )
    assert [f.rule for f in findings] == ["RPR011"]
    assert "after being shipped" in findings[0].message


def test_rpr011_fires_on_loop_carried_ship() -> None:
    findings = flow(
        {
            PARALLEL: (
                "from repro.parallel.build import pool\n"
                "def setup(r):\n    pass\n"
                "def fanout(jobs_list, rng):\n"
                "    for jobs in jobs_list:\n"
                "        with pool(jobs, initializer=setup, initargs=(rng,)) as w:\n"
                "            w.map(setup, [1])\n"
            ),
            "src/repro/parallel/build.py": _POOL_STUB,
        }
    )
    assert "RPR011" in [f.rule for f in findings]


def test_rpr011_fires_through_container_payload() -> None:
    findings = flow(
        {
            PARALLEL: (
                "from repro.parallel.build import pool\n"
                "def run(spec):\n    return spec\n"
                "def fanout(methods, rng):\n"
                "    specs = [(m, rng) for m in methods]\n"
                "    with pool(2) as workers:\n"
                "        workers.map(run, specs)\n"
                "        workers.map(run, specs)\n"
            ),
            "src/repro/parallel/build.py": _POOL_STUB,
        }
    )
    assert [f.rule for f in findings] == ["RPR011"]


def test_rpr011_interprocedural_ship_through_callee_param() -> None:
    sources = {
        PARALLEL: (
            "from repro.parallel.build import pool\n"
            "def setup(r):\n    pass\n"
            "def dispatch(generator):\n"
            "    with pool(2, initializer=setup, initargs=(generator,)) as w:\n"
            "        w.map(setup, [1])\n"
            "def fanout(rng):\n"
            "    dispatch(rng)\n"
            "    dispatch(rng)\n"
        ),
        "src/repro/parallel/build.py": _POOL_STUB,
    }
    index = ModuleIndex.from_sources(
        {path: textwrap.dedent(source) for path, source in sources.items()}
    )
    ships = compute_ships_params(CallGraph(index))
    assert ships["repro.parallel.snippet.dispatch"] == frozenset({"generator"})
    assert ships["repro.parallel.snippet.fanout"] == frozenset({"rng"})
    assert codes(sources) == ["RPR011"]


def test_rpr011_portfolio_spawn_list_pattern_is_clean() -> None:
    # The repo's portfolio idiom: children spawned up front, shipped once.
    assert (
        codes(
            {
                PARALLEL: (
                    "from repro.parallel.build import pool\n"
                    "def setup(payload, specs):\n    pass\n"
                    "def run(i):\n    return i\n"
                    "def portfolio(methods, payload, rng):\n"
                    "    children = rng.spawn(len(methods))\n"
                    "    specs = [(m, children[i]) for i, m in enumerate(methods)]\n"
                    "    with pool(2, initializer=setup, initargs=(payload, specs)) as w:\n"
                    "        out = w.map(run, range(len(specs)))\n"
                    "    return [(specs[i][0], r) for i, r in enumerate(out)]\n"
                ),
                "src/repro/parallel/build.py": _POOL_STUB,
            }
        )
        == []
    )


# ---------------------------------------------------------------------------
# RPR012: shared-memory lifecycle
# ---------------------------------------------------------------------------

_SHM_IMPORT = "from multiprocessing import shared_memory\n"


def test_rpr012_fires_on_exception_path_leak() -> None:
    findings = flow(
        {
            PARALLEL: (
                _SHM_IMPORT
                + "def make(size, check):\n"
                "    shm = shared_memory.SharedMemory(create=True, size=size)\n"
                "    validate(check)\n"
                "    shm.close()\n"
                "    shm.unlink()\n"
                "def validate(check):\n"
                "    if not check:\n"
                "        raise ValueError('bad')\n"
            ),
        }
    )
    assert [f.rule for f in findings] == ["RPR012"]
    assert "may leak" in findings[0].message


def test_rpr012_silent_with_try_finally() -> None:
    assert (
        codes(
            {
                PARALLEL: (
                    _SHM_IMPORT
                    + "def make(size, check):\n"
                    "    shm = shared_memory.SharedMemory(create=True, size=size)\n"
                    "    try:\n"
                    "        validate(check)\n"
                    "    finally:\n"
                    "        shm.close()\n"
                    "        shm.unlink()\n"
                    "def validate(check):\n"
                    "    pass\n"
                ),
            }
        )
        == []
    )


def test_rpr012_fires_on_owner_closed_but_not_unlinked() -> None:
    findings = flow(
        {
            PARALLEL: (
                _SHM_IMPORT
                + "def make(size):\n"
                "    shm = shared_memory.SharedMemory(create=True, size=size)\n"
                "    shm.close()\n"
            ),
        }
    )
    assert [f.rule for f in findings] == ["RPR012"]
    assert "never unlinks" in findings[0].message


def test_rpr012_fires_on_one_armed_branch_close() -> None:
    findings = flow(
        {
            PARALLEL: (
                _SHM_IMPORT
                + "def make(size, keep):\n"
                "    shm = shared_memory.SharedMemory(name='seg')\n"
                "    if keep:\n"
                "        shm.close()\n"
            ),
        }
    )
    assert [f.rule for f in findings] == ["RPR012"]
    assert "every exit path" in findings[0].message


@pytest.mark.parametrize(
    "body",
    [
        # with-managed: the context manager closes it.
        "    with shared_memory.SharedMemory(create=True, size=size) as shm:\n"
        "        return shm.size\n",
        # immediate escape into a worker cache.
        "    CACHE['seg'] = shared_memory.SharedMemory(name='seg')\n",
        # escape to the caller via return.
        "    return shared_memory.SharedMemory(name='seg')\n",
    ],
)
def test_rpr012_silent_on_managed_and_escaping_creations(body: str) -> None:
    source = _SHM_IMPORT + "CACHE = {}\ndef make(size):\n" + body
    assert codes({PARALLEL: source}) == []


def test_rpr012_creator_propagation_to_caller() -> None:
    attacher = (
        _SHM_IMPORT
        + "def attach(name):\n"
        "    shm = shared_memory.SharedMemory(name=name)\n"
        "    return ('instance', shm)\n"
    )
    leaky = {
        PARALLEL: attacher
        + "def use(name, check):\n"
        "    instance, shm = attach(name)\n"
        "    validate(check)\n"
        "    shm.close()\n"
        "def validate(check):\n"
        "    pass\n",
    }
    findings = flow(leaky)
    assert [f.rule for f in findings] == ["RPR012"]
    assert "`use`" in findings[0].message  # flagged in the caller
    clean = {
        PARALLEL: attacher
        + "def use(name, check):\n"
        "    instance, shm = attach(name)\n"
        "    try:\n"
        "        validate(check)\n"
        "    finally:\n"
        "        shm.close()\n"
        "def validate(check):\n"
        "    pass\n",
    }
    assert codes(clean) == []


# ---------------------------------------------------------------------------
# RPR013: reduction-grid discipline
# ---------------------------------------------------------------------------


def test_rpr013_fires_on_ad_hoc_block_size() -> None:
    findings = flow(
        {
            CORE: (
                "def total(backend, n):\n"
                "    acc = 0.0\n"
                "    for start in range(0, n, 4096):\n"
                "        acc += backend.row_block(start, start + 4096).sum()\n"
                "    return acc\n"
            ),
        }
    )
    assert [f.rule for f in findings] == ["RPR013"]


@pytest.mark.parametrize(
    "header,step",
    [
        ("from repro.core.backend import reduction_block_rows\n", "reduction_block_rows(n)"),
        ("_BLOCK_ROWS = 2048\n", "_BLOCK_ROWS"),
        ("", "block_rows"),  # grid-named parameter
    ],
)
def test_rpr013_silent_on_grid_derived_steps(header: str, step: str) -> None:
    source = (
        header + "def total(backend, n, block_rows=64):\n"
        f"    step = {step}\n"
        "    acc = 0.0\n"
        "    for start in range(0, n, step):\n"
        "        acc += backend.row_block(start, start + step).sum()\n"
        "    return acc\n"
    )
    assert codes({CORE: source}) == []


def test_rpr013_scoped_to_kernel_packages_and_kernel_calls() -> None:
    loop = (
        "def total(rows, n):\n"
        "    acc = 0.0\n"
        "    for start in range(0, n, 512):\n"
        "        acc += rows[start]\n"
        "    return acc\n"
    )
    # No row_block-family call in the body: silent.
    assert codes({CORE: loop}) == []
    # Kernel call but outside the kernel subpackages: silent.
    kernel_loop = loop.replace("rows[start]", "rows.row_block(start, start + 512).sum()")
    assert codes({"src/repro/serve/snippet.py": kernel_loop}) == []
    assert codes({CORE: kernel_loop}) == ["RPR013"]


# ---------------------------------------------------------------------------
# Suppressions and analysis errors
# ---------------------------------------------------------------------------


def test_inline_suppression_silences_flow_finding() -> None:
    assert (
        codes(
            {
                CORE: (
                    "def total(backend, n):\n"
                    "    acc = 0.0\n"
                    "    for start in range(0, n, 4096):  # repolint: disable=RPR013\n"
                    "        acc += backend.row_block(start, start + 4096).sum()\n"
                    "    return acc\n"
                ),
            }
        )
        == []
    )


def test_unknown_suppression_code_is_an_error() -> None:
    findings = flow({CORE: "x = 1  # repolint: disable=RPR999\n"})
    assert [f.rule for f in findings] == ["RPR000"]
    assert "RPR999" in findings[0].message


def test_syntax_error_reported_as_rpr000() -> None:
    findings = flow({CORE: "def broken(:\n"})
    assert [f.rule for f in findings] == ["RPR000"]


# ---------------------------------------------------------------------------
# Reports: fingerprints, baseline, SARIF
# ---------------------------------------------------------------------------


def _finding(line: int = 3, message: str = "m") -> Finding:
    return Finding(path="src/repro/core/x.py", line=line, col=1, rule="RPR013", message=message)


def test_fingerprint_is_line_independent() -> None:
    assert fingerprint(_finding(line=3)) == fingerprint(_finding(line=30))
    assert fingerprint(_finding(message="a")) != fingerprint(_finding(message="b"))


def test_baseline_round_trip_and_split(tmp_path) -> None:  # type: ignore[no-untyped-def]
    grandfathered = _finding(message="old")
    fresh = _finding(message="new")
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, [grandfathered])
    baseline = load_baseline(baseline_path)
    new, old = split_baselined([grandfathered, fresh], baseline)
    assert [f.message for f in new] == ["new"]
    assert [f.message for f in old] == ["old"]
    assert load_baseline(tmp_path / "missing.json") == frozenset()


def test_sarif_structure() -> None:
    document = json.loads(render_sarif([_finding()], RULES))
    assert document["version"] == "2.1.0"
    (run,) = document["runs"]
    (result,) = run["results"]
    assert result["ruleId"] == "RPR013"
    assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 3
    assert result["partialFingerprints"]["reproFlow/v1"] == fingerprint(_finding())
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert set(RULES) <= rule_ids


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

_VIOLATION = (
    "def total(backend, n):\n"
    "    acc = 0.0\n"
    "    for start in range(0, n, 4096):\n"
    "        acc += backend.row_block(start, start + 4096).sum()\n"
    "    return acc\n"
)


def _violation_tree(tmp_path):  # type: ignore[no-untyped-def]
    package = tmp_path / "src" / "repro" / "core"
    package.mkdir(parents=True)
    (package / "snippet.py").write_text(_VIOLATION, encoding="utf-8")
    return tmp_path / "src"


def test_cli_text_json_and_exit_codes(tmp_path, capsys) -> None:  # type: ignore[no-untyped-def]
    root = _violation_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main([str(root), "--baseline", str(baseline)]) == 1
    assert "RPR013" in capsys.readouterr().out
    assert main([str(root), "--baseline", str(baseline), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "RPR013"
    assert payload["baselined"] == []
    assert main([]) == 2  # no paths
    capsys.readouterr()


def test_cli_write_baseline_grandfathers(tmp_path, capsys) -> None:  # type: ignore[no-untyped-def]
    root = _violation_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main([str(root), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main([str(root), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_cli_sarif_output_file(tmp_path, capsys) -> None:  # type: ignore[no-untyped-def]
    root = _violation_tree(tmp_path)
    sarif_path = tmp_path / "flow.sarif"
    status = main(
        [
            str(root),
            "--baseline",
            str(tmp_path / "baseline.json"),
            "--format",
            "sarif",
            "--output",
            str(sarif_path),
        ]
    )
    capsys.readouterr()
    assert status == 1
    document = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert document["runs"][0]["results"][0]["ruleId"] == "RPR013"


def test_cli_max_seconds_budget(tmp_path, capsys) -> None:  # type: ignore[no-untyped-def]
    root = _violation_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main([str(root), "--baseline", str(baseline), "--max-seconds", "0"]) == 3
    assert main([str(root), "--baseline", str(baseline), "--max-seconds", "300"]) == 1
    capsys.readouterr()


def test_cli_list_rules(capsys) -> None:  # type: ignore[no-untyped-def]
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


# ---------------------------------------------------------------------------
# Repository gate: the tree itself is flow-clean and fast to analyze
# ---------------------------------------------------------------------------


def test_repository_is_flow_clean_and_fast() -> None:
    started = time.monotonic()
    findings, checked = analyze_paths(["src"])
    elapsed = time.monotonic() - started
    assert findings == [], [finding.format() for finding in findings]
    assert checked > 50
    assert elapsed < 30.0, f"flow analysis took {elapsed:.1f}s"
