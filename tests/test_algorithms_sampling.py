"""Tests for the SAMPLING meta-algorithm (repro.algorithms.sampling)."""

import numpy as np
import pytest

from repro import Clustering
from repro.core import CorrelationInstance
from repro.algorithms import agglomerative, default_sample_size, local_search, sampling

from conftest import planted_instance


class TestDefaults:
    def test_default_sample_size_logarithmic(self):
        assert default_sample_size(1) == 1
        assert default_sample_size(100) == 100  # capped by n
        assert 900 <= default_sample_size(50_000) <= 1100
        assert default_sample_size(1_000_000) <= 1400

    def test_default_never_exceeds_n(self):
        assert default_sample_size(50) == 50


class TestCorrectness:
    def test_full_sample_equals_inner(self, figure1_clusterings):
        from repro.core.labels import as_label_matrix

        matrix = as_label_matrix(figure1_clusterings)
        result = sampling(matrix, agglomerative, sample_size=6, rng=0)
        direct = agglomerative(CorrelationInstance.from_label_matrix(matrix))
        assert result == direct

    def test_planted_clusters_recovered_from_small_sample(self):
        truth, matrix = planted_instance(n=400, m=8, groups=4, flip=0.1, seed=0)
        result = sampling(matrix, agglomerative, sample_size=60, rng=1)
        assert result == Clustering(truth)

    def test_matrix_and_instance_paths_agree(self):
        truth, matrix = planted_instance(n=150, m=6, groups=3, flip=0.1, seed=2)
        instance = CorrelationInstance.from_label_matrix(matrix)
        via_matrix = sampling(matrix, agglomerative, sample_size=40, rng=7)
        via_instance = sampling(instance, agglomerative, sample_size=40, rng=7)
        assert via_matrix == via_instance

    def test_deterministic_under_seed(self):
        _, matrix = planted_instance(n=200, m=5, groups=3, flip=0.15, seed=3)
        a = sampling(matrix, agglomerative, sample_size=50, rng=42)
        b = sampling(matrix, agglomerative, sample_size=50, rng=42)
        assert a == b

    def test_different_inner_algorithms(self):
        truth, matrix = planted_instance(n=300, m=7, groups=3, flip=0.1, seed=4)
        for inner in (agglomerative, lambda inst: local_search(inst)):
            result = sampling(matrix, inner, sample_size=50, rng=0)
            assert result == Clustering(truth)

    def test_invalid_sample_size(self):
        _, matrix = planted_instance(n=50, m=3, groups=2, flip=0.1, seed=5)
        with pytest.raises(ValueError):
            sampling(matrix, agglomerative, sample_size=0)

    def test_explicit_sample_size_above_n_raises_with_both_values(self):
        """Regression: an oversized explicit sample used to be silently
        clamped to ``n``, hiding configuration errors; it must now raise
        and name both quantities."""
        _, matrix = planted_instance(n=50, m=3, groups=2, flip=0.1, seed=5)
        with pytest.raises(ValueError, match=r"sample_size=51 .*n=50"):
            sampling(matrix, agglomerative, sample_size=51)
        instance = CorrelationInstance.from_label_matrix(matrix)
        with pytest.raises(ValueError, match=r"sample_size=60 .*n=50"):
            sampling(instance, agglomerative, sample_size=60)

    def test_default_sample_size_still_covers_small_n(self):
        # The paper default is clamped to n, so only *explicit* oversizing
        # raises — the default path on small data keeps working.
        _, matrix = planted_instance(n=40, m=3, groups=2, flip=0.1, seed=5)
        assert sampling(matrix, agglomerative, rng=0).n == 40

    def test_weighted_support_shortfall_raises_with_both_values(self):
        """Regression: with zero-weight rows, numpy's own without-
        replacement error ('Fewer non-zero entries in p than size') names
        neither the requested size nor the support."""
        matrix = np.array(
            [[0, 0], [0, 1], [1, 0], [1, 1], [2, 2]], dtype=np.int32
        )
        weights = np.array([1.0, 1.0, 0.0, 0.0, 0.0])
        with pytest.raises(ValueError, match=r"sample_size=4 .*2 rows .*non-zero"):
            sampling(matrix, agglomerative, sample_size=4, weights=weights)

    def test_all_zero_weights_raise(self):
        matrix = np.array([[0, 0], [0, 1], [1, 0]], dtype=np.int32)
        with pytest.raises(ValueError, match="all zero"):
            sampling(matrix, agglomerative, sample_size=2, weights=np.zeros(3))

    def test_negative_weights_raise(self):
        matrix = np.array([[0, 0], [0, 1], [1, 0]], dtype=np.int32)
        with pytest.raises(ValueError, match="non-negative"):
            sampling(
                matrix, agglomerative, sample_size=2, weights=np.array([1.0, 1.0, -1.0])
            )


class TestDetails:
    def test_details_reported(self):
        truth, matrix = planted_instance(n=300, m=6, groups=3, flip=0.2, seed=6)
        result, details = sampling(
            matrix, agglomerative, sample_size=60, rng=0, return_details=True
        )
        assert details.sample_indices.size == 60
        assert details.sample_clusters >= 1
        assert details.assigned_to_clusters + details.leftover_singletons >= 300 - 60 - 10
        assert result.n == 300

    def test_singleton_roundup_merges_outliers(self):
        # Plant 3 groups plus 30 objects the inputs scatter randomly; the
        # scattered objects should not force extra large clusters.
        rng = np.random.default_rng(0)
        truth, matrix = planted_instance(n=300, m=8, groups=3, flip=0.05, seed=7)
        noise = rng.integers(0, 50, size=(40, 8)).astype(np.int32) + 10
        full = np.vstack([matrix, noise])
        result = sampling(full, agglomerative, sample_size=80, rng=1)
        sizes = np.sort(result.sizes())[::-1]
        assert (sizes[:3] > 70).all()  # three big groups survive

    def test_sampling_with_missing_values(self):
        truth, matrix = planted_instance(n=300, m=8, groups=3, flip=0.1, seed=9)
        matrix = matrix.copy()
        rng = np.random.default_rng(0)
        matrix[rng.random(matrix.shape) < 0.1] = -1
        matrix[0] = 0
        result = sampling(matrix, agglomerative, sample_size=80, rng=1, p=0.5)
        from repro.metrics import classification_error

        assert classification_error(result, truth) < 0.05

    def test_aggregate_sampling_on_instance_input(self):
        from repro import aggregate

        truth, matrix = planted_instance(n=120, m=6, groups=3, flip=0.1, seed=10)
        instance = CorrelationInstance.from_label_matrix(matrix)
        result = aggregate(instance, method="sampling", sample_size=40, rng=0)
        assert result.clustering == Clustering(truth)
        assert result.disagreements is not None  # m known from the instance

    def test_heavy_atom_alone_is_not_a_stray_singleton(self):
        # Regression: a collapsed duplicate row of multiplicity w alone in
        # its cluster represents w co-clustered objects, not a stray
        # singleton — phase 3 must measure cluster mass in effective
        # weight, not in atom rows.
        matrix = np.array(
            [[0, 0, 0], [0, 0, 1], [1, 1, 2], [1, 1, 3], [2, 2, 4]],
            dtype=np.int32,
        )
        weights = np.array([3.0, 3.0, 3.0, 3.0, 5.0])
        result, details = sampling(
            matrix,
            agglomerative,
            sample_size=5,
            rng=0,
            weights=weights,
            return_details=True,
        )
        assert result.k == 3
        assert result.labels[4] not in result.labels[:4]  # heavy atom kept apart
        assert details.leftover_singletons == 0

    def test_weight_one_atom_alone_still_counts_as_singleton(self):
        # The same shape with a genuine weight-1 stray: mass == 1, so the
        # round-up sees it, and the details count it by weight.
        matrix = np.array(
            [[0, 0, 0], [0, 0, 1], [1, 1, 2], [1, 1, 3], [2, 2, 4]],
            dtype=np.int32,
        )
        weights = np.array([3.0, 3.0, 3.0, 3.0, 1.0])
        _, details = sampling(
            matrix,
            agglomerative,
            sample_size=5,
            rng=0,
            weights=weights,
            return_details=True,
        )
        assert details.leftover_singletons == 1

    def test_recursion_on_large_singleton_set(self):
        truth, matrix = planted_instance(n=500, m=6, groups=4, flip=0.1, seed=8)
        result, details = sampling(
            matrix,
            agglomerative,
            sample_size=50,
            rng=2,
            max_singleton_subproblem=10,
            return_details=True,
        )
        assert result.n == 500
        # With such a tiny cap the round-up must have recursed (if there
        # were enough leftovers) — and the result is still a partition.
        assert details.leftover_singletons <= 500
