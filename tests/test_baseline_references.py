"""Oracle tests: the cache-accelerated baseline merge loops vs naive re-implementations.

ROCK's goodness merging and LIMBO's agglomerative-IB phase both use
best-partner caches for speed; these tests re-run the same greedy
processes with full recomputation at every step and demand identical
outcomes (on generic float-valued inputs where ties are measure-zero).
"""

import numpy as np
import pytest

from repro import Clustering
from repro.baselines.limbo import (
    _agglomerate,
    _delta_information,
    _entropy_rows,
    _Leaves,
)
from repro.baselines.rock import _link_matrix, _merge_to_k, rock_goodness_exponent


def naive_rock_merge(links: np.ndarray, k: int, exponent: float) -> np.ndarray:
    """Reference greedy goodness merging with full rescans."""
    n = links.shape[0]
    links = links.astype(np.float64, copy=True)
    np.fill_diagonal(links, 0.0)
    active = list(range(n))
    sizes = np.ones(n, dtype=np.int64)
    labels = np.arange(n, dtype=np.int64)
    while len(active) > k:
        best_pair = None
        best_value = -np.inf
        for ai, i in enumerate(active):
            for j in active[ai + 1 :]:
                if links[i, j] <= 0:
                    continue
                denominator = (
                    float(sizes[i] + sizes[j]) ** exponent
                    - float(sizes[i]) ** exponent
                    - float(sizes[j]) ** exponent
                )
                value = links[i, j] / denominator
                if value > best_value:
                    best_value = value
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        links[i] += links[j]
        links[:, i] = links[i]
        links[i, i] = 0.0
        links[j, :] = 0.0
        links[:, j] = 0.0
        sizes[i] += sizes[j]
        active.remove(j)
        labels[labels == j] = i
    return labels


class TestRockMergeOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_naive_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 30))
        data = rng.integers(0, 3, size=(n, 6)).astype(np.int32)
        theta = 0.35
        exponent = rock_goodness_exponent(theta)
        links = _link_matrix(data, theta)
        for k in (2, 4):
            fast = Clustering(_merge_to_k(links, k, exponent))
            slow = Clustering(naive_rock_merge(links, k, exponent))
            # Integer link counts invite goodness ties; when the two runs
            # diverge the partitions may differ but only through equal-
            # goodness choices — so demand identical *cluster counts* and,
            # in the common tie-free case, identical partitions.
            assert fast.k == slow.k, (seed, k)

    def test_matches_reference_exactly_on_tie_free_case(self):
        # Weighted links with irrational-ish values: no ties.
        rng = np.random.default_rng(99)
        n = 16
        raw = rng.random((n, n)) * 10
        links = ((raw + raw.T) / 2).astype(np.float64)
        links = np.rint(links * 97).astype(np.int64)  # distinct-ish ints
        np.fill_diagonal(links, 0)
        exponent = rock_goodness_exponent(0.5)
        fast = Clustering(_merge_to_k(links.copy(), 3, exponent))
        slow = Clustering(naive_rock_merge(links.copy(), 3, exponent))
        assert fast == slow


def naive_limbo_agglomerate(weights, dists, k):
    """Reference min-ΔI merging with full rescans."""
    weights = list(map(float, weights))
    dists = [d.copy() for d in dists]
    while len(weights) > k:
        best = None
        best_value = np.inf
        for i in range(len(weights) - 1):
            entropy_i = _entropy_rows(dists[i][None, :])[0]
            others = np.array(dists[i + 1 :])
            deltas = _delta_information(
                weights[i],
                dists[i],
                entropy_i,
                np.array(weights[i + 1 :]),
                others,
                _entropy_rows(others),
            )
            j = int(np.argmin(deltas))
            if deltas[j] < best_value:
                best_value = float(deltas[j])
                best = (i, i + 1 + j)
        i, j = best
        total = weights[i] + weights[j]
        dists[i] = (weights[i] * dists[i] + weights[j] * dists[j]) / total
        weights[i] = total
        del weights[j], dists[j]
    return np.array(weights), np.array(dists)


class TestLimboAgglomerateOracle:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive_reference(self, seed):
        rng = np.random.default_rng(seed)
        count = int(rng.integers(6, 14))
        dimension = 8
        dists = rng.dirichlet(np.ones(dimension), size=count)
        weights = rng.dirichlet(np.ones(count))

        leaves = _Leaves(dimension, count)
        for w, d in zip(weights, dists):
            leaves.add(float(w), d)
        fast_weights, fast_dists = _agglomerate(leaves, 3)

        slow_weights, slow_dists = naive_limbo_agglomerate(weights, dists, 3)
        # Slot order may differ (swap-removal); compare as multisets.
        fast_order = np.argsort(fast_weights)
        slow_order = np.argsort(slow_weights)
        assert np.allclose(fast_weights[fast_order], slow_weights[slow_order])
        assert np.allclose(fast_dists[fast_order], slow_dists[slow_order], atol=1e-9)
