"""Tests for the evaluation metrics (repro.metrics)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Clustering
from repro.metrics import (
    adjusted_rand_index,
    classification_error,
    cluster_size_summary,
    confusion_matrix,
    normalized_mutual_information,
    purity,
    rand_index,
    variation_of_information,
)

labels_pairs = st.integers(0, 10_000).map(
    lambda seed: (
        np.random.default_rng(seed).integers(0, 4, size=20),
        np.random.default_rng(seed + 1).integers(0, 4, size=20),
    )
)


class TestClassificationError:
    def test_pure_clusters(self):
        clustering = Clustering([0, 0, 1, 1])
        classes = np.array([1, 1, 0, 0])
        assert classification_error(clustering, classes) == 0.0

    def test_known_value(self):
        clustering = Clustering([0, 0, 0, 1, 1, 1])
        classes = np.array([0, 0, 1, 1, 1, 0])
        # Cluster 0 majority 0 (1 wrong), cluster 1 majority 1 (1 wrong).
        assert classification_error(clustering, classes) == pytest.approx(2 / 6)

    def test_singletons_are_pure(self):
        # The degenerate case the paper warns about: k = n gives E_C = 0.
        classes = np.array([0, 1, 0, 1])
        assert classification_error(Clustering.singletons(4), classes) == 0.0

    def test_purity_complement(self):
        clustering = Clustering([0, 0, 1, 1, 1])
        classes = np.array([0, 1, 1, 1, 0])
        assert purity(clustering, classes) == pytest.approx(
            1.0 - classification_error(clustering, classes)
        )

    def test_confusion_matrix_layout(self):
        clustering = Clustering([0, 0, 1])
        classes = np.array([1, 0, 1])
        table = confusion_matrix(clustering, classes)
        assert table.shape == (2, 2)  # rows = classes, columns = clusters
        assert table[1, 0] == 1 and table[0, 0] == 1 and table[1, 1] == 1


class TestRandIndices:
    def test_identical(self):
        c = Clustering([0, 0, 1, 2])
        assert rand_index(c, c) == 1.0
        assert adjusted_rand_index(c, c) == pytest.approx(1.0)

    def test_known_rand_value(self):
        a = Clustering([0, 0, 1, 1])
        b = Clustering([0, 1, 0, 1])
        # agreements: no pair co-clustered in both; pairs split in both: (0,3),(1,2) -> 2 of 6.
        assert rand_index(a, b) == pytest.approx(2 / 6)

    def test_ari_zero_expectation_behaviour(self):
        rng = np.random.default_rng(0)
        values = [
            adjusted_rand_index(
                Clustering(rng.integers(0, 3, 60)), Clustering(rng.integers(0, 3, 60))
            )
            for _ in range(30)
        ]
        assert abs(float(np.mean(values))) < 0.1  # near zero for random pairs

    @given(labels_pairs)
    def test_rand_bounds(self, pair):
        a, b = pair
        value = rand_index(Clustering(a), Clustering(b))
        assert 0.0 <= value <= 1.0

    @given(labels_pairs)
    def test_ari_not_above_one(self, pair):
        a, b = pair
        assert adjusted_rand_index(Clustering(a), Clustering(b)) <= 1.0 + 1e-12

    @given(labels_pairs)
    def test_symmetry(self, pair):
        a, b = pair
        ca, cb = Clustering(a), Clustering(b)
        assert rand_index(ca, cb) == pytest.approx(rand_index(cb, ca))
        assert adjusted_rand_index(ca, cb) == pytest.approx(adjusted_rand_index(cb, ca))


class TestInformationMetrics:
    def test_nmi_identical(self):
        c = Clustering([0, 1, 1, 2, 2, 2])
        assert normalized_mutual_information(c, c) == pytest.approx(1.0)

    def test_nmi_independent(self):
        a = Clustering([0, 0, 1, 1])
        b = Clustering([0, 1, 0, 1])
        assert normalized_mutual_information(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_vi_identical_zero(self):
        c = Clustering([0, 1, 1, 2])
        assert variation_of_information(c, c) == pytest.approx(0.0, abs=1e-12)

    def test_vi_known_value(self):
        a = Clustering([0, 0, 1, 1])
        b = Clustering.single_cluster(4)
        # VI(a, single) = H(a) = ln 2.
        assert variation_of_information(a, b) == pytest.approx(np.log(2))

    @given(labels_pairs)
    def test_vi_symmetric_nonnegative(self, pair):
        a, b = pair
        ca, cb = Clustering(a), Clustering(b)
        vi = variation_of_information(ca, cb)
        assert vi >= 0.0
        assert vi == pytest.approx(variation_of_information(cb, ca))

    @given(labels_pairs, st.integers(0, 100))
    def test_vi_triangle_inequality(self, pair, seed):
        a, b = pair
        c = np.random.default_rng(seed).integers(0, 4, size=len(a))
        ca, cb, cc = Clustering(a), Clustering(b), Clustering(c)
        assert variation_of_information(ca, cc) <= (
            variation_of_information(ca, cb) + variation_of_information(cb, cc) + 1e-9
        )

    @given(labels_pairs)
    def test_nmi_bounds(self, pair):
        a, b = pair
        value = normalized_mutual_information(Clustering(a), Clustering(b))
        assert -1e-12 <= value <= 1.0 + 1e-12


class TestSizeSummary:
    def test_summary_fields(self):
        c = Clustering([0, 0, 0, 1, 2])
        summary = cluster_size_summary(c)
        assert summary["clusters"] == 3
        assert summary["largest"] == 3
        assert summary["smallest"] == 1
        assert summary["singletons"] == 2
        assert summary["median"] == 1.0
