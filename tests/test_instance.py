"""Tests for CorrelationInstance (repro.core.instance)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Clustering
from repro.core import CorrelationInstance, total_disagreement
from repro.core.instance import disagreement_fractions
from repro.core.labels import MISSING, as_label_matrix

from conftest import random_aggregation_instance


def brute_force_fractions(matrix: np.ndarray, p: float) -> np.ndarray:
    """Reference per-pair computation of the X matrix."""
    n, m = matrix.shape
    X = np.zeros((n, n))
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            total = 0.0
            for j in range(m):
                a, b = matrix[u, j], matrix[v, j]
                if a == MISSING or b == MISSING:
                    total += 1.0 - p
                else:
                    total += float(a != b)
            X[u, v] = total / m
    return X


def brute_force_cost(X: np.ndarray, labels: np.ndarray) -> float:
    cost = 0.0
    for u, v in itertools.combinations(range(len(labels)), 2):
        if labels[u] == labels[v]:
            cost += X[u, v]
        else:
            cost += 1.0 - X[u, v]
    return cost


class TestConstruction:
    def test_figure2_matrix(self, figure1_instance):
        """The instance of Figure 2: distances 1/3 (solid), 2/3 (dashed), 1 (dotted)."""
        X = figure1_instance.X
        assert X[0, 2] == pytest.approx(1 / 3)  # v1-v3 solid
        assert X[0, 1] == pytest.approx(2 / 3)  # v1-v2 dashed
        assert X[0, 4] == pytest.approx(1.0)  # v1-v5 dotted
        assert X[4, 5] == pytest.approx(1 / 3)  # v5-v6 solid

    def test_m_recorded(self, figure1_instance):
        assert figure1_instance.m == 3

    def test_from_distances_validates_symmetry(self):
        bad = np.array([[0.0, 0.2], [0.5, 0.0]])
        with pytest.raises(ValueError):
            CorrelationInstance.from_distances(bad)

    def test_from_distances_validates_range(self):
        bad = np.array([[0.0, 1.5], [1.5, 0.0]])
        with pytest.raises(ValueError):
            CorrelationInstance.from_distances(bad)

    def test_from_distances_validates_diagonal(self):
        bad = np.array([[0.1, 0.2], [0.2, 0.0]])
        with pytest.raises(ValueError):
            CorrelationInstance.from_distances(bad)

    def test_integer_matrix_coerced_by_from_distances(self):
        instance = CorrelationInstance.from_distances(np.zeros((2, 2), dtype=int))
        assert instance.X.dtype == np.float64

    def test_direct_constructor_rejects_integer_matrix(self):
        with pytest.raises(TypeError):
            CorrelationInstance(np.zeros((2, 2), dtype=int))

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            disagreement_fractions(np.array([[0], [1]], dtype=np.int32), p=-0.1)

    @settings(max_examples=25)
    @given(st.integers(0, 10_000))
    def test_fractions_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n, m = int(rng.integers(2, 12)), int(rng.integers(1, 5))
        matrix = rng.integers(0, 3, size=(n, m)).astype(np.int32)
        mask = rng.random((n, m)) < 0.2
        matrix[mask] = MISSING
        # Keep at least one concrete value per column.
        matrix[0] = 0
        X = disagreement_fractions(matrix, p=0.3)
        assert np.allclose(X, brute_force_fractions(matrix, 0.3))

    def test_blocked_construction_matches_small(self):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 4, size=(300, 5)).astype(np.int32)
        X = disagreement_fractions(matrix)
        assert np.allclose(X, brute_force_fractions(matrix, 0.5))

    def test_averaging_mode_ignores_missing_columns(self):
        # Pair (0, 1): columns 0 and 2 comparable (one agree, one differ),
        # column 1 missing on one side -> averaged out.
        matrix = np.array(
            [
                [0, 0, 0],
                [0, MISSING, 1],
            ],
            dtype=np.int32,
        )
        X = disagreement_fractions(matrix, missing="average")
        assert X[0, 1] == pytest.approx(0.5)  # 1 differing of 2 comparable

    def test_averaging_mode_no_common_columns(self):
        matrix = np.array(
            [
                [0, MISSING],
                [MISSING, 0],
                [0, 0],
            ],
            dtype=np.int32,
        )
        X = disagreement_fractions(matrix, missing="average")
        assert X[0, 1] == pytest.approx(0.5)  # nothing comparable

    def test_averaging_mode_equals_coinflip_without_missing(self):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 3, size=(20, 4)).astype(np.int32)
        a = disagreement_fractions(matrix, missing="average")
        b = disagreement_fractions(matrix, missing="coin-flip")
        assert np.allclose(a, b)

    def test_unknown_missing_mode_rejected(self):
        with pytest.raises(ValueError):
            disagreement_fractions(np.array([[0], [1]], dtype=np.int32), missing="drop")

    def test_instance_builds_with_averaging(self):
        rng = np.random.default_rng(1)
        matrix = rng.integers(0, 3, size=(15, 4)).astype(np.int32)
        matrix[rng.random((15, 4)) < 0.2] = MISSING
        matrix[0] = 0
        instance = CorrelationInstance.from_label_matrix(matrix, missing="average")
        assert instance.n == 15
        assert float(instance.X.max()) <= 1.0

    def test_float32_for_large_instances(self):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 3, size=(5000, 2)).astype(np.int32)
        instance = CorrelationInstance.from_label_matrix(matrix)
        assert instance.X.dtype == np.float32


class TestCost:
    def test_cost_times_m_is_total_disagreement(self, figure1_clusterings, figure1_instance):
        candidates = [
            Clustering([0, 1, 0, 1, 2, 2]),
            Clustering.singletons(6),
            Clustering.single_cluster(6),
            Clustering([0, 0, 0, 1, 1, 2]),
        ]
        for candidate in candidates:
            assert figure1_instance.disagreements(candidate) == pytest.approx(
                total_disagreement(figure1_clusterings, candidate)
            )

    def test_cost_matches_brute_force_random(self):
        matrix, instance = random_aggregation_instance(n=20, m=4, k=3, seed=7)
        rng = np.random.default_rng(1)
        for _ in range(5):
            labels = rng.integers(0, 4, size=20)
            assert instance.cost(labels) == pytest.approx(
                brute_force_cost(instance.X, labels)
            )

    def test_cost_with_missing_matches_expected_disagreement(self):
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 3, size=(15, 4)).astype(np.int32)
        matrix[rng.random((15, 4)) < 0.25] = MISSING
        matrix[0] = 0
        instance = CorrelationInstance.from_label_matrix(matrix, p=0.3)
        candidate = Clustering(rng.integers(0, 3, size=15))
        assert instance.disagreements(candidate) == pytest.approx(
            total_disagreement(matrix, candidate, p=0.3)
        )

    def test_disagreements_requires_m(self):
        instance = CorrelationInstance.from_distances(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            instance.disagreements(Clustering([0, 1, 2]))

    def test_size_mismatch_rejected(self, figure1_instance):
        with pytest.raises(ValueError):
            figure1_instance.cost(Clustering([0, 1]))


class TestBoundsAndStructure:
    def test_lower_bound_below_all_candidates(self, figure1_instance):
        bound = figure1_instance.lower_bound()
        for labels in ([0, 1, 0, 1, 2, 2], [0] * 6, list(range(6))):
            assert bound <= figure1_instance.cost(Clustering(labels)) + 1e-9

    def test_figure1_lower_bound_is_tight(self, figure1_instance):
        # For Figure 1 the optimum (5 disagreements) meets the pairwise bound.
        assert figure1_instance.disagreement_lower_bound() == pytest.approx(5.0)

    def test_triangle_inequality_of_aggregation_instances(self):
        for seed in range(5):
            _, instance = random_aggregation_instance(n=12, m=3, k=3, seed=seed)
            assert instance.max_triangle_violation() <= 1e-9

    def test_triangle_violation_detected(self):
        X = np.array(
            [
                [0.0, 0.1, 0.9],
                [0.1, 0.0, 0.1],
                [0.9, 0.1, 0.0],
            ]
        )
        instance = CorrelationInstance.from_distances(X)
        assert instance.max_triangle_violation() == pytest.approx(0.7)

    def test_subinstance(self, figure1_instance):
        sub = figure1_instance.subinstance([0, 2, 4])
        assert sub.n == 3
        assert sub.X[0, 1] == pytest.approx(figure1_instance.X[0, 2])
        assert sub.m == figure1_instance.m

    def test_repr(self, figure1_instance):
        assert "n=6" in repr(figure1_instance)
