"""Tests for the substrate extras: DBSCAN and k-selection (repro.cluster)."""

import numpy as np
import pytest

from repro.cluster import (
    dbscan,
    euclidean_matrix,
    kmeans,
    kmeans_bic,
    select_k_bic,
    select_k_cross_validation,
)
from repro.core.labels import contingency_table
from repro.datasets import gaussian_with_noise


def blobs(seed=0, k=3, per=50, std=0.03):
    data = gaussian_with_noise(k, points_per_cluster=per, noise_fraction=0.0,
                               cluster_std=std, rng=seed)
    return data.points, data.truth


class TestDbscan:
    def test_recovers_dense_blobs(self):
        points, truth = blobs()
        labels = dbscan(points, eps=0.05, min_samples=4)
        # Big clusters must match the blobs one-to-one (stray border
        # singletons allowed).
        table = contingency_table(labels, truth)
        top = np.sort(table.max(axis=1))[-3:]
        assert top.sum() >= len(points) * 0.95

    def test_noise_as_singletons_partition(self):
        points, _ = blobs()
        rng = np.random.default_rng(0)
        with_noise = np.vstack([points, rng.uniform(2, 3, size=(10, 2))])
        labels = dbscan(with_noise, eps=0.05, min_samples=4)
        assert labels.min() >= 0  # every point labelled

    def test_noise_kept_as_minus_one(self):
        points, _ = blobs()
        rng = np.random.default_rng(0)
        with_noise = np.vstack([points, rng.uniform(2, 3, size=(10, 2))])
        labels = dbscan(with_noise, eps=0.05, min_samples=4, noise_as_singletons=False)
        assert (labels[-10:] == -1).all()

    def test_distance_matrix_input(self):
        points, _ = blobs(seed=1)
        direct = dbscan(points, eps=0.05, min_samples=4)
        via_matrix = dbscan(distances=euclidean_matrix(points), eps=0.05, min_samples=4)
        assert np.array_equal(direct, via_matrix)

    def test_everything_noise_with_tiny_eps(self):
        points, _ = blobs(seed=2)
        labels = dbscan(points, eps=1e-9, min_samples=2, noise_as_singletons=False)
        assert (labels == -1).all()

    def test_one_cluster_with_huge_eps(self):
        points, _ = blobs(seed=3)
        labels = dbscan(points, eps=100.0, min_samples=2)
        assert len(np.unique(labels)) == 1

    def test_invalid_parameters(self):
        points, _ = blobs()
        with pytest.raises(ValueError):
            dbscan(points, eps=0.0)
        with pytest.raises(ValueError):
            dbscan(points, min_samples=0)
        with pytest.raises(ValueError):
            dbscan(points, distances=euclidean_matrix(points))
        with pytest.raises(ValueError):
            dbscan()


class TestModelSelection:
    def test_bic_peaks_at_true_k(self):
        points, _ = blobs(seed=4, k=4, per=60)
        best, scores = select_k_bic(points, range(2, 9), rng=0)
        assert best == 4
        assert max(scores, key=scores.get) == 4

    def test_cross_validation_peaks_at_true_k(self):
        points, _ = blobs(seed=5, k=3, per=60)
        best, _ = select_k_cross_validation(points, range(2, 8), rng=0)
        assert best == 3

    def test_kmeans_bic_penalizes_overfitting(self):
        points, _ = blobs(seed=6, k=2, per=60)
        fit2 = kmeans(points, 2, rng=0)
        fit9 = kmeans(points, 9, rng=0)
        assert kmeans_bic(points, fit2) > kmeans_bic(points, fit9)

    def test_cv_fold_validation(self):
        points, _ = blobs(seed=7)
        with pytest.raises(ValueError):
            select_k_cross_validation(points, folds=1)

    def test_scores_cover_requested_range(self):
        points, _ = blobs(seed=8)
        _, scores = select_k_bic(points, range(2, 6), rng=0)
        assert sorted(scores) == [2, 3, 4, 5]
