"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import CategoricalDataset, generate_votes


@pytest.fixture
def votes_csv(tmp_path):
    path = tmp_path / "votes.csv"
    generate_votes(n=120, rng=0).to_csv(path)
    return str(path)


class TestCli:
    def test_methods_listing(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "agglomerative" in out and "balls" in out

    def test_generate_and_aggregate(self, tmp_path, capsys):
        csv = str(tmp_path / "data.csv")
        assert main(["generate", "votes", csv, "--rows", "100"]) == 0
        assert main(["aggregate", csv, "--method", "agglomerative"]) == 0
        out = capsys.readouterr().out
        assert "clusters" in out
        assert "E_C" in out

    def test_aggregate_with_balls_alpha(self, votes_csv, capsys):
        assert main(["aggregate", votes_csv, "--method", "balls", "--alpha", "0.4"]) == 0
        assert "balls" in capsys.readouterr().out

    def test_aggregate_sampling(self, votes_csv, capsys):
        code = main(
            [
                "aggregate",
                votes_csv,
                "--method",
                "sampling",
                "--inner",
                "furthest",
                "--sample-size",
                "60",
            ]
        )
        assert code == 0
        assert "sampling" in capsys.readouterr().out

    def test_labels_written(self, votes_csv, tmp_path, capsys):
        out_path = tmp_path / "labels.txt"
        assert main(["aggregate", votes_csv, "--out", str(out_path)]) == 0
        labels = np.loadtxt(out_path, dtype=int)
        assert labels.shape == (120,)

    def test_no_class_column(self, tmp_path, capsys):
        data = CategoricalDataset(
            "noclass", np.array([[0, 1], [1, 0], [0, 1]], dtype=np.int32), ["a", "b"]
        )
        path = tmp_path / "noclass.csv"
        data.to_csv(path)
        assert main(["aggregate", str(path), "--no-class"]) == 0
        out = capsys.readouterr().out
        assert "E_C" not in out

    def test_generate_mushrooms(self, tmp_path, capsys):
        csv = str(tmp_path / "mush.csv")
        assert main(["generate", "mushrooms", csv, "--rows", "200"]) == 0
        assert "200 rows" in capsys.readouterr().out

    def test_unknown_method_rejected(self, votes_csv):
        with pytest.raises(SystemExit):
            main(["aggregate", votes_csv, "--method", "nope"])

    def test_generate_census_and_movies(self, tmp_path, capsys):
        for dataset in ("census", "movies"):
            csv = str(tmp_path / f"{dataset}.csv")
            assert main(["generate", dataset, csv, "--rows", "150"]) == 0
        out = capsys.readouterr().out
        assert out.count("150 rows") == 2

    def test_annealing_available(self, capsys):
        main(["methods"])
        assert "annealing" in capsys.readouterr().out

    def test_custom_p(self, votes_csv, capsys):
        assert main(["aggregate", votes_csv, "--p", "0.3"]) == 0
        assert "clusters" in capsys.readouterr().out

    def test_collapse_flag(self, votes_csv, capsys):
        assert main(["aggregate", votes_csv, "--collapse"]) == 0
        assert "clusters" in capsys.readouterr().out
