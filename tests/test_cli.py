"""Tests for the command-line interface (repro.cli)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import CategoricalDataset, generate_votes


@pytest.fixture
def votes_csv(tmp_path):
    path = tmp_path / "votes.csv"
    generate_votes(n=120, rng=0).to_csv(path)
    return str(path)


class TestCli:
    def test_methods_listing(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "agglomerative" in out and "balls" in out

    def test_generate_and_aggregate(self, tmp_path, capsys):
        csv = str(tmp_path / "data.csv")
        assert main(["generate", "votes", csv, "--rows", "100"]) == 0
        assert main(["aggregate", csv, "--method", "agglomerative"]) == 0
        out = capsys.readouterr().out
        assert "clusters" in out
        assert "E_C" in out

    def test_aggregate_with_balls_alpha(self, votes_csv, capsys):
        assert main(["aggregate", votes_csv, "--method", "balls", "--alpha", "0.4"]) == 0
        assert "balls" in capsys.readouterr().out

    def test_aggregate_sampling(self, votes_csv, capsys):
        code = main(
            [
                "aggregate",
                votes_csv,
                "--method",
                "sampling",
                "--inner",
                "furthest",
                "--sample-size",
                "60",
            ]
        )
        assert code == 0
        assert "sampling" in capsys.readouterr().out

    def test_labels_written(self, votes_csv, tmp_path, capsys):
        out_path = tmp_path / "labels.txt"
        assert main(["aggregate", votes_csv, "--out", str(out_path)]) == 0
        labels = np.loadtxt(out_path, dtype=int)
        assert labels.shape == (120,)

    def test_no_class_column(self, tmp_path, capsys):
        data = CategoricalDataset(
            "noclass", np.array([[0, 1], [1, 0], [0, 1]], dtype=np.int32), ["a", "b"]
        )
        path = tmp_path / "noclass.csv"
        data.to_csv(path)
        assert main(["aggregate", str(path), "--no-class"]) == 0
        out = capsys.readouterr().out
        assert "E_C" not in out

    def test_generate_mushrooms(self, tmp_path, capsys):
        csv = str(tmp_path / "mush.csv")
        assert main(["generate", "mushrooms", csv, "--rows", "200"]) == 0
        assert "200 rows" in capsys.readouterr().out

    def test_unknown_method_rejected(self, votes_csv):
        with pytest.raises(SystemExit):
            main(["aggregate", votes_csv, "--method", "nope"])

    def test_generate_census_and_movies(self, tmp_path, capsys):
        for dataset in ("census", "movies"):
            csv = str(tmp_path / f"{dataset}.csv")
            assert main(["generate", dataset, csv, "--rows", "150"]) == 0
        out = capsys.readouterr().out
        assert out.count("150 rows") == 2

    def test_annealing_available(self, capsys):
        main(["methods"])
        assert "annealing" in capsys.readouterr().out

    def test_custom_p(self, votes_csv, capsys):
        assert main(["aggregate", votes_csv, "--p", "0.3"]) == 0
        assert "clusters" in capsys.readouterr().out

    def test_collapse_flag(self, votes_csv, capsys):
        assert main(["aggregate", votes_csv, "--collapse"]) == 0
        assert "clusters" in capsys.readouterr().out

    @pytest.mark.parametrize("method", ("local-search", "annealing", "sampling"))
    def test_seed_plumbed_to_stochastic_methods(self, votes_csv, capsys, method):
        """--seed reaches every stochastic method and makes reruns identical."""
        outputs = []
        for _ in range(2):
            assert main(["aggregate", votes_csv, "--method", method, "--seed", "5", "--json"]) == 0
            outputs.append(json.loads(capsys.readouterr().out))
        assert outputs[0]["seed"] == 5
        assert outputs[0]["disagreements"] == outputs[1]["disagreements"]

    def test_genetic_method_available(self, votes_csv, capsys):
        code = main(["aggregate", votes_csv, "--method", "genetic", "--seed", "1", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["method"] == "genetic"

    def test_aggregate_json_report(self, votes_csv, capsys):
        assert main(["aggregate", votes_csv, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dataset"]["rows"] == 120
        assert report["k"] >= 1
        assert report["disagreements"] > 0
        assert 0.0 <= report["class_error"] <= 1.0
        assert report["seed"] is None  # agglomerative is deterministic


class TestStreamCli:
    def test_stream_replays_and_reports(self, votes_csv, capsys):
        assert main(["stream", votes_csv]) == 0
        out = capsys.readouterr().out
        assert "update" in out
        assert "consensus" in out
        assert "E_C" in out

    def test_stream_json(self, votes_csv, capsys):
        assert main(["stream", votes_csv, "--json", "--seed", "3"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["updates"]) == 16  # one per votes attribute
        assert report["updates"][0]["index"] == 1
        assert report["disagreements"] == report["updates"][-1]["disagreements"]
        assert report["seed"] == 3

    def test_stream_checkpoint_and_resume(self, votes_csv, tmp_path, capsys):
        checkpoint = str(tmp_path / "engine.npz")
        assert main(["stream", votes_csv, "--checkpoint", checkpoint, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["stream", votes_csv, "--resume", checkpoint, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["resumed_from"] == checkpoint
        assert second["updates"][0]["index"] == first["updates"][-1]["index"] + 1

    def test_stream_resume_size_mismatch(self, votes_csv, tmp_path, capsys):
        checkpoint = str(tmp_path / "engine.npz")
        assert main(["stream", votes_csv, "--checkpoint", checkpoint]) == 0
        other = str(tmp_path / "other.csv")
        generate_votes(n=60, rng=1).to_csv(other)
        assert main(["stream", other, "--resume", checkpoint]) == 2
        assert "checkpoint covers" in capsys.readouterr().err

    def test_stream_decay_and_labels_out(self, votes_csv, tmp_path, capsys):
        out_path = tmp_path / "labels.txt"
        assert main(["stream", votes_csv, "--decay", "0.95", "--out", str(out_path)]) == 0
        labels = np.loadtxt(out_path, dtype=int)
        assert labels.shape == (120,)

    def test_stream_sampling_threshold(self, votes_csv, capsys):
        assert main(["stream", votes_csv, "--sampling-threshold", "50", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert all(update["used_sampling"] for update in report["updates"])


class TestObservabilityFlags:
    """The --trace / --metrics-out surface shared by aggregate, portfolio
    and stream."""

    @staticmethod
    def _span_millis(rendered: str, prefix: str) -> list[float]:
        import re

        out = []
        for line in rendered.splitlines():
            stripped = line.strip()
            if stripped.startswith(prefix):
                match = re.search(r"(\d+(?:\.\d+)?)ms", stripped)
                assert match is not None, f"span line without a timing: {line!r}"
                out.append(float(match.group(1)))
        return out

    def test_portfolio_trace_member_totals_cover_the_root(self, votes_csv, capsys):
        assert main(["portfolio", votes_csv, "--jobs", "1", "--trace"]) == 0
        out = capsys.readouterr().out
        roots = self._span_millis(out, "portfolio ")
        members = self._span_millis(out, "member:")
        assert len(roots) == 1
        assert members, "no member spans rendered"
        member_total = sum(members)
        # Acceptance bound: members account for the root to within 5%
        # (plus a 2ms absolute floor for tiny instances).
        assert abs(roots[0] - member_total) <= max(0.05 * roots[0], 2.0), out

    def test_aggregate_trace_renders_build_and_solve(self, votes_csv, capsys):
        assert main(["aggregate", votes_csv, "--method", "balls", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "aggregate" in out
        assert "build" in out
        assert "solve" in out
        assert "balls.sweep" in out

    def test_trace_with_json_report_keeps_stdout_parseable(self, votes_csv, capsys):
        assert main(["portfolio", votes_csv, "--jobs", "1", "--trace", "--json"]) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)  # tree went to stderr, not stdout
        assert report["best_method"]
        assert "portfolio" in captured.err

    def test_metrics_out_writes_a_valid_snapshot(self, votes_csv, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(["portfolio", votes_csv, "--jobs", "1", "--metrics-out", str(metrics_path)]) == 0
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["portfolio.runs"] == 1
        assert snapshot["counters"]["instance.builds"] >= 1
        assert "portfolio.member.seconds" in snapshot["histograms"]
        assert f"metrics written  {metrics_path}" in capsys.readouterr().out

    def test_metrics_out_flag_does_not_leak_global_state(self, votes_csv, tmp_path, capsys):
        from repro.obs import get_registry

        metrics_path = tmp_path / "metrics.json"
        assert main(["aggregate", votes_csv, "--metrics-out", str(metrics_path)]) == 0
        capsys.readouterr()
        assert not get_registry().enabled

    def test_stream_supports_observability_flags(self, votes_csv, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        code = main(["stream", votes_csv, "--trace", "--metrics-out", str(metrics_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "stream.observe" in out
        snapshot = json.loads(metrics_path.read_text())
        update_counters = [
            count
            for name, count in snapshot["counters"].items()
            if name in ("stream.warm_updates", "stream.rebuilds", "stream.sampling_updates")
        ]
        assert sum(update_counters) >= 1
