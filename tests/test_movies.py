"""Tests for the Movies dataset generator (repro.datasets.movies)."""

import numpy as np
import pytest

from repro import aggregate
from repro.datasets import generate_movies
from repro.metrics import classification_error


class TestGenerateMovies:
    def test_shape(self):
        movies = generate_movies(n=200, n_scenes=4, n_outliers=5, rng=0)
        assert movies.n == 200
        assert movies.m == 5
        assert movies.class_names[-1] == "outlier"
        assert int((movies.classes == 4).sum()) == 5

    def test_deterministic(self):
        a = generate_movies(rng=3)
        b = generate_movies(rng=3)
        assert np.array_equal(a.data, b.data)

    def test_value_names_cover_arities(self):
        movies = generate_movies(rng=0)
        for j, arity in enumerate(movies.arities()):
            assert len(movies.value_names[j]) >= arity

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_movies(n=5, n_outliers=5)
        with pytest.raises(ValueError):
            generate_movies(n_scenes=1)

    def test_scenes_recovered_and_outliers_isolated(self):
        movies = generate_movies(n=400, n_scenes=6, n_outliers=8, rng=0)
        result = aggregate(movies.label_matrix(), method="agglomerative")
        sizes = result.clustering.sizes()
        assert int((sizes >= 20).sum()) == 6  # the six scenes
        assert classification_error(result.clustering, movies.classes) < 0.02
        outliers = np.flatnonzero(movies.classes == 6)
        small = np.isin(result.clustering.labels, np.flatnonzero(sizes <= 3))
        assert small[outliers].all(), "every chimera should be isolated"
