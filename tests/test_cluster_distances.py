"""Tests for the distance kernels (repro.cluster.distances)."""

import numpy as np
import pytest

from repro.core.labels import MISSING
from repro.cluster.distances import (
    euclidean_matrix,
    hamming_fraction_matrix,
    jaccard_cross_similarity,
    jaccard_similarity_matrix,
    squared_euclidean,
)


class TestEuclidean:
    def test_squared_euclidean_known(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = squared_euclidean(points, points)
        assert distances[0, 1] == pytest.approx(25.0)

    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(20, 3))
        centers = rng.normal(size=(5, 3))
        fast = squared_euclidean(points, centers)
        naive = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(fast, naive)

    def test_never_negative(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(50, 4)) * 1e-8  # rounding stress
        assert squared_euclidean(points, points).min() >= 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            squared_euclidean(np.zeros((3, 2)), np.zeros((3, 3)))

    def test_euclidean_matrix_zero_diagonal(self):
        points = np.random.default_rng(2).normal(size=(10, 2))
        matrix = euclidean_matrix(points)
        assert np.allclose(np.diagonal(matrix), 0.0)
        assert np.allclose(matrix, matrix.T)


class TestHamming:
    def test_known_fractions(self):
        rows = np.array([[0, 0, 0], [0, 0, 1], [1, 1, 1]], dtype=np.int32)
        matrix = hamming_fraction_matrix(rows)
        assert matrix[0, 1] == pytest.approx(1 / 3)
        assert matrix[0, 2] == pytest.approx(1.0)

    def test_missing_skipped(self):
        rows = np.array([[0, MISSING], [0, 1]], dtype=np.int32)
        matrix = hamming_fraction_matrix(rows)
        assert matrix[0, 1] == pytest.approx(0.0)  # only attribute 0 comparable

    def test_no_common_attributes_is_distance_one(self):
        rows = np.array([[0, MISSING], [MISSING, 1]], dtype=np.int32)
        matrix = hamming_fraction_matrix(rows)
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            hamming_fraction_matrix(np.array([0, 1]))


class TestJaccard:
    def test_identical_rows(self):
        rows = np.array([[0, 1, 2], [0, 1, 2]], dtype=np.int32)
        assert jaccard_similarity_matrix(rows)[0, 1] == pytest.approx(1.0)

    def test_disjoint_rows(self):
        rows = np.array([[0, 0], [1, 1]], dtype=np.int32)
        assert jaccard_similarity_matrix(rows)[0, 1] == pytest.approx(0.0)

    def test_partial_overlap(self):
        # 2 shared items of 3 each: J = 2 / (3 + 3 - 2) = 0.5.
        rows = np.array([[0, 1, 2], [0, 1, 9]], dtype=np.int32)
        assert jaccard_similarity_matrix(rows)[0, 1] == pytest.approx(0.5)

    def test_missing_drops_items(self):
        # Row 0 has 1 item, row 1 has 2; 1 shared: J = 1 / 2.
        rows = np.array([[0, MISSING], [0, 1]], dtype=np.int32)
        assert jaccard_similarity_matrix(rows)[0, 1] == pytest.approx(0.5)

    def test_cross_matches_square(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 4, size=(30, 6)).astype(np.int32)
        rows[rng.random((30, 6)) < 0.1] = MISSING
        square = jaccard_similarity_matrix(rows)
        cross = jaccard_cross_similarity(rows[:12], rows[12:])
        assert np.allclose(cross, square[:12, 12:])

    def test_cross_shape_validation(self):
        with pytest.raises(ValueError):
            jaccard_cross_similarity(np.zeros((2, 3), dtype=int), np.zeros((2, 4), dtype=int))

    def test_symmetric_unit_diagonal(self):
        rng = np.random.default_rng(4)
        rows = rng.integers(0, 3, size=(15, 5)).astype(np.int32)
        matrix = jaccard_similarity_matrix(rows)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diagonal(matrix), 1.0)
