"""Tests for sharded divide-and-merge aggregation (repro.shard).

Three layers of evidence:

- **Unit** — shard plans are partitions; atom distances match a brute
  force over the materialized pair matrix (weighted and missing-value
  cases included).
- **Metamorphic** — on a duplicate-heavy matrix whose contiguous shard
  boundary falls on a duplicate-group edge, the sharded pipeline is
  *exactly* the collapse-to-atoms pipeline: its consensus cost equals
  the single-shot exact optimum over the collapsed instance.
- **Differential** — the sharded objective stays within
  :data:`~repro.shard.QUALITY_ENVELOPE` of single-shot SAMPLING, and a
  fixed ``(seed, n_shards)`` is bit-identical for every worker count.
"""

import json

import numpy as np
import pytest

from repro import Clustering, aggregate
from repro.cli import main
from repro.core import CorrelationInstance, total_disagreement
from repro.core.atoms import collapse_duplicates
from repro.datasets import generate_votes
from repro.shard import (
    MERGE_METHODS,
    PARTITION_MODES,
    QUALITY_ENVELOPE,
    atom_distances,
    merge_shards,
    plan_shards,
    shard_aggregate,
)

from strategies import far_atoms_problem, planted_instance


class TestPartition:
    def test_contiguous_plan_is_a_sorted_partition(self):
        plan = plan_shards(10, 3)
        assert [piece.tolist() for piece in plan] == [
            [0, 1, 2, 3],
            [4, 5, 6],
            [7, 8, 9],
        ]

    def test_random_plan_is_a_partition(self):
        plan = plan_shards(23, 4, mode="random", rng=0)
        together = np.concatenate(plan)
        assert np.array_equal(np.sort(together), np.arange(23))
        sizes = [piece.size for piece in plan]
        assert max(sizes) - min(sizes) <= 1
        for piece in plan:
            assert np.array_equal(piece, np.sort(piece))

    def test_random_plan_is_seeded(self):
        a = plan_shards(50, 4, mode="random", rng=7)
        b = plan_shards(50, 4, mode="random", rng=7)
        c = plan_shards(50, 4, mode="random", rng=8)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        assert any(not np.array_equal(x, y) for x, y in zip(a, c))

    def test_contiguous_ignores_rng(self):
        a = plan_shards(12, 3, mode="contiguous", rng=1)
        b = plan_shards(12, 3, mode="contiguous", rng=2)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_shards_clamped_to_n(self):
        plan = plan_shards(3, 8)
        assert len(plan) == 3
        assert all(piece.size == 1 for piece in plan)

    def test_validation(self):
        with pytest.raises(ValueError, match="n must be positive"):
            plan_shards(0, 2)
        with pytest.raises(ValueError, match="n_shards must be positive"):
            plan_shards(5, 0)
        with pytest.raises(ValueError, match="partition mode"):
            plan_shards(5, 2, mode="diagonal")
        assert set(PARTITION_MODES) == {"contiguous", "random"}


def brute_force_atom_distances(matrix, atom_of, p=0.5, weights=None):
    """O(n^2) reference: weighted mean pair distance between atoms."""
    instance = CorrelationInstance.from_label_matrix(matrix, p=p)
    X = instance.backend.materialize(np.float64)
    w = np.ones(matrix.shape[0]) if weights is None else np.asarray(weights, float)
    n_atoms = int(atom_of.max()) + 1
    out = np.zeros((n_atoms, n_atoms))
    for a in range(n_atoms):
        for b in range(n_atoms):
            rows_a = np.flatnonzero(atom_of == a)
            rows_b = np.flatnonzero(atom_of == b)
            pair_w = np.outer(w[rows_a], w[rows_b])
            out[a, b] = float((pair_w * X[np.ix_(rows_a, rows_b)]).sum() / pair_w.sum())
    np.fill_diagonal(out, 0.0)
    return out


class TestAtomDistances:
    def test_matches_brute_force(self):
        _, matrix = planted_instance(n=30, m=5, groups=3, flip=0.3, seed=0)
        atom_of = np.arange(30) % 7
        distances, atom_w = atom_distances(matrix, atom_of)
        assert np.allclose(distances, brute_force_atom_distances(matrix, atom_of))
        assert atom_w.tolist() == np.bincount(atom_of).tolist()

    def test_matches_brute_force_with_missing_values(self):
        _, matrix = planted_instance(n=24, m=6, groups=3, flip=0.2, seed=1)
        matrix = matrix.copy()
        rng = np.random.default_rng(0)
        matrix[rng.random(matrix.shape) < 0.15] = -1
        matrix[0] = 0  # keep every column informative
        atom_of = rng.integers(0, 5, size=24)
        atom_of[:5] = np.arange(5)  # every atom non-empty
        for p in (0.5, 0.3):
            distances, _ = atom_distances(matrix, atom_of, p=p)
            assert np.allclose(
                distances, brute_force_atom_distances(matrix, atom_of, p=p)
            )

    def test_weighted_rows_match_physical_duplication(self):
        matrix, base, copies = far_atoms_problem()
        # Collapsed rows with multiplicities == the expanded matrix.
        atom_of_base = np.array([0, 0, 1, 1, 2])
        expanded_atom_of = np.repeat(atom_of_base, copies)
        weighted, weighted_w = atom_distances(
            base, atom_of_base, weights=copies.astype(np.float64)
        )
        expanded, expanded_w = atom_distances(matrix, expanded_atom_of)
        assert np.allclose(weighted, expanded)
        assert np.allclose(weighted_w, expanded_w)

    def test_distance_matrix_contract(self):
        _, matrix = planted_instance(n=20, m=4, groups=2, flip=0.4, seed=2)
        distances, _ = atom_distances(matrix, np.arange(20) % 4)
        assert np.array_equal(distances, distances.T)
        assert distances.min() >= 0.0 and distances.max() <= 1.0
        assert np.all(np.diag(distances) == 0.0)

    def test_validation(self):
        _, matrix = planted_instance(n=10, m=3, groups=2, flip=0.1, seed=3)
        with pytest.raises(ValueError, match="atom_of"):
            atom_distances(matrix, np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError, match="non-negative"):
            atom_distances(matrix, np.full(10, -1, dtype=np.int64))
        with pytest.raises(ValueError, match="contiguous"):
            atom_distances(matrix, np.full(10, 2, dtype=np.int64))  # atoms 0,1 empty


class TestMergeShards:
    def test_expansion_cost_decomposes_as_atom_cost_plus_constant(self):
        """d(expand(C)) = d_atoms(C) + const — the identity that makes the
        weighted-atom merge exact."""
        _, matrix = planted_instance(n=18, m=5, groups=3, flip=0.3, seed=4)
        atom_of = np.arange(18) % 6
        distances, atom_w = atom_distances(matrix, atom_of)
        atom_instance = CorrelationInstance(distances, m=5, weights=atom_w)
        full = CorrelationInstance.from_label_matrix(matrix)
        rng = np.random.default_rng(0)
        gaps = []
        for _ in range(4):
            atom_clustering = Clustering(rng.integers(0, 3, size=6))
            expanded = Clustering(atom_clustering.labels[atom_of])
            gaps.append(full.cost(expanded) - atom_instance.cost(atom_clustering))
        assert np.ptp(gaps) == pytest.approx(0.0, abs=1e-9)

    def test_exact_merge_is_optimal_over_atom_respecting_clusterings(self):
        matrix, base, copies = far_atoms_problem()
        atom_of = np.repeat(np.arange(5), copies)
        result = merge_shards(matrix, atom_of, merge="exact")
        assert result.method == "exact"
        assert result.n_atoms == 5
        # Exhaustive check over all partitions of 5 atoms (Bell(5) = 52).
        distances, atom_w = atom_distances(matrix, atom_of)
        atom_instance = CorrelationInstance(distances, m=matrix.shape[1], weights=atom_w)
        best = min(
            atom_instance.cost(Clustering(np.array(labels)))
            for labels in np.ndindex(*(5,) * 5)
        )
        assert result.atom_cost == pytest.approx(best, rel=1e-9)

    def test_merge_never_worse_than_shard_union(self):
        for merge in ("exact", "local-search"):
            _, matrix = planted_instance(n=26, m=6, groups=3, flip=0.35, seed=5)
            atom_of = np.arange(26) % 9
            result = merge_shards(matrix, atom_of, merge=merge)
            distances, atom_w = atom_distances(matrix, atom_of)
            atom_instance = CorrelationInstance(distances, m=6, weights=atom_w)
            union_cost = atom_instance.cost(Clustering(np.arange(9)))
            assert result.atom_cost <= union_cost + 1e-9

    def test_single_atom_is_trivial(self):
        _, matrix = planted_instance(n=8, m=3, groups=1, flip=0.0, seed=6)
        result = merge_shards(matrix, np.zeros(8, dtype=np.int64))
        assert result.method == "trivial"
        assert result.clustering.k == 1
        assert result.atom_cost == 0.0

    def test_validation(self):
        _, matrix = planted_instance(n=10, m=3, groups=2, flip=0.1, seed=7)
        atom_of = np.arange(10) % 3
        with pytest.raises(ValueError, match="merge strategy"):
            merge_shards(matrix, atom_of, merge="vote")
        with pytest.raises(ValueError, match="max_exact_atoms"):
            merge_shards(matrix, atom_of, max_exact_atoms=0)
        _, wide = planted_instance(n=30, m=3, groups=2, flip=0.1, seed=7)
        with pytest.raises(ValueError, match="at most"):
            merge_shards(wide, np.arange(30), merge="exact")
        assert set(MERGE_METHODS) == {"auto", "exact", "local-search"}

    def test_auto_switches_to_local_search_above_cap(self):
        _, matrix = planted_instance(n=30, m=5, groups=3, flip=0.2, seed=8)
        result = merge_shards(matrix, np.arange(30) % 10, max_exact_atoms=4)
        assert result.method == "local-search"


class TestShardAggregate:
    def test_metamorphic_aligned_shards_equal_single_shot_on_atoms(self):
        """Sharding a duplicated matrix along duplicate-group boundaries
        is single-shot aggregation of the collapsed (atom) instance."""
        matrix, _, _ = far_atoms_problem()
        sharded = shard_aggregate(
            matrix,
            n_shards=2,
            partition="contiguous",
            shard_method="agglomerative",
            merge="exact",
            rng=0,
        )
        single = aggregate(matrix, method="exact", collapse=True)
        assert sharded.n_atoms == 5  # shards recovered exactly the duplicate groups
        assert sharded.merge_method == "exact"
        assert total_disagreement(matrix, sharded.clustering) == pytest.approx(
            single.disagreements
        )

    def test_metamorphic_duplicates_stay_together(self):
        matrix, _, copies = far_atoms_problem()
        atoms = collapse_duplicates(matrix)
        result = shard_aggregate(
            matrix, n_shards=2, shard_method="agglomerative", rng=0
        )
        for atom in range(atoms.n_atoms):
            rows = np.flatnonzero(atoms.inverse == atom)
            assert len(set(result.clustering.labels[rows].tolist())) == 1

    @pytest.mark.parametrize("seed", range(3))
    def test_differential_cost_within_envelope_of_sampling(self, seed):
        _, matrix = planted_instance(n=240, m=8, groups=4, flip=0.3, seed=seed)
        single = aggregate(matrix, method="sampling", rng=0, compute_lower_bound=False)
        sharded = aggregate(
            matrix, method="sharded", n_shards=3, rng=0, compute_lower_bound=False
        )
        assert sharded.clustering.n == 240
        assert (
            sharded.disagreements
            <= QUALITY_ENVELOPE * single.disagreements + 1e-9
        )

    def test_bit_identical_across_worker_counts(self, monkeypatch):
        _, matrix = planted_instance(n=120, m=6, groups=3, flip=0.2, seed=1)
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = shard_aggregate(matrix, n_shards=3, rng=7)
        monkeypatch.setenv("REPRO_JOBS", "2")
        forked = shard_aggregate(matrix, n_shards=3, rng=7)
        assert serial.clustering == forked.clustering
        assert forked.jobs == 2
        assert [run.cost for run in serial.shards] == [run.cost for run in forked.shards]
        assert [run.k for run in serial.shards] == [run.k for run in forked.shards]

    def test_deterministic_under_seed(self):
        _, matrix = planted_instance(n=90, m=5, groups=3, flip=0.25, seed=2)
        a = shard_aggregate(matrix, n_shards=4, partition="random", rng=42)
        b = shard_aggregate(matrix, n_shards=4, partition="random", rng=42)
        assert a.clustering == b.clustering

    def test_instance_method_shards_and_random_partition(self):
        truth, matrix = planted_instance(n=80, m=6, groups=3, flip=0.1, seed=3)
        result = shard_aggregate(
            matrix,
            n_shards=2,
            partition="random",
            shard_method="local-search",
            merge="local-search",
            rng=5,
        )
        assert result.clustering == Clustering(truth)
        assert result.merge_method == "local-search"

    def test_aggregate_dispatch_reports_shard_params(self):
        _, matrix = planted_instance(n=60, m=5, groups=3, flip=0.2, seed=4)
        result = aggregate(matrix, method="sharded", n_shards=2, rng=0)
        shard = result.params["shard"]
        assert shard["n_shards"] == 2
        assert len(shard["shards"]) == 2
        assert shard["merge_method"] in ("exact", "local-search", "trivial")
        assert result.disagreements == pytest.approx(
            total_disagreement(matrix, result.clustering)
        )

    def test_aggregate_sharded_composes_with_collapse(self):
        matrix, _, _ = far_atoms_problem()
        result = aggregate(matrix, method="sharded", n_shards=2, collapse=True, rng=0)
        assert result.clustering.n == matrix.shape[0]
        atoms = collapse_duplicates(matrix)
        for atom in range(atoms.n_atoms):
            rows = np.flatnonzero(atoms.inverse == atom)
            assert len(set(result.clustering.labels[rows].tolist())) == 1

    def test_result_report_shapes(self):
        _, matrix = planted_instance(n=40, m=4, groups=2, flip=0.2, seed=5)
        result = shard_aggregate(matrix, n_shards=2, rng=0)
        report = result.to_dict()
        assert report["n_shards"] == 2
        assert report["k"] == result.clustering.k
        assert [run["index"] for run in report["shards"]] == [0, 1]
        assert "atoms" in result.summary()

    def test_validation(self):
        _, matrix = planted_instance(n=20, m=3, groups=2, flip=0.1, seed=6)
        with pytest.raises(ValueError, match="n_shards"):
            shard_aggregate(matrix, n_shards=0)
        with pytest.raises(ValueError, match="weights"):
            shard_aggregate(matrix, weights=np.full(20, 0.5))
        with pytest.raises(ValueError, match="inner"):
            shard_aggregate(matrix, shard_method="telepathy")
        instance = CorrelationInstance.from_label_matrix(matrix)
        with pytest.raises(ValueError):
            aggregate(instance, method="sharded")


class TestShardCli:
    @pytest.fixture
    def votes_csv(self, tmp_path):
        path = tmp_path / "votes.csv"
        generate_votes(n=90, rng=0).to_csv(path)
        return str(path)

    def test_shard_json_report(self, votes_csv, capsys):
        assert main(["shard", votes_csv, "--shards", "3", "--seed", "7", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["n_shards"] == 3
        assert len(report["shards"]) == 3
        assert report["seed"] == 7
        assert report["merge_method"] in ("exact", "local-search", "trivial")
        assert report["cost"] == pytest.approx(
            report["disagreements"] / report["dataset"]["attributes"]
        )

    def test_shard_human_output_and_labels(self, votes_csv, tmp_path, capsys):
        out_path = tmp_path / "labels.txt"
        code = main(
            ["shard", votes_csv, "--shards", "2", "--merge", "local-search",
             "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards" in out and "merge" in out and "D(C)" in out
        assert np.loadtxt(out_path, dtype=int).shape == (90,)

    def test_shard_trace_renders_pipeline_spans(self, votes_csv, capsys):
        assert main(["shard", votes_csv, "--shards", "2", "--trace"]) == 0
        out = capsys.readouterr().out
        for name in ("shard.partition", "shard.solve", "shard.merge"):
            assert name in out

    def test_shard_trace_with_json_keeps_stdout_parseable(self, votes_csv, capsys):
        assert main(["shard", votes_csv, "--shards", "2", "--trace", "--json"]) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)  # tree went to stderr, not stdout
        assert report["n_shards"] == 2
        assert "shard.merge" in captured.err
