"""Unit and wiring tests for CC-PIVOT / CMSY (repro.algorithms.pivot).

Four layers:

- **Selection** — the pivot order is a seeded permutation (deterministic
  under spawned generators); on weighted atoms the exponential race
  clocks draw atoms proportionally to multiplicity.
- **Sweep** — the vectorized threshold sweep matches a brute-force
  pure-Python QwickCluster over the materialized pair matrix, including
  missing-value matrices under both §2 strategies and off-default
  thresholds.
- **CMSY** — the rounding function hits its knees exactly, the LP tier
  produces a feasible fractional solution at least as good as ``X``
  itself, and both tiers return valid seeded clusterings.
- **Wiring** — ``aggregate(method="pivot"|"cmsy")`` dispatches to the
  backend-free fast path (no ``(n, n)`` structure is ever built),
  forwards parameters, collapses atoms correctly, and both methods are
  portfolio / shard / CLI citizens.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Clustering, aggregate
from repro.cli import main
from repro.core import CorrelationInstance, total_disagreement
from repro.core.distance import weighted_total_disagreement
from repro.core.aggregate import STOCHASTIC_METHODS, available_methods
from repro.core.atoms import collapse_duplicates
from repro.core.instance import disagreement_fractions
from repro.core.labels import MISSING
from repro.algorithms.pivot import (
    CMSY_A,
    CMSY_B,
    DEFAULT_LP_THRESHOLD,
    _lp_fractional,
    _selection_order,
    cmsy,
    cmsy_rounding,
    pivot,
)
from repro.datasets import generate_votes
from repro.shard import shard_aggregate

from strategies import far_atoms_problem, grid_matrix, random_label_matrix

_EPS = 1e-9


def reference_pivot(matrix, seed, threshold=0.5, p=0.5, missing="coin-flip"):
    """Brute-force QwickCluster: materialized X, pure-Python pair loop.

    Replays the production selection rule (first unclustered entry of
    ``default_rng(seed).permutation(n)``) so the outputs are comparable
    clustering-for-clustering, not merely cost-for-cost.
    """
    X = disagreement_fractions(matrix, p=p, missing=missing)
    n = matrix.shape[0]
    order = np.random.default_rng(seed).permutation(n)
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    for u in order:
        if labels[u] >= 0:
            continue
        for v in range(n):
            if labels[v] < 0 and X[u, v] <= threshold:
                labels[v] = next_label
        next_label += 1
    return Clustering(labels)


class TestSelectionOrder:
    def test_unweighted_is_a_seeded_permutation(self):
        order = _selection_order(np.random.default_rng(3), 20, None)
        assert np.array_equal(np.sort(order), np.arange(20))
        again = _selection_order(np.random.default_rng(3), 20, None)
        assert np.array_equal(order, again)

    def test_deterministic_under_spawned_generators(self):
        """Generators spawned from the same SeedSequence lineage are a
        supported seeding style (the portfolio/shard engines use it)."""
        children_a = np.random.SeedSequence(42).spawn(3)
        children_b = np.random.SeedSequence(42).spawn(3)
        matrix = grid_matrix(25, 4, 3, seed=0)
        a = pivot(matrix, rng=np.random.default_rng(children_a[1]))
        b = pivot(matrix, rng=np.random.default_rng(children_b[1]))
        assert a == b
        sibling = pivot(matrix, rng=np.random.default_rng(children_a[2]))
        # Distinct spawn children are distinct streams (orders may rarely
        # coincide on tiny n; the clustering at n=25 makes that unlikely
        # enough to pin down).
        assert not np.array_equal(
            _selection_order(np.random.default_rng(children_a[1]), 25, None),
            _selection_order(np.random.default_rng(children_a[2]), 25, None),
        )
        assert sibling.n == a.n

    def test_weighted_order_is_seeded(self):
        weights = np.array([3.0, 1.0, 1.0, 5.0, 2.0])
        a = _selection_order(np.random.default_rng(11), 5, weights)
        b = _selection_order(np.random.default_rng(11), 5, weights)
        assert np.array_equal(a, b)
        assert np.array_equal(np.sort(a), np.arange(5))

    def test_weighted_first_pick_matches_multiplicities(self):
        """P(atom drawn first) must be w_i / sum(w) — the race clocks
        realize uniform sampling over the *expanded* objects."""
        weights = np.array([5.0, 1.0, 1.0])
        trials = 4000
        first = np.array(
            [
                _selection_order(np.random.default_rng(seed), 3, weights)[0]
                for seed in range(trials)
            ]
        )
        frequency = np.mean(first == 0)
        # Binomial sd at p=5/7, 4000 trials is ~0.007; allow ~5 sd.
        assert abs(frequency - 5.0 / 7.0) < 0.04


class TestSweepAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("shape", [(6, 3, 3), (9, 4, 3), (13, 5, 4)])
    def test_matches_reference_on_random_grids(self, shape, seed):
        n, m, k = shape
        matrix = grid_matrix(n, m, k, seed=seed * 17 + n)
        assert pivot(matrix, rng=seed) == reference_pivot(matrix, seed)

    @pytest.mark.parametrize("threshold", [0.3, 0.5, 0.7])
    def test_matches_reference_off_default_thresholds(self, threshold):
        matrix = grid_matrix(12, 4, 3, seed=5)
        for seed in range(4):
            assert pivot(matrix, rng=seed, threshold=threshold) == reference_pivot(
                matrix, seed, threshold=threshold
            )

    @pytest.mark.parametrize("missing_strategy", ["coin-flip", "average"])
    @pytest.mark.parametrize("p", [0.3, 0.5])
    def test_missing_labels_match_disagreement_fractions(self, missing_strategy, p):
        """Satellite: holes must flow through the row oracle exactly as
        they flow through :func:`disagreement_fractions`."""
        rng = np.random.default_rng(99)
        matrix = random_label_matrix(11, 4, 3, rng, missing_rate=0.3)
        assert np.any(matrix == MISSING)
        for seed in range(5):
            assert pivot(
                matrix, rng=seed, p=p, missing=missing_strategy
            ) == reference_pivot(matrix, seed, p=p, missing=missing_strategy)

    def test_instance_path_is_bit_identical_to_matrix_path(self):
        """Dense and lazy instances gather the same rows the label-matrix
        fast path computes, so a fixed seed must agree across all three."""
        matrix = grid_matrix(30, 5, 4, seed=2)
        dense = CorrelationInstance.from_label_matrix(matrix)
        lazy = CorrelationInstance.from_label_matrix(matrix, backend="lazy")
        for seed in range(5):
            direct = pivot(matrix, rng=seed)
            assert pivot(dense, rng=seed) == direct
            assert pivot(lazy, rng=seed) == direct

    def test_duplicate_rows_always_share_a_cluster(self):
        """Identical rows are at distance 0, which every pivot joins."""
        matrix, _, copies = far_atoms_problem()
        atoms = collapse_duplicates(matrix)
        for seed in range(6):
            labels = pivot(matrix, rng=seed).labels
            for atom in range(atoms.n_atoms):
                rows = np.flatnonzero(atoms.inverse == atom)
                assert len(set(labels[rows].tolist())) == 1

    def test_weighted_atoms_expand_to_a_feasible_clustering(self):
        matrix, base, copies = far_atoms_problem()
        atoms = collapse_duplicates(matrix)
        for seed in range(4):
            compact = pivot(
                atoms.matrix, weights=atoms.weights.astype(np.float64), rng=seed
            )
            expanded = atoms.expand(compact)
            assert expanded.n == matrix.shape[0]
            # Far atoms (all pair distances >= 5/6 > 1/2) can never join a
            # foreign pivot, so PIVOT recovers the atoms exactly.
            assert compact.k == atoms.n_atoms


class TestValidation:
    def test_threshold_domain(self):
        matrix = grid_matrix(5, 3, 2, seed=0)
        for bad in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ValueError, match="threshold must be in"):
                pivot(matrix, threshold=bad)

    def test_weights_shape_and_sign(self):
        matrix = grid_matrix(5, 3, 2, seed=0)
        with pytest.raises(ValueError, match="one multiplicity per row"):
            pivot(matrix, weights=np.ones(4))
        with pytest.raises(ValueError, match="positive multiplicities"):
            pivot(matrix, weights=np.array([1.0, 2.0, 0.0, 1.0, 1.0]))

    def test_weights_rejected_on_instance_path(self):
        instance = CorrelationInstance.from_label_matrix(grid_matrix(5, 3, 2, seed=0))
        with pytest.raises(ValueError, match="label-matrix path"):
            pivot(instance, weights=np.ones(5))

    def test_cmsy_lp_threshold_domain(self):
        matrix = grid_matrix(5, 3, 2, seed=0)
        with pytest.raises(ValueError, match="lp_threshold must be >= 0"):
            cmsy(matrix, lp_threshold=-1)


class TestCmsy:
    def test_rounding_function_knees(self):
        x = np.array([0.0, CMSY_A, (CMSY_A + CMSY_B) / 2.0, CMSY_B, 0.9, 1.0])
        f = cmsy_rounding(x)
        assert f[0] == 0.0 and f[1] == 0.0
        assert f[2] == pytest.approx(0.25)
        assert f[3] == 1.0 and f[4] == 1.0 and f[5] == 1.0
        fine = cmsy_rounding(np.linspace(0.0, 1.0, 101))
        assert np.all(np.diff(fine) >= -_EPS)  # monotone
        assert np.all((fine >= 0.0) & (fine <= 1.0))

    def test_lp_tier_is_feasible_and_beats_x_itself(self):
        pytest.importorskip("scipy")
        matrix = grid_matrix(8, 3, 3, seed=4)
        X = disagreement_fractions(matrix)
        fractional = _lp_fractional(X, None)
        assert fractional is not None
        assert np.allclose(fractional, fractional.T)
        assert np.all((fractional >= 0.0) & (fractional <= 1.0 + _EPS))
        n = X.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert fractional[i, j] <= fractional[i, k] + fractional[k, j] + 1e-7

        def lp_objective(x):
            iu, ju = np.triu_indices(n, k=1)
            return float(np.sum(X[iu, ju] * (1 - x[iu, ju]) + (1 - X[iu, ju]) * x[iu, ju]))

        assert lp_objective(fractional) <= lp_objective(X) + 1e-7

    def test_tiers_are_seeded_and_valid(self):
        small = grid_matrix(10, 3, 3, seed=1)  # n <= DEFAULT_LP_THRESHOLD: LP tier
        large = grid_matrix(30, 4, 3, seed=1)  # n > threshold: rounding tier
        assert small.shape[0] <= DEFAULT_LP_THRESHOLD < large.shape[0]
        for matrix in (small, large):
            a = cmsy(matrix, rng=5)
            b = cmsy(matrix, rng=5)
            assert a == b
            assert a.n == matrix.shape[0]
        # Forcing the rounding tier on the small instance stays valid too.
        forced = cmsy(small, rng=5, lp_threshold=0)
        assert forced.n == small.shape[0]

    def test_rounding_tier_instance_parity(self):
        """Above the LP threshold the row oracles must be bitwise equal
        across the matrix / dense / lazy paths, hence identical output."""
        matrix = grid_matrix(28, 5, 4, seed=3)
        dense = CorrelationInstance.from_label_matrix(matrix)
        lazy = CorrelationInstance.from_label_matrix(matrix, backend="lazy")
        for seed in range(4):
            direct = cmsy(matrix, rng=seed)
            assert cmsy(dense, rng=seed) == direct
            assert cmsy(lazy, rng=seed) == direct

    def test_duplicate_rows_share_a_cluster_on_the_rounding_tier(self):
        matrix, _, _ = far_atoms_problem()
        atoms = collapse_duplicates(matrix)
        for seed in range(4):
            labels = cmsy(matrix, rng=seed, lp_threshold=0).labels
            for atom in range(atoms.n_atoms):
                rows = np.flatnonzero(atoms.inverse == atom)
                assert len(set(labels[rows].tolist())) == 1


class TestAggregateWiring:
    def test_methods_are_registered(self):
        assert "pivot" in available_methods()
        assert "cmsy" in available_methods()
        assert "pivot" in STOCHASTIC_METHODS
        assert "cmsy" in STOCHASTIC_METHODS

    def test_aggregate_matches_direct_call_and_reports_its_cost(self):
        matrix = grid_matrix(25, 4, 3, seed=6)
        for method, algorithm in (("pivot", pivot), ("cmsy", cmsy)):
            result = aggregate(matrix, method=method, rng=9, compute_lower_bound=False)
            direct = algorithm(matrix, rng=9)
            assert result.clustering == direct
            assert result.disagreements == pytest.approx(
                total_disagreement(matrix, direct)
            )
            assert result.cost == pytest.approx(result.disagreements / matrix.shape[1])

    def test_fast_path_never_builds_an_instance(self, monkeypatch):
        """The acceptance criterion in miniature: no (n, n) structure —
        dense or lazy — may be created on the pivot/cmsy label path."""

        def forbidden(*args, **kwargs):
            raise AssertionError("label fast path must not build an instance")

        monkeypatch.setattr(CorrelationInstance, "from_label_matrix", forbidden)
        monkeypatch.setattr(CorrelationInstance, "lazy_from_label_matrix", forbidden)
        matrix = grid_matrix(40, 4, 3, seed=8)
        for method in ("pivot", "cmsy"):
            result = aggregate(matrix, method=method, rng=1)  # default lower bound on
            assert result.clustering.n == 40
            assert result.lower_bound is None  # nothing quadratic to score it with

    def test_threshold_forwarding(self):
        matrix = grid_matrix(20, 4, 3, seed=2)
        via_aggregate = aggregate(
            matrix, method="pivot", rng=4, threshold=0.8, compute_lower_bound=False
        )
        assert via_aggregate.clustering == pivot(matrix, rng=4, threshold=0.8)

    def test_collapse_expands_atoms(self):
        matrix, _, _ = far_atoms_problem()
        atoms = collapse_duplicates(matrix)
        result = aggregate(
            matrix, method="pivot", rng=3, collapse=True, compute_lower_bound=False
        )
        expected = atoms.expand(
            pivot(atoms.matrix, weights=atoms.weights.astype(np.float64), rng=3)
        )
        assert result.clustering == expected
        assert result.disagreements == pytest.approx(
            total_disagreement(matrix, expected)
        )

    def test_portfolio_membership(self):
        matrix = grid_matrix(30, 4, 3, seed=7)
        result = aggregate(
            matrix,
            method="portfolio",
            methods=("balls", "pivot", "cmsy"),
            rng=0,
            compute_lower_bound=False,
        )
        records = result.params["portfolio"]["runs"]
        assert {record["method"] for record in records} == {"balls", "pivot", "cmsy"}
        assert result.cost == pytest.approx(min(record["cost"] for record in records))

    def test_shard_membership(self):
        matrix, _, _ = far_atoms_problem()
        sharded = shard_aggregate(matrix, n_shards=2, shard_method="pivot", rng=0)
        assert sharded.clustering.n == matrix.shape[0]
        repeat = shard_aggregate(matrix, n_shards=2, shard_method="pivot", rng=0)
        assert sharded.clustering == repeat.clustering

    def test_cli_aggregate_pivot(self, tmp_path, capsys):
        path = tmp_path / "votes.csv"
        generate_votes(n=60, rng=0).to_csv(path)
        assert main(
            [
                "aggregate",
                str(path),
                "--method",
                "pivot",
                "--threshold",
                "0.6",
                "--seed",
                "3",
                "--json",
            ]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["method"] == "pivot"
        assert report["cost"] == pytest.approx(report["disagreements"] / 16)


class TestRepeats:
    """Best-of-R amplification and its O(n*m) weighted scorer."""

    def test_repeats_validation(self):
        matrix = grid_matrix(8, 3, 3, seed=0)
        for algorithm in (pivot, cmsy):
            with pytest.raises(ValueError, match="repeats must be >= 1"):
                algorithm(matrix, rng=0, repeats=0)

    def test_best_of_is_monotone_and_deterministic(self):
        # The sweeps share one generator and the first candidate is the
        # repeats=1 output, so best-of cost can never exceed the single run.
        matrix = grid_matrix(40, 4, 4, seed=11, missing_rate=0.1)
        for algorithm in (pivot, cmsy):
            single = algorithm(matrix, rng=2)
            best = algorithm(matrix, rng=2, repeats=4)
            assert algorithm(matrix, rng=2, repeats=4) == best
            assert total_disagreement(matrix, best) <= total_disagreement(
                matrix, single
            )

    def test_aggregate_forwards_repeats(self):
        matrix = grid_matrix(30, 4, 3, seed=5)
        result = aggregate(matrix, method="pivot", rng=2, repeats=4)
        assert result.clustering == pivot(matrix, rng=2, repeats=4)

    def test_unit_weights_match_total_disagreement(self):
        matrix = random_label_matrix(
            12, 4, 3, np.random.default_rng(3), missing_rate=0.2
        )
        clustering = Clustering(np.random.default_rng(4).integers(0, 3, size=12))
        for p in (0.3, 0.5):
            assert weighted_total_disagreement(
                matrix, clustering, p=p
            ) == pytest.approx(total_disagreement(matrix, clustering, p=p))

    def test_weighted_scoring_matches_the_expanded_objective(self):
        matrix, _, _ = far_atoms_problem()
        atoms = collapse_duplicates(matrix)
        instance = CorrelationInstance.from_label_matrix(
            atoms.matrix, weights=atoms.weights
        )
        rng = np.random.default_rng(9)
        for _ in range(5):
            candidate = Clustering(rng.integers(0, 3, size=atoms.n_atoms))
            weighted = weighted_total_disagreement(
                atoms.matrix, candidate, weights=atoms.weights.astype(np.float64)
            )
            assert weighted == pytest.approx(instance.disagreements(candidate))
            assert weighted == pytest.approx(
                total_disagreement(matrix, atoms.expand(candidate))
            )

    def test_cli_forwards_repeats(self, tmp_path, capsys):
        path = tmp_path / "votes.csv"
        generate_votes(n=40, rng=0).to_csv(path)
        argv = ["aggregate", str(path), "--method", "cmsy", "--seed", "2", "--json"]
        assert main(argv + ["--repeats", "4"]) == 0
        boosted = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        single = json.loads(capsys.readouterr().out)
        assert boosted["cost"] <= single["cost"]
