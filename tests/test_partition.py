"""Tests for repro.core.partition.Clustering."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Clustering

label_lists = st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=40)


class TestConstruction:
    def test_canonical_labels_first_appearance(self):
        c = Clustering([5, 5, 9, 9, 2])
        assert list(c.labels) == [0, 0, 1, 1, 2]

    def test_n_and_k(self):
        c = Clustering([0, 1, 1, 2, 2, 2])
        assert c.n == 6
        assert c.k == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Clustering([])

    def test_rejects_negative_labels(self):
        with pytest.raises(ValueError):
            Clustering([0, -1, 1])

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            Clustering(np.array([0.0, 1.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Clustering(np.zeros((2, 2), dtype=int))

    def test_labels_are_read_only(self):
        c = Clustering([0, 1])
        with pytest.raises(ValueError):
            c.labels[0] = 1  # repolint: disable=RPR004

    def test_from_clusters(self):
        c = Clustering.from_clusters([[0, 2], [1, 3], [4]])
        assert c.to_sets() == [frozenset({0, 2}), frozenset({1, 3}), frozenset({4})]

    def test_from_clusters_overlap_rejected(self):
        with pytest.raises(ValueError):
            Clustering.from_clusters([[0, 1], [1, 2]])

    def test_from_clusters_gap_rejected(self):
        with pytest.raises(ValueError):
            Clustering.from_clusters([[0], [2]], n=3)

    def test_from_clusters_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Clustering.from_clusters([[0], []])

    def test_from_clusters_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Clustering.from_clusters([[0, 5]], n=3)

    def test_singletons(self):
        c = Clustering.singletons(4)
        assert c.k == 4
        assert all(size == 1 for size in c.sizes())

    def test_single_cluster(self):
        c = Clustering.single_cluster(4)
        assert c.k == 1
        assert c.sizes()[0] == 4

    def test_random_respects_k_bound(self):
        c = Clustering.random(50, 3, rng=0)
        assert 1 <= c.k <= 3

    def test_random_rejects_bad_k(self):
        with pytest.raises(ValueError):
            Clustering.random(5, 0)


class TestAccessors:
    def test_label_of_matches_labels(self):
        c = Clustering([0, 1, 0, 2])
        assert [c.label_of(i) for i in range(4)] == [0, 1, 0, 2]

    def test_sizes(self):
        c = Clustering([0, 0, 1, 2, 2, 2])
        assert list(c.sizes()) == [2, 1, 3]

    def test_members(self):
        c = Clustering([0, 1, 0, 1])
        assert list(c.members(1)) == [1, 3]

    def test_members_out_of_range(self):
        with pytest.raises(IndexError):
            Clustering([0, 0]).members(1)

    def test_clusters_partition_everything(self):
        c = Clustering.random(30, 4, rng=1)
        union = np.sort(np.concatenate(c.clusters()))
        assert np.array_equal(union, np.arange(30))

    def test_same_cluster(self):
        c = Clustering([0, 0, 1])
        assert c.same_cluster(0, 1)
        assert not c.same_cluster(0, 2)

    def test_len(self):
        assert len(Clustering([0, 1, 1])) == 3

    def test_repr_mentions_shape(self):
        text = repr(Clustering([0, 1, 1]))
        assert "n=3" in text and "k=2" in text


class TestDerived:
    def test_restrict(self):
        c = Clustering([0, 0, 1, 1, 2])
        sub = c.restrict([1, 2, 4])
        assert list(sub.labels) == [0, 1, 2]

    def test_restrict_preserves_coclustering(self):
        c = Clustering([0, 0, 1, 1, 2])
        sub = c.restrict([0, 1, 3])
        assert sub.same_cluster(0, 1)
        assert not sub.same_cluster(0, 2)

    def test_merge_clusters(self):
        c = Clustering([0, 1, 2])
        merged = c.merge_clusters(0, 2)
        assert merged.k == 2
        assert merged.same_cluster(0, 2)

    def test_merge_with_self_rejected(self):
        with pytest.raises(ValueError):
            Clustering([0, 1]).merge_clusters(0, 0)


class TestLattice:
    def test_meet_known(self):
        a = Clustering([0, 0, 1, 1])
        b = Clustering([0, 1, 1, 1])
        assert a.meet(b) == Clustering([0, 1, 2, 2])

    def test_join_known(self):
        a = Clustering([0, 0, 1, 2])
        b = Clustering([0, 1, 1, 2])
        # 0-1 via a, 1-2 via b -> {0,1,2} together; 3 alone.
        assert a.join(b) == Clustering([0, 0, 0, 1])

    def test_meet_refines_both(self):
        rng = np.random.default_rng(0)
        a = Clustering(rng.integers(0, 4, 30))
        b = Clustering(rng.integers(0, 4, 30))
        meet = a.meet(b)
        for u in range(30):
            for v in range(u + 1, 30):
                if meet.same_cluster(u, v):
                    assert a.same_cluster(u, v) and b.same_cluster(u, v)

    def test_join_coarsens_both(self):
        rng = np.random.default_rng(1)
        a = Clustering(rng.integers(0, 5, 30))
        b = Clustering(rng.integers(0, 5, 30))
        join = a.join(b)
        for u in range(30):
            for v in range(u + 1, 30):
                if a.same_cluster(u, v) or b.same_cluster(u, v):
                    assert join.same_cluster(u, v)

    @given(label_lists)
    def test_meet_join_with_self_are_identity(self, labels):
        c = Clustering(labels)
        assert c.meet(c) == c
        assert c.join(c) == c

    def test_meet_with_singletons_is_singletons(self):
        c = Clustering([0, 0, 1])
        assert c.meet(Clustering.singletons(3)) == Clustering.singletons(3)

    def test_join_with_single_cluster_is_single(self):
        c = Clustering([0, 1, 2])
        assert c.join(Clustering.single_cluster(3)) == Clustering.single_cluster(3)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            Clustering([0, 1]).meet(Clustering([0, 1, 2]))
        with pytest.raises(ValueError):
            Clustering([0, 1]).join(Clustering([0, 1, 2]))


class TestEquality:
    def test_equal_up_to_relabeling(self):
        assert Clustering([0, 0, 1]) == Clustering([7, 7, 3])

    def test_unequal_partitions(self):
        assert Clustering([0, 0, 1]) != Clustering([0, 1, 1])

    def test_hash_consistent_with_eq(self):
        a, b = Clustering([2, 2, 5]), Clustering([0, 0, 1])
        assert a == b and hash(a) == hash(b)

    def test_not_equal_other_types(self):
        assert Clustering([0]) != [0]

    @given(label_lists)
    def test_canonicalization_idempotent(self, labels):
        c = Clustering(labels)
        assert Clustering(c.labels) == c

    @given(label_lists, st.permutations(list(range(7))))
    def test_equality_invariant_under_label_permutation(self, labels, perm):
        c = Clustering(labels)
        permuted = Clustering([perm[v] for v in labels])
        assert c == permuted

    @given(label_lists)
    def test_sizes_sum_to_n(self, labels):
        c = Clustering(labels)
        assert int(c.sizes().sum()) == c.n

    @given(label_lists)
    def test_labels_are_dense(self, labels):
        c = Clustering(labels)
        assert set(np.unique(c.labels)) == set(range(c.k))
