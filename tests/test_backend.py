"""Pair-distance backend tests: lazy/dense bit-identity, LRU cache, selection.

The lazy backend's contract is *bitwise* equality with the dense build —
every row block, gather, blocked reduction and downstream algorithm output
must match exactly (not within tolerance), because both paths accumulate
each element over the ``m`` label columns in the same order and walk the
same :func:`repro.core.backend.reduction_block_rows` grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CorrelationInstance, DenseBackend, LazyLabelBackend
from repro.core.aggregate import aggregate
from repro.core.backend import (
    DEFAULT_LAZY_THRESHOLD,
    LAZY_THRESHOLD_ENV_VAR,
    label_pair_block,
    lazy_threshold,
    reduction_block_rows,
    resolve_backend,
)
from repro.core.objective import MoveEvaluator
from repro.parallel.build import attach_instance, share_instance
from repro.parallel.portfolio import portfolio


def label_matrix(
    n: int, m: int = 6, k: int = 5, missing_frac: float = 0.0, seed: int = 0
) -> np.ndarray:
    """A random ``(n, m)`` label matrix, optionally with missing entries."""
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, k, size=(n, m)).astype(np.int64)
    if missing_frac:
        matrix[rng.random((n, m)) < missing_frac] = -1
    return matrix


def backend_pair(
    matrix: np.ndarray, **kwargs
) -> tuple[DenseBackend, LazyLabelBackend]:
    """A dense and a lazy backend over the same label matrix."""
    dense = CorrelationInstance.from_label_matrix(matrix, **kwargs).backend
    lazy = LazyLabelBackend(matrix, **kwargs)
    return dense, lazy


# ---------------------------------------------------------------------------
# Storage primitives: bitwise equality against the dense build
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("missing", ["coin-flip", "average"])
@pytest.mark.parametrize("missing_frac", [0.0, 0.3])
def test_primitives_bitwise_equal_dense(dtype, missing, missing_frac) -> None:
    matrix = label_matrix(57, missing_frac=missing_frac, seed=1)
    dense, lazy = backend_pair(matrix, dtype=dtype, missing=missing)
    X = dense.dense()

    assert lazy.dtype == np.dtype(dtype)
    assert lazy.n == dense.n == 57
    assert np.array_equal(lazy.materialize(), X)
    for start, stop in [(0, 10), (10, 57), (3, 4), (0, 57)]:
        assert np.array_equal(lazy.row_block(start, stop), X[start:stop])
    for u in (0, 7, 56):
        assert np.array_equal(lazy.row(u), X[u])
    idx = np.array([3, 0, 41, 3, 56])
    assert np.array_equal(lazy.gather(7, idx), X[7, idx])
    rows = np.array([0, 5, 17])
    assert np.array_equal(lazy.gather_block(rows, idx), X[np.ix_(rows, idx)])
    assert np.array_equal(lazy.columns(idx), X[:, idx])


def test_primitives_off_center_coin_flip() -> None:
    matrix = label_matrix(40, missing_frac=0.4, seed=2)
    dense, lazy = backend_pair(matrix, p=0.3)
    assert np.array_equal(lazy.materialize(), dense.dense())


def test_take_is_bitwise_equal_and_keeps_parent_dtype() -> None:
    matrix = label_matrix(48, seed=3)
    dense, lazy = backend_pair(matrix, dtype=np.float32)
    idx = np.array([40, 2, 2, 31, 7])
    assert np.array_equal(lazy.take(idx).materialize(), dense.take(idx).dense())
    # A float32 parent keeps float32 sub-backends even though the subset
    # is far below the small-n float64 default.
    assert lazy.take(idx).dtype == np.float32


def test_label_pair_block_matches_dense_gather_average() -> None:
    matrix = label_matrix(30, missing_frac=0.5, seed=4)
    X = CorrelationInstance.from_label_matrix(matrix, missing="average").X
    rows = np.array([0, 9, 9, 29])
    cols = np.array([29, 0, 3])
    block = label_pair_block(matrix, rows, cols, missing="average")
    assert np.array_equal(block, X[np.ix_(rows, cols)])


def test_label_pair_block_zeroes_the_diagonal_rule() -> None:
    matrix = label_matrix(12, seed=5)
    rows = np.array([4, 7])
    block = label_pair_block(matrix, rows, rows)
    assert block[0, 0] == 0.0 and block[1, 1] == 0.0


# ---------------------------------------------------------------------------
# Blocked reductions
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_reductions_bitwise_equal_dense(dtype) -> None:
    matrix = label_matrix(73, missing_frac=0.2, seed=6)
    dense, lazy = backend_pair(matrix, dtype=dtype)
    rng = np.random.default_rng(7)
    w = rng.random(73)
    labels = rng.integers(0, 4, size=73)

    assert np.array_equal(lazy.matvec(w), dense.matvec(w))
    assert lazy.total_mass() == dense.total_mass()
    assert lazy.cost(labels) == dense.cost(labels)
    assert lazy.cost(labels, w) == dense.cost(labels, w)
    assert lazy.lower_bound() == dense.lower_bound()
    assert lazy.lower_bound(w) == dense.lower_bound(w)
    assert lazy.argmax_entry() == dense.argmax_entry()


def test_reductions_span_multiple_grid_blocks() -> None:
    # Force a multi-block reduction grid on a small instance.
    matrix = label_matrix(50, seed=8)
    dense, lazy = backend_pair(matrix)
    lazy = LazyLabelBackend(matrix, block_rows=7)
    assert np.array_equal(lazy.materialize(), dense.dense())
    assert lazy.total_mass() == dense.total_mass()


def test_argmax_entry_matches_flat_argmax_semantics() -> None:
    matrix = label_matrix(41, seed=9)
    dense, lazy = backend_pair(matrix)
    X = dense.dense()
    expected = divmod(int(np.argmax(X)), X.shape[0])
    assert dense.argmax_entry() == expected
    assert lazy.argmax_entry() == expected


def test_argmax_entry_all_zero_matrix() -> None:
    # Identical rows => X == 0 everywhere; first occurrence is (0, 0).
    matrix = np.zeros((9, 3), dtype=np.int64)
    assert LazyLabelBackend(matrix).argmax_entry() == (0, 0)


def test_matvec_matches_historical_dense_product() -> None:
    matrix = label_matrix(33, seed=10)
    dense, _ = backend_pair(matrix, dtype=np.float32)
    X = dense.dense()
    w = np.random.default_rng(11).random(33)
    assert np.array_equal(dense.matvec(w), X.astype(np.float64) @ w)


def test_reduction_block_rows_grid_is_deterministic() -> None:
    assert reduction_block_rows(10) == 2048
    assert reduction_block_rows(1 << 22) == 64
    assert reduction_block_rows(0) == 2048
    # The grid depends only on n — both backends share it by construction.
    assert reduction_block_rows(50_000) == (1 << 22) // 50_000


# ---------------------------------------------------------------------------
# LRU block cache
# ---------------------------------------------------------------------------


def test_lru_cache_hits_and_eviction_recompute_identically() -> None:
    matrix = label_matrix(40, seed=12)
    reference = LazyLabelBackend(matrix, block_rows=8, cache_blocks=0).materialize()
    lazy = LazyLabelBackend(matrix, block_rows=8, cache_blocks=2)

    first = lazy.row_block(0, 8)
    assert lazy.cached_block_indices() == (0,)
    # A repeated grid-aligned request is served from cache (same object).
    assert lazy.row_block(0, 8) is first

    lazy.row_block(8, 16)
    lazy.row_block(16, 24)  # evicts block 0 (capacity 2, LRU order)
    assert lazy.cached_block_indices() == (1, 2)
    # Evicted blocks recompute bitwise identically.
    assert np.array_equal(lazy.row_block(0, 8), reference[0:8])

    # A cache hit refreshes recency: touch block 2, then load block 0;
    # block 1 is now the LRU entry and gets evicted.
    lazy.row_block(16, 24)
    lazy.row_block(0, 8)
    assert lazy.cached_block_indices() == (2, 0)


def test_row_served_from_cached_block() -> None:
    matrix = label_matrix(30, seed=13)
    lazy = LazyLabelBackend(matrix, block_rows=10, cache_blocks=2)
    block = lazy.row_block(10, 20)
    row = lazy.row(14)
    assert row.base is block or np.shares_memory(row, block)
    assert np.array_equal(row, block[4])


def test_unaligned_row_blocks_bypass_the_cache() -> None:
    matrix = label_matrix(30, seed=14)
    lazy = LazyLabelBackend(matrix, block_rows=10, cache_blocks=4)
    lazy.row_block(5, 15)
    assert lazy.cached_block_indices() == ()
    # The final ragged grid block is still cacheable.
    lazy.row_block(20, 30)
    assert lazy.cached_block_indices() == (2,)


def test_cache_disabled_with_zero_capacity() -> None:
    matrix = label_matrix(20, seed=15)
    lazy = LazyLabelBackend(matrix, block_rows=10, cache_blocks=0)
    lazy.row_block(0, 10)
    assert lazy.cached_block_indices() == ()


# ---------------------------------------------------------------------------
# Backend selection and the instance surface
# ---------------------------------------------------------------------------


def test_resolve_backend_threshold(monkeypatch) -> None:
    monkeypatch.delenv(LAZY_THRESHOLD_ENV_VAR, raising=False)
    assert lazy_threshold() == DEFAULT_LAZY_THRESHOLD
    assert resolve_backend("auto", DEFAULT_LAZY_THRESHOLD) == "dense"
    assert resolve_backend("auto", DEFAULT_LAZY_THRESHOLD + 1) == "lazy"
    assert resolve_backend("dense", 10**9) == "dense"
    assert resolve_backend("lazy", 2) == "lazy"
    monkeypatch.setenv(LAZY_THRESHOLD_ENV_VAR, "100")
    assert resolve_backend("auto", 101) == "lazy"
    assert resolve_backend("auto", 100) == "dense"


def test_lazy_threshold_rejects_bad_values(monkeypatch) -> None:
    monkeypatch.setenv(LAZY_THRESHOLD_ENV_VAR, "many")
    with pytest.raises(ValueError, match="must be an integer"):
        lazy_threshold()
    monkeypatch.setenv(LAZY_THRESHOLD_ENV_VAR, "-1")
    with pytest.raises(ValueError, match=">= 0"):
        lazy_threshold()


def test_resolve_backend_rejects_unknown_names() -> None:
    with pytest.raises(ValueError, match="backend must be"):
        resolve_backend("sparse", 10)


def test_from_label_matrix_auto_flips_to_lazy(monkeypatch) -> None:
    matrix = label_matrix(64, seed=16)
    monkeypatch.setenv(LAZY_THRESHOLD_ENV_VAR, "32")
    auto = CorrelationInstance.from_label_matrix(matrix, backend="auto")
    assert auto.backend.name == "lazy"
    monkeypatch.setenv(LAZY_THRESHOLD_ENV_VAR, "64")
    assert CorrelationInstance.from_label_matrix(matrix, backend="auto").backend.name == "dense"
    # The default stays dense for direct users regardless of size rules.
    assert CorrelationInstance.from_label_matrix(matrix).backend.name == "dense"


def test_lazy_instance_X_raises_with_guidance() -> None:
    instance = CorrelationInstance.lazy_from_label_matrix(label_matrix(10, seed=17))
    with pytest.raises(RuntimeError, match="backend='dense'"):
        instance.X  # repolint not applicable: tests may poke the matrix


def test_instance_requires_matrix_or_backend() -> None:
    with pytest.raises(ValueError, match="distance matrix or a backend"):
        CorrelationInstance()
    with pytest.raises(ValueError, match="mutually exclusive"):
        CorrelationInstance(np.zeros((2, 2)), backend=DenseBackend(np.zeros((2, 2))))


def test_instance_cost_and_lower_bound_identical_across_backends() -> None:
    matrix = label_matrix(66, missing_frac=0.1, seed=18)
    dense = CorrelationInstance.from_label_matrix(matrix)
    lazy = CorrelationInstance.lazy_from_label_matrix(matrix)
    labels = np.random.default_rng(19).integers(0, 5, size=66)
    assert dense.cost(labels) == lazy.cost(labels)
    assert dense.lower_bound() == lazy.lower_bound()
    assert dense.disagreements(labels) == lazy.disagreements(labels)


def test_weighted_atom_instances_identical_across_backends() -> None:
    matrix = label_matrix(44, seed=20)
    weights = np.random.default_rng(21).integers(1, 5, size=44).astype(np.float64)
    dense = CorrelationInstance.from_label_matrix(matrix, weights=weights)
    lazy = CorrelationInstance.lazy_from_label_matrix(matrix, weights=weights)
    labels = np.random.default_rng(22).integers(0, 3, size=44)
    assert dense.cost(labels) == lazy.cost(labels)
    assert dense.lower_bound() == lazy.lower_bound()


def test_subinstance_preserves_backend_flavor() -> None:
    matrix = label_matrix(36, seed=23)
    dense = CorrelationInstance.from_label_matrix(matrix)
    lazy = CorrelationInstance.lazy_from_label_matrix(matrix)
    idx = np.array([1, 5, 8, 30])
    assert dense.subinstance(idx).backend.name == "dense"
    sub = lazy.subinstance(idx)
    assert sub.backend.name == "lazy"
    assert np.array_equal(sub.backend.materialize(), dense.subinstance(idx).X)


def test_effective_weights_is_cached() -> None:
    instance = CorrelationInstance.from_label_matrix(label_matrix(12, seed=24))
    first = instance.effective_weights()
    assert instance.effective_weights() is first
    weighted = CorrelationInstance.from_label_matrix(
        label_matrix(12, seed=24), weights=np.full(12, 2.0)
    )
    assert weighted.effective_weights() is weighted.weights


# ---------------------------------------------------------------------------
# MoveEvaluator and algorithm outputs: bit-identical clusterings
# ---------------------------------------------------------------------------


def test_move_evaluator_masses_identical_across_backends() -> None:
    matrix = label_matrix(47, missing_frac=0.2, seed=25)
    dense = CorrelationInstance.from_label_matrix(matrix)
    lazy = CorrelationInstance.lazy_from_label_matrix(matrix)
    initial = np.random.default_rng(26).integers(0, 4, size=47)
    for labels in (initial, np.arange(47)):
        a = MoveEvaluator(dense, labels)
        b = MoveEvaluator(lazy, labels)
        assert np.array_equal(a._mass, b._mass)
        assert a.total_cost_fast() == pytest.approx(b.total_cost_fast(), rel=1e-12)
        a.detach(3)
        b.detach(3)
        a.attach(3, int(labels[5]) if labels is initial else 5)
        b.attach(3, int(labels[5]) if labels is initial else 5)
        assert np.array_equal(a._mass, b._mass)


ALGORITHMS = ["balls", "agglomerative", "furthest", "local-search", "annealing", "genetic"]


@pytest.mark.parametrize("method", ALGORITHMS)
@pytest.mark.parametrize("missing_frac", [0.0, 0.25])
def test_algorithms_bit_identical_across_backends(method, missing_frac) -> None:
    matrix = label_matrix(52, missing_frac=missing_frac, seed=27)
    kwargs = {"rng": 5} if method in ("local-search", "annealing", "genetic") else {}
    dense = aggregate(matrix, method=method, backend="dense", **kwargs)
    lazy = aggregate(matrix, method=method, backend="lazy", **kwargs)
    assert np.array_equal(dense.clustering.labels, lazy.clustering.labels)
    assert dense.cost == lazy.cost


def test_sampling_bit_identical_across_backends() -> None:
    matrix = label_matrix(90, missing_frac=0.1, seed=28)
    kwargs = dict(method="sampling", sample_size=25, rng=9)
    dense = aggregate(matrix, backend="dense", **kwargs)
    lazy = aggregate(matrix, backend="lazy", **kwargs)
    assert np.array_equal(dense.clustering.labels, lazy.clustering.labels)


def test_exact_bit_identical_across_backends() -> None:
    matrix = label_matrix(9, k=3, seed=29)
    dense = aggregate(matrix, method="exact", backend="dense")
    lazy = aggregate(matrix, method="exact", backend="lazy")
    assert np.array_equal(dense.clustering.labels, lazy.clustering.labels)


def test_collapsed_atoms_bit_identical_across_backends() -> None:
    # Duplicate rows -> weighted atom instance; the lazy path must agree.
    base = label_matrix(20, k=3, m=4, seed=30)
    matrix = np.vstack([base, base[:10]])
    dense = aggregate(matrix, method="balls", collapse=True, backend="dense")
    lazy = aggregate(matrix, method="balls", collapse=True, backend="lazy")
    assert np.array_equal(dense.clustering.labels, lazy.clustering.labels)


# ---------------------------------------------------------------------------
# Shared-memory fan-out and the parallel portfolio
# ---------------------------------------------------------------------------


def test_share_instance_ships_labels_not_the_matrix() -> None:
    matrix = label_matrix(31, missing_frac=0.2, seed=31)
    lazy = CorrelationInstance.lazy_from_label_matrix(matrix, p=0.4)
    with share_instance(lazy) as payload:
        assert payload["kind"] == "lazy"
        assert payload["descriptor"][1] == matrix.shape  # (n, m), not (n, n)
        rebuilt, shared = attach_instance(payload)
        try:
            assert rebuilt.backend.name == "lazy"
            assert rebuilt.backend.p == 0.4
            assert np.array_equal(
                rebuilt.backend.materialize(), lazy.backend.materialize()
            )
        finally:
            shared.close()


def test_share_instance_dense_round_trip() -> None:
    matrix = label_matrix(18, seed=32)
    dense = CorrelationInstance.from_label_matrix(matrix)
    with share_instance(dense) as payload:
        assert payload["kind"] == "dense"
        rebuilt, shared = attach_instance(payload)
        try:
            assert np.array_equal(rebuilt.X, dense.X)
        finally:
            shared.close()


@pytest.mark.parametrize("jobs", [1, 2])
def test_portfolio_lazy_backend_bit_identical(jobs) -> None:
    matrix = label_matrix(45, missing_frac=0.15, seed=33)
    dense = portfolio(matrix, n_jobs=1, rng=3, backend="dense")
    lazy = portfolio(matrix, n_jobs=jobs, rng=3, backend="lazy")
    assert lazy.best_method == dense.best_method
    assert lazy.cost == dense.cost
    assert np.array_equal(lazy.best.labels, dense.best.labels)


def test_sampling_with_worker_env_matches_serial(monkeypatch) -> None:
    matrix = label_matrix(70, seed=34)
    serial = aggregate(matrix, method="sampling", sample_size=20, rng=4, backend="lazy")
    monkeypatch.setenv("REPRO_JOBS", "2")
    parallel = aggregate(
        matrix, method="sampling", sample_size=20, rng=4, n_jobs=None, backend="lazy"
    )
    assert np.array_equal(serial.clustering.labels, parallel.clustering.labels)
