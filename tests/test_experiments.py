"""Tests for the experiment harness (repro.experiments)."""

import numpy as np
import pytest

from repro.datasets import generate_votes
from repro.experiments import (
    banner,
    categorical_table,
    current_scale,
    disagreement_cost,
    format_number,
    kmeans_sweep,
    render_table,
)
from repro.experiments.scale import Scale


class TestTables:
    def test_format_number_ints(self):
        assert format_number(1234567) == "1,234,567"

    def test_format_number_floats(self):
        assert format_number(3.14159) == "3.142"
        assert format_number(12.345) == "12.3"
        assert format_number(1234.5) == "1,234"

    def test_format_number_nan(self):
        assert format_number(float("nan")) == "-"

    def test_format_number_strings_passthrough(self):
        assert format_number("x") == "x"

    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [(1, 2), (33, 44)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_banner_contains_text(self):
        assert "hello" in banner("hello")


class TestScale:
    def test_default_is_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "ci"

    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        scale = current_scale()
        assert scale.name == "paper"
        assert scale.mushrooms_rows is None  # generator default = 8124

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            current_scale()

    def test_describe_mentions_name(self):
        scale = Scale("x", 10, 10, 5, (1,), (1,))
        assert "scale=x" in scale.describe()


class TestRunner:
    def test_kmeans_sweep_shape(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(60, 2))
        matrix = kmeans_sweep(points, k_range=range(2, 6), n_init=2)
        assert matrix.shape == (60, 4)
        for j, k in enumerate(range(2, 6)):
            assert len(np.unique(matrix[:, j])) <= k

    def test_categorical_table_rows(self):
        dataset = generate_votes(n=120, rng=0)
        rows = categorical_table(dataset, methods=("agglomerative", "local-search"))
        labels = [row.label for row in rows]
        assert labels[0] == "Class labels"
        assert labels[1] == "Lower bound"
        assert "AGGLOMERATIVE" in labels and "LOCAL-SEARCH" in labels
        lower = rows[1].disagreement_cost
        for row in rows:
            if row.label != "Lower bound":
                assert row.disagreement_cost >= lower - 1e-6

    def test_disagreement_cost_is_d_of_c(self):
        from repro import Clustering
        from repro.core import total_disagreement

        dataset = generate_votes(n=80, rng=1)
        clustering = Clustering(dataset.classes)
        expected = total_disagreement(dataset.label_matrix(), clustering) / dataset.m
        assert disagreement_cost(dataset, clustering) == pytest.approx(expected)

    def test_categorical_table_with_baselines(self):
        dataset = generate_votes(n=100, rng=2)
        rows = categorical_table(
            dataset,
            methods=("agglomerative",),
            rock_params=((2, 0.45),),
            limbo_params=((2, 0.0),),
        )
        labels = [row.label for row in rows]
        assert any(label.startswith("ROCK") for label in labels)
        assert any(label.startswith("LIMBO") for label in labels)
