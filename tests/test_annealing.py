"""Tests for simulated annealing (repro.algorithms.annealing)."""

import numpy as np
import pytest

from repro import Clustering, aggregate
from repro.algorithms import local_search, simulated_annealing

from conftest import random_aggregation_instance


class TestSimulatedAnnealing:
    def test_figure1_optimum(self, figure1_instance):
        result = simulated_annealing(figure1_instance, rng=0)
        assert result == Clustering([0, 1, 0, 1, 2, 2])

    def test_registered_in_aggregate(self, figure1_clusterings):
        result = aggregate(figure1_clusterings, method="annealing", rng=0)
        assert result.disagreements == pytest.approx(5.0)

    def test_never_worse_than_pure_local_search_start(self):
        # With polish=True the result is at worst a local optimum.
        for seed in range(3):
            _, instance = random_aggregation_instance(n=20, m=4, k=3, seed=seed)
            annealed = simulated_annealing(instance, rng=seed)
            descended = local_search(instance)
            # Annealing explores more; allow equality but not a clearly
            # worse outcome than plain descent from singletons.
            assert instance.cost(annealed) <= instance.cost(descended) + 1e-9

    def test_polish_lands_on_local_optimum(self):
        _, instance = random_aggregation_instance(n=15, m=3, k=3, seed=5)
        result = simulated_annealing(instance, rng=1)
        again = local_search(instance, initial=result)
        assert instance.cost(again) == pytest.approx(instance.cost(result))

    def test_deterministic_under_seed(self):
        _, instance = random_aggregation_instance(n=18, m=4, k=3, seed=6)
        a = simulated_annealing(instance, rng=42)
        b = simulated_annealing(instance, rng=42)
        assert a == b

    def test_accepts_initial(self, figure1_instance, figure1_optimum):
        result = simulated_annealing(figure1_instance, initial=figure1_optimum, rng=0)
        assert figure1_instance.cost(result) <= figure1_instance.cost(figure1_optimum) + 1e-9

    def test_invalid_parameters(self, figure1_instance):
        with pytest.raises(ValueError):
            simulated_annealing(figure1_instance, cooling=1.5)
        with pytest.raises(ValueError):
            simulated_annealing(figure1_instance, start_temperature=-1.0)
        with pytest.raises(ValueError):
            simulated_annealing(
                figure1_instance, start_temperature=1e-4, minimum_temperature=1e-3
            )
        with pytest.raises(ValueError):
            simulated_annealing(figure1_instance, initial=Clustering([0, 1]))

    def test_single_object(self):
        import numpy as np

        from repro.core import CorrelationInstance

        instance = CorrelationInstance.from_distances(np.zeros((1, 1)))
        assert simulated_annealing(instance, rng=0).k == 1

    def test_weighted_atoms_supported(self):
        """Annealing runs on collapsed (weighted) instances: deltas are
        cost-true, so the final weighted cost matches a from-scratch
        evaluation on the expanded problem."""
        import numpy as np

        from repro.core import CorrelationInstance
        from repro.core.atoms import collapse_duplicates
        from conftest import planted_instance

        _, base = planted_instance(n=20, m=4, groups=3, flip=0.2, seed=0)
        rng = np.random.default_rng(0)
        expanded = np.repeat(base, rng.integers(1, 4, size=20), axis=0)
        atoms = collapse_duplicates(expanded)
        collapsed = CorrelationInstance.from_label_matrix(
            atoms.matrix, weights=atoms.weights
        )
        full = CorrelationInstance.from_label_matrix(expanded)
        result = simulated_annealing(collapsed, rng=1)
        assert collapsed.cost(result) == pytest.approx(
            full.cost(atoms.expand(result)), rel=1e-9
        )

    def test_escapes_local_search_plateau_sometimes(self):
        """On instances where singleton-start local search is suboptimal,
        annealing should find a solution at least as good (it embeds the
        same descent)."""
        wins = 0
        for seed in range(5):
            _, instance = random_aggregation_instance(n=14, m=3, k=3, seed=seed + 40)
            annealed_cost = instance.cost(simulated_annealing(instance, rng=seed))
            descent_cost = instance.cost(local_search(instance))
            assert annealed_cost <= descent_cost + 1e-9
            wins += annealed_cost < descent_cost - 1e-9
        # Not asserted — informational; equality on all five is possible.
        assert wins >= 0
