"""repro.obs unit tests: spans/traces, the metrics registry, profiling glue.

The observability subsystem underpins every ``elapsed_seconds`` field in
the library, so these tests pin its contracts: spans always time, nesting
follows the per-thread stack, serialization round-trips, the registry is
free when disabled, and worker payloads graft back losslessly.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    Span,
    Trace,
    collecting,
    current_trace,
    diff_snapshots,
    disable_metrics,
    enable_metrics,
    export_spans,
    get_registry,
    inc,
    is_tracing,
    merge_spans,
    metrics_enabled,
    observe,
    phase,
    profiled,
    set_gauge,
    span,
    tracing,
    worker_tracing,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test starts with a disabled, empty default registry."""
    registry = get_registry()
    was_enabled = registry.enabled
    registry.enabled = False
    registry.reset()
    yield
    registry.enabled = was_enabled
    registry.reset()


# ---------------------------------------------------------------------------
# Spans and traces
# ---------------------------------------------------------------------------


def test_span_times_without_a_trace() -> None:
    assert not is_tracing()
    with span("standalone") as sp:
        sum(range(1000))
    assert sp.seconds > 0.0


def test_spans_nest_under_the_active_trace() -> None:
    with tracing() as trace:
        with span("outer", n=3):
            with span("inner"):
                pass
            with span("inner"):
                pass
    assert [root.name for root in trace.roots] == ["outer"]
    outer = trace.roots[0]
    assert [child.name for child in outer.children] == ["inner", "inner"]
    assert outer.attrs == {"n": 3}
    assert outer.seconds >= sum(child.seconds for child in outer.children)


def test_span_indices_are_monotonic_in_open_order() -> None:
    with tracing() as trace:
        with span("a"):
            with span("b"):
                pass
        with span("c"):
            pass
    indices = [node.index for node in (trace.find("a") + trace.find("b") + trace.find("c"))]
    assert indices == sorted(indices)
    assert len(set(indices)) == 3


def test_set_attaches_attributes_late() -> None:
    with tracing() as trace:
        with span("work") as sp:
            sp.set(k=7, note="done")
    assert trace.roots[0].attrs == {"k": 7, "note": "done"}


def test_spans_are_dropped_outside_tracing_blocks() -> None:
    with tracing() as trace:
        pass
    with span("after"):
        pass
    assert trace.roots == []
    assert current_trace() is None


def test_tracing_blocks_restore_the_previous_trace() -> None:
    with tracing() as outer_trace:
        with tracing() as inner_trace:
            with span("x"):
                pass
        assert current_trace() is outer_trace
        assert inner_trace.roots[0].name == "x"
    assert not is_tracing()


def test_trace_serializes_to_json_and_round_trips() -> None:
    with tracing() as trace:
        with span("root", n=np.int64(4), ratio=0.5, label=("a", "b")):
            with span("leaf"):
                pass
    payload = json.loads(trace.to_json())
    assert payload["spans"][0]["name"] == "root"
    # numpy scalars and tuples are cleaned into JSON-native types.
    assert payload["spans"][0]["attrs"] == {"n": 4, "ratio": 0.5, "label": ["a", "b"]}
    rebuilt = Span.from_dict(payload["spans"][0])
    assert rebuilt.name == "root"
    assert rebuilt.children[0].name == "leaf"
    assert rebuilt.seconds == trace.roots[0].seconds


def test_render_indents_and_prunes() -> None:
    with tracing() as trace:
        with span("parent", n=2):
            with span("child"):
                pass
    text = trace.render()
    lines = text.splitlines()
    assert lines[0].startswith("parent")
    assert lines[1].startswith("  child")
    assert "n=2" in lines[0]
    assert "ms" in lines[0]
    # A threshold higher than any recorded duration prunes everything.
    assert trace.render(min_seconds=60.0) == ""


def test_find_returns_spans_in_monotonic_order() -> None:
    with tracing() as trace:
        for _ in range(3):
            with span("repeat"):
                pass
    found = trace.find("repeat")
    assert len(found) == 3
    assert [node.index for node in found] == sorted(node.index for node in found)


def test_total_seconds_sums_roots() -> None:
    with tracing() as trace:
        with span("a"):
            pass
        with span("b"):
            pass
    assert trace.total_seconds() == pytest.approx(sum(root.seconds for root in trace.roots))


def test_threads_build_disjoint_subtrees() -> None:
    trace = Trace()

    def worker() -> None:
        with span("thread-root"):
            with span("thread-leaf"):
                pass

    with tracing(trace):
        threads = [threading.Thread(target=worker) for _ in range(4)]
        with span("main-root"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
    # Thread spans never nest under the main thread's open span.
    main_roots = [root for root in trace.roots if root.name == "main-root"]
    thread_roots = [root for root in trace.roots if root.name == "thread-root"]
    assert len(main_roots) == 1
    assert main_roots[0].children == []
    assert len(thread_roots) == 4
    assert all(child.name == "thread-leaf" for root in thread_roots for child in root.children)


def test_foreign_pid_deactivates_a_trace() -> None:
    with tracing() as trace:
        trace._pid = trace._pid + 1  # simulate inheritance across fork
        assert current_trace() is None
        with span("ghost"):
            pass
    assert trace.roots == []


def test_worker_payloads_graft_under_the_open_span() -> None:
    with tracing(Trace(name="worker")) as worker_trace:
        with span("member:balls", cost=12.5):
            with span("solve"):
                pass
    payloads = export_spans(worker_trace)
    assert [p["name"] for p in payloads] == ["member:balls"]

    with tracing() as parent:
        with span("portfolio"):
            merge_spans(payloads)
    grafted = parent.roots[0].children
    assert [node.name for node in grafted] == ["member:balls"]
    assert grafted[0].attrs["cost"] == 12.5
    assert grafted[0].children[0].name == "solve"


def test_merge_spans_is_a_noop_without_a_trace() -> None:
    merge_spans([{"name": "orphan", "seconds": 0.0}])  # must not raise


def test_worker_tracing_opens_a_fresh_local_trace() -> None:
    with tracing() as outer:
        with worker_tracing() as local:
            assert current_trace() is local
            with span("w"):
                pass
        assert current_trace() is outer
    assert [root.name for root in local.roots] == ["w"]
    assert outer.roots == []


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


def test_module_helpers_are_noops_while_disabled() -> None:
    assert not metrics_enabled()
    inc("c")
    set_gauge("g", 1.0)
    observe("h", 2.0)
    snapshot = get_registry().snapshot()
    assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}


def test_counters_gauges_histograms_record_when_enabled() -> None:
    enable_metrics()
    inc("runs")
    inc("runs", 2.0)
    set_gauge("jobs", 4)
    for value in (1.0, 2.0, 3.0, 4.0):
        observe("seconds", value)
    disable_metrics()

    snapshot = get_registry().snapshot()
    assert snapshot["counters"]["runs"] == 3.0
    assert snapshot["gauges"]["jobs"] == 4
    summary = snapshot["histograms"]["seconds"]
    assert summary["count"] == 4
    assert summary["sum"] == pytest.approx(10.0)
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0
    assert summary["mean"] == pytest.approx(2.5)
    assert summary["p50"] <= summary["p90"] <= summary["p99"]


def test_collecting_scopes_the_enabled_flag() -> None:
    assert not metrics_enabled()
    with collecting() as registry:
        assert metrics_enabled()
        inc("inside")
        assert registry is get_registry()
    assert not metrics_enabled()
    assert get_registry().snapshot()["counters"] == {"inside": 1.0}


def test_reset_drops_instruments_but_keeps_the_flag() -> None:
    enable_metrics()
    inc("x")
    get_registry().reset()
    assert metrics_enabled()
    assert get_registry().snapshot()["counters"] == {}


def test_diff_snapshots_reports_deltas() -> None:
    enable_metrics()
    inc("moves", 5)
    observe("t", 1.0)
    before = get_registry().snapshot()
    inc("moves", 3)
    inc("fresh")
    set_gauge("jobs", 2)
    observe("t", 4.0)
    after = get_registry().snapshot()

    delta = diff_snapshots(before, after)
    assert delta["counters"] == {"moves": 3.0, "fresh": 1.0}
    assert delta["gauges"] == {"jobs": 2}
    assert delta["histograms"]["t"] == {"count": 1, "sum": pytest.approx(4.0)}


def test_histogram_reservoir_thins_but_keeps_exact_accumulators() -> None:
    registry = MetricsRegistry()
    registry.enabled = True
    total = 3 * registry.histogram("h")._MAX_KEPT
    for i in range(total):
        registry.observe("h", float(i))
    summary = registry.snapshot()["histograms"]["h"]
    assert summary["count"] == total
    assert summary["sum"] == pytest.approx(total * (total - 1) / 2.0)
    assert summary["min"] == 0.0
    assert summary["max"] == float(total - 1)
    assert len(registry.histogram("h")._kept) <= registry.histogram("h")._MAX_KEPT


def test_registry_to_json_is_valid_json() -> None:
    enable_metrics()
    inc("n")
    payload = json.loads(get_registry().to_json())
    assert payload["counters"] == {"n": 1.0}


# ---------------------------------------------------------------------------
# Profiling glue
# ---------------------------------------------------------------------------


def test_phase_records_span_and_histogram() -> None:
    enable_metrics()
    with tracing() as trace:
        with phase("unit.stage", n=9) as sp:
            pass
    assert trace.roots[0].name == "unit.stage"
    assert trace.roots[0].attrs == {"n": 9}
    summary = get_registry().snapshot()["histograms"]["phase.unit.stage.seconds"]
    assert summary["count"] == 1
    assert summary["sum"] == pytest.approx(sp.seconds)


def test_profiled_decorator_wraps_function_calls() -> None:
    @profiled("unit.fn")
    def double(x: int) -> int:
        """Doc survives."""
        return 2 * x

    assert double.__name__ == "double"
    assert double.__doc__ == "Doc survives."
    with tracing() as trace:
        assert double(21) == 42
    assert [root.name for root in trace.roots] == ["unit.fn"]


# ---------------------------------------------------------------------------
# Library integration: instrumented code paths
# ---------------------------------------------------------------------------


def test_aggregate_produces_the_documented_span_tree() -> None:
    rng = np.random.default_rng(7)
    matrix = rng.integers(0, 3, size=(40, 4))
    from repro.core.aggregate import aggregate

    with tracing() as trace:
        result = aggregate(matrix, method="local-search")
    (build,) = trace.find("aggregate.build")
    (solve,) = trace.find("aggregate.solve")
    assert build.attrs["method"] == "local-search"
    assert solve.attrs["k"] == result.k
    # AlgorithmResult timing fields are read from these very spans.
    assert result.elapsed_seconds == solve.seconds
    assert result.build_seconds == build.seconds
    assert trace.find("localsearch.refine")


def test_portfolio_member_spans_sum_close_to_root() -> None:
    rng = np.random.default_rng(11)
    matrix = rng.integers(0, 5, size=(120, 6))
    from repro.parallel.portfolio import portfolio

    with tracing() as trace:
        result = portfolio(matrix, rng=0, n_jobs=1)
    (root,) = trace.find("portfolio")
    members = [node for node in root.children if node.name.startswith("member:")]
    assert len(members) == len(result.runs)
    member_total = sum(node.seconds for node in members)
    # Members are the only real work under the root; the wrapper overhead
    # (argmin, dataclass assembly) stays within the 5% acceptance budget.
    assert abs(root.seconds - member_total) <= max(0.05 * root.seconds, 0.002)
    assert root.attrs["winner"] == result.best_method


def test_portfolio_grafts_worker_spans_across_the_pool() -> None:
    rng = np.random.default_rng(13)
    matrix = rng.integers(0, 5, size=(80, 5))
    from repro.parallel.portfolio import portfolio

    with tracing() as trace:
        result = portfolio(matrix, methods=("balls", "furthest"), rng=0, n_jobs=2)
    (root,) = trace.find("portfolio")
    members = {node.name for node in root.children if node.name.startswith("member:")}
    if result.jobs == 2:  # single-core hosts legitimately fall back to serial
        assert members == {"member:balls", "member:furthest"}


def test_streaming_engine_traces_updates() -> None:
    from repro.stream import StreamingAggregator

    rng = np.random.default_rng(5)
    matrix = rng.integers(0, 3, size=(30, 4))
    engine = StreamingAggregator(30, rng=0)
    with tracing() as trace:
        for j in range(matrix.shape[1]):
            engine.observe(matrix[:, j])
    observes = trace.find("stream.observe")
    refines = trace.find("stream.refine")
    assert len(observes) == matrix.shape[1]
    assert len(refines) == matrix.shape[1]
    assert all(node.attrs["mode"] in ("incremental", "rebuild", "sampling") for node in refines)


def test_metrics_capture_algorithm_counters() -> None:
    rng = np.random.default_rng(3)
    matrix = rng.integers(0, 4, size=(50, 5))
    from repro.core.aggregate import aggregate

    with collecting() as registry:
        aggregate(matrix, method="local-search")
    snapshot = registry.snapshot()
    assert snapshot["counters"]["instance.builds"] == 1.0
    assert snapshot["counters"]["instance.build.rows"] == 50.0
    assert "localsearch.sweeps" in snapshot["counters"]
    assert "phase.localsearch.refine.seconds" in snapshot["histograms"]
