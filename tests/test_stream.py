"""Tests for the streaming aggregation subsystem (repro.stream)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import aggregate
from repro.algorithms.local_search import local_search
from repro.core.instance import CorrelationInstance, disagreement_fractions
from repro.core.labels import MISSING
from repro.core.partition import Clustering
from repro.datasets import generate_votes
from repro.stream import (
    IncrementalCorrelationInstance,
    StreamingAggregator,
    load_checkpoint,
    save_checkpoint,
)


@st.composite
def label_matrices(draw):
    """Small random label matrices with missing entries, no all-missing column."""
    n = draw(st.integers(min_value=2, max_value=20))
    m = draw(st.integers(min_value=1, max_value=6))
    cells = draw(
        st.lists(
            st.integers(min_value=MISSING, max_value=3),
            min_size=n * m,
            max_size=n * m,
        )
    )
    matrix = np.asarray(cells, dtype=np.int32).reshape(n, m)
    # A column with no opinion about any object carries no information and
    # is rejected by validation; give such columns one concrete label.
    for j in np.flatnonzero(np.all(matrix == MISSING, axis=0)):
        matrix[0, j] = 0
    return matrix


class TestIncrementalInstance:
    @settings(max_examples=60, deadline=None)
    @given(matrix=label_matrices(), p=st.sampled_from([0.0, 0.3, 0.5, 1.0]))
    def test_matches_batch_coin_flip(self, matrix, p):
        incremental = IncrementalCorrelationInstance(matrix.shape[0], p=p)
        for j in range(matrix.shape[1]):
            incremental.observe(matrix[:, j])
        batch = disagreement_fractions(matrix, p=p)
        np.testing.assert_array_equal(incremental.distances(), batch)

    @settings(max_examples=40, deadline=None)
    @given(matrix=label_matrices())
    def test_matches_batch_average(self, matrix):
        incremental = IncrementalCorrelationInstance(matrix.shape[0], missing="average")
        for j in range(matrix.shape[1]):
            incremental.observe(matrix[:, j])
        batch = disagreement_fractions(matrix, missing="average")
        np.testing.assert_array_equal(incremental.distances(), batch)

    def test_matches_batch_float32(self):
        matrix = generate_votes(n=80, rng=1).label_matrix()
        incremental = IncrementalCorrelationInstance(matrix.shape[0], dtype=np.float32)
        for j in range(matrix.shape[1]):
            incremental.observe(matrix[:, j])
        batch = disagreement_fractions(matrix, dtype=np.float32)
        assert incremental.distances().dtype == np.float32
        np.testing.assert_allclose(incremental.distances(), batch, atol=1e-6)

    def test_instance_view_matches_batch_costs(self):
        matrix = generate_votes(n=60, rng=0).label_matrix()
        incremental = IncrementalCorrelationInstance(matrix.shape[0])
        for j in range(matrix.shape[1]):
            incremental.observe(matrix[:, j])
        view = incremental.instance()
        batch = CorrelationInstance.from_label_matrix(matrix)
        assert view.m == batch.m
        candidate = Clustering.random(matrix.shape[0], 3, rng=0)
        assert view.cost(candidate) == pytest.approx(batch.cost(candidate))

    def test_decay_weights_recent_clusterings(self):
        together = np.zeros(4, dtype=np.int32)
        apart = np.arange(4, dtype=np.int32)
        decay = 0.5
        incremental = IncrementalCorrelationInstance(4, decay=decay)
        incremental.observe(apart)
        incremental.observe(together)
        # Off-diagonal: (decay * 1 + 0) / (decay + 1)
        expected = decay / (decay + 1.0)
        X = incremental.distances()
        assert X[0, 1] == pytest.approx(expected)
        assert incremental.effective_m == pytest.approx(decay + 1.0)
        assert incremental.count == 2

    def test_decay_forgets_old_regime(self):
        """After many observations of a new regime, X converges to it."""
        old = np.array([0, 0, 1, 1], dtype=np.int32)
        new = np.array([0, 1, 0, 1], dtype=np.int32)
        incremental = IncrementalCorrelationInstance(4, decay=0.5)
        for _ in range(5):
            incremental.observe(old)
        for _ in range(10):
            incremental.observe(new)
        X = incremental.distances()
        assert X[0, 2] < 0.01  # co-clustered in the new regime
        assert X[0, 1] > 0.99  # separated in the new regime

    def test_rejects_bad_input(self):
        incremental = IncrementalCorrelationInstance(4)
        with pytest.raises(ValueError):
            incremental.observe(np.zeros(3, dtype=np.int32))
        with pytest.raises(TypeError):
            incremental.observe(np.zeros(4, dtype=np.float64))
        with pytest.raises(ValueError):
            incremental.observe(np.full(4, -2, dtype=np.int32))
        with pytest.raises(ValueError):
            incremental.observe(np.full(4, MISSING, dtype=np.int32))
        with pytest.raises(RuntimeError):
            incremental.distances()
        with pytest.raises(ValueError):
            IncrementalCorrelationInstance(4, decay=0.0)
        with pytest.raises(ValueError):
            IncrementalCorrelationInstance(4, missing="nope")


class TestStreamingAggregator:
    def test_votes_replay_matches_batch_local_search(self):
        """Acceptance: final streaming cost within 1% of batch LOCALSEARCH."""
        matrix = generate_votes(n=150, rng=0).label_matrix()
        engine = StreamingAggregator(matrix.shape[0], rng=0)
        updates = engine.observe_many(matrix)
        batch = aggregate(matrix, method="local-search", compute_lower_bound=False)
        assert engine.cost() <= batch.cost * 1.01
        assert len(updates) == matrix.shape[1]
        assert engine.count == matrix.shape[1]

    def test_warm_start_cheaper_than_cold(self):
        """Later updates move far fewer nodes than the first."""
        matrix = generate_votes(n=150, rng=0).label_matrix()
        engine = StreamingAggregator(matrix.shape[0])
        updates = engine.observe_many(matrix)
        assert updates[0].moves > 10 * max(1, updates[-1].moves)

    def test_update_records_and_stats(self):
        matrix = generate_votes(n=50, rng=2).label_matrix()
        engine = StreamingAggregator(matrix.shape[0])
        updates = engine.observe_many(matrix)
        assert [u.index for u in updates] == list(range(1, matrix.shape[1] + 1))
        for update in updates:
            assert update.cost >= 0.0
            assert update.disagreements == pytest.approx(update.index * update.cost)
            assert update.sweeps >= 1 and update.moves >= 0
            assert not update.used_sampling
        stats = engine.stats()
        assert stats.updates == matrix.shape[1]
        assert stats.total_moves == sum(u.moves for u in updates)
        assert stats.costs == [u.cost for u in updates]
        assert "updates=" in stats.summary()

    def test_sampling_fallback_above_threshold(self):
        matrix = generate_votes(n=120, rng=0).label_matrix()
        engine = StreamingAggregator(matrix.shape[0], sampling_threshold=50, rng=0)
        updates = engine.observe_many(matrix[:, :4])
        assert all(u.used_sampling for u in updates)
        assert engine.consensus.n == matrix.shape[0]

    def test_streaming_method_registered(self):
        matrix = generate_votes(n=80, rng=0).label_matrix()
        result = aggregate(matrix, method="streaming", rng=0, compute_lower_bound=False)
        assert result.method == "streaming"
        assert result.clustering.n == matrix.shape[0]
        with pytest.raises(ValueError):
            aggregate(matrix, method="streaming", collapse=True)
        instance = CorrelationInstance.from_label_matrix(matrix)
        with pytest.raises(ValueError):
            aggregate(instance, method="streaming")

    def test_consensus_before_any_update_raises(self):
        engine = StreamingAggregator(10)
        with pytest.raises(RuntimeError):
            _ = engine.consensus


class TestCheckpoint:
    def _replay(self, engine, matrix, start):
        return [engine.observe(matrix[:, j]) for j in range(start, matrix.shape[1])]

    def test_round_trip_resumes_identically(self, tmp_path):
        matrix = generate_votes(n=90, rng=3).label_matrix()
        half = matrix.shape[1] // 2
        original = StreamingAggregator(matrix.shape[0], rng=7)
        original.observe_many(matrix[:, :half])
        path = save_checkpoint(original, tmp_path / "engine.npz")

        restored = load_checkpoint(path)
        assert restored.n == original.n
        assert restored.count == original.count
        assert restored.consensus == original.consensus
        np.testing.assert_array_equal(
            restored.incremental.distances(), original.incremental.distances()
        )

        ours = self._replay(original, matrix, half)
        theirs = self._replay(restored, matrix, half)
        for mine, other in zip(ours, theirs):
            # Costs are read off incrementally-maintained masses; the
            # restored engine rebuilds its evaluator from scratch, so the
            # values may differ in the last float bits — decisions do not.
            assert mine.cost == pytest.approx(other.cost, rel=1e-9, abs=1e-9)
            assert mine.k == other.k
            assert mine.moves == other.moves
        assert original.consensus == restored.consensus

    def test_round_trip_with_decay_and_average_missing(self, tmp_path):
        matrix = generate_votes(n=40, rng=1).label_matrix()
        engine = StreamingAggregator(matrix.shape[0], decay=0.9, missing="average")
        engine.observe_many(matrix[:, :5])
        restored = load_checkpoint(save_checkpoint(engine, tmp_path / "ck.npz"))
        assert restored.incremental.decay == 0.9
        assert restored.incremental.missing == "average"
        assert restored.incremental.effective_m == pytest.approx(engine.incremental.effective_m)
        np.testing.assert_array_equal(
            restored.incremental.distances(), engine.incremental.distances()
        )

    def test_fresh_engine_checkpoint(self, tmp_path):
        engine = StreamingAggregator(12)
        restored = load_checkpoint(save_checkpoint(engine, tmp_path / "fresh.npz"))
        assert restored.count == 0
        with pytest.raises(RuntimeError):
            _ = restored.consensus

    def test_restore_validates_expected_config(self, tmp_path):
        matrix = generate_votes(n=30, rng=2).label_matrix()
        engine = StreamingAggregator(matrix.shape[0], p=0.5, decay=0.95)
        engine.observe_many(matrix[:, :4])
        path = save_checkpoint(engine, tmp_path / "ck.npz")

        restored = load_checkpoint(path, n=30, p=0.5, missing="coin-flip", decay=0.95)
        assert restored.count == engine.count

        with pytest.raises(ValueError, match="checkpoint covers 30 objects but 31"):
            load_checkpoint(path, n=31)
        with pytest.raises(ValueError, match="p=0.5 but p=0.3"):
            load_checkpoint(path, p=0.3)
        with pytest.raises(ValueError, match="missing='coin-flip' but missing='average'"):
            load_checkpoint(path, missing="average")
        with pytest.raises(ValueError, match="decay=0.95 but decay=1.0"):
            load_checkpoint(path, decay=1.0)

    def test_restore_without_expectations_is_unchecked(self, tmp_path):
        engine = StreamingAggregator(8, decay=0.7)
        path = save_checkpoint(engine, tmp_path / "ck.npz")
        # No expectations given: the checkpoint's own config wins.
        assert load_checkpoint(path).incremental.decay == 0.7

    def test_version_mismatch_rejected(self, tmp_path):
        import json

        engine = StreamingAggregator(5)
        path = save_checkpoint(engine, tmp_path / "ck.npz")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["version"] = 999
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)


class TestEffectiveWeight:
    def test_disagreements_uses_effective_weight_under_decay(self):
        matrix = generate_votes(n=40, rng=0).label_matrix()
        engine = StreamingAggregator(matrix.shape[0], decay=0.8, rng=0)
        updates = engine.observe_many(matrix[:, :6])
        weight = engine.incremental.effective_m
        assert weight < engine.count  # decay strictly shrinks the total mass
        assert engine.disagreements() == pytest.approx(weight * engine.cost())
        assert updates[-1].disagreements == pytest.approx(weight * updates[-1].cost)

    def test_restore_adopts_accumulators_without_fresh_allocation(self, monkeypatch):
        # Regression: from_state used to run __init__, allocating zeroed
        # O(n²) matrices only to overwrite them with the checkpointed
        # accumulators.  The restore path must never construct a fresh
        # instance at all.
        matrix = generate_votes(n=30, rng=0).label_matrix()
        engine = StreamingAggregator(matrix.shape[0], rng=1)
        engine.observe_many(matrix[:, :3])
        state = engine.state()

        def boom(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("restore must adopt accumulators, not allocate")

        monkeypatch.setattr(IncrementalCorrelationInstance, "__init__", boom)
        restored = StreamingAggregator.from_state(state)
        assert restored.count == engine.count
        assert restored.consensus == engine.consensus
        np.testing.assert_array_equal(
            restored.incremental.distances(), engine.incremental.distances()
        )

    def test_adopted_instance_validated(self):
        incremental = IncrementalCorrelationInstance(8, decay=0.9)
        engine = StreamingAggregator(8, incremental=incremental)
        assert engine.incremental is incremental
        with pytest.raises(ValueError, match="covers"):
            StreamingAggregator(9, incremental=incremental)
        with pytest.raises(ValueError, match="adopted instance"):
            StreamingAggregator(8, decay=0.5, incremental=incremental)


class TestLocalSearchDetails:
    def test_details_reported(self):
        matrix = generate_votes(n=60, rng=0).label_matrix()
        instance = CorrelationInstance.from_label_matrix(matrix)
        clustering, details = local_search(instance, return_details=True)
        assert details.sweeps >= 1
        assert details.moves > 0
        assert clustering.n == matrix.shape[0]

    def test_warm_start_at_optimum_makes_no_moves(self):
        matrix = generate_votes(n=60, rng=0).label_matrix()
        instance = CorrelationInstance.from_label_matrix(matrix)
        optimum = local_search(instance)
        again, details = local_search(instance, initial=optimum, return_details=True)
        assert details.moves == 0
        assert details.sweeps == 1
        assert again == optimum
