"""Tests for the ROCK and LIMBO baselines (repro.baselines)."""

import numpy as np
import pytest

from repro.core.labels import MISSING
from repro.baselines import limbo, rock, rock_goodness_exponent
from repro.baselines.limbo import _delta_information, _entropy_rows, _item_distributions
from repro.baselines.rock import _link_matrix
from repro.metrics import classification_error


def two_group_categorical(seed=0, per_group=30, m=8, noise=0.1):
    """Two well-separated categorical populations."""
    rng = np.random.default_rng(seed)
    data = np.empty((2 * per_group, m), dtype=np.int32)
    for j in range(m):
        data[:per_group, j] = np.where(rng.random(per_group) < noise, 1, 0)
        data[per_group:, j] = np.where(rng.random(per_group) < noise, 2, 3)
    classes = np.repeat([0, 1], per_group)
    return data, classes


class TestRock:
    def test_goodness_exponent(self):
        # f(0.5) = 1/3, exponent = 1 + 2/3.
        assert rock_goodness_exponent(0.5) == pytest.approx(1 + 2 / 3)
        assert rock_goodness_exponent(0.0) == pytest.approx(3.0)

    def test_exponent_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            rock_goodness_exponent(1.0)

    def test_link_matrix_brute_force(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 3, size=(15, 4)).astype(np.int32)
        theta = 0.3
        links = _link_matrix(data, theta)
        from repro.cluster.distances import jaccard_similarity_matrix

        sims = jaccard_similarity_matrix(data)
        adjacency = sims >= theta
        np.fill_diagonal(adjacency, False)
        for u in range(15):
            for v in range(15):
                expected = int(np.sum(adjacency[u] & adjacency[v]))
                assert links[u, v] == expected

    def test_separates_two_groups(self):
        data, classes = two_group_categorical()
        clustering = rock(data, k=2, theta=0.5)
        assert classification_error(clustering, classes) == 0.0

    def test_k_respected_when_links_exist(self):
        data, _ = two_group_categorical()
        clustering = rock(data, k=4, theta=0.5)
        assert clustering.k == 4

    def test_stops_without_links(self):
        # theta = 0.99: nobody is anybody's neighbour, so no merging happens.
        data, _ = two_group_categorical(noise=0.4)
        clustering = rock(data, k=2, theta=0.99)
        assert clustering.k == data.shape[0]

    def test_sampling_path(self):
        data, classes = two_group_categorical(per_group=100)
        clustering = rock(data, k=2, theta=0.5, sample_size=40, rng=0)
        assert clustering.n == 200
        assert classification_error(clustering, classes) <= 0.05

    def test_invalid_k(self):
        data, _ = two_group_categorical()
        with pytest.raises(ValueError):
            rock(data, k=0)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            rock(np.zeros(5, dtype=np.int32), k=1)


class TestLimboInternals:
    def test_item_distributions_rows_sum_to_one(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 3, size=(20, 5)).astype(np.int32)
        data[rng.random((20, 5)) < 0.2] = MISSING
        data[0] = 0
        dists = _item_distributions(data)
        assert np.allclose(dists.sum(axis=1), 1.0)

    def test_missing_contributes_no_mass(self):
        data = np.array([[0, MISSING]], dtype=np.int32)
        dists = _item_distributions(data)
        assert dists[0].sum() == pytest.approx(1.0)
        # All mass on attribute 0's value.
        assert dists[0, 0] == pytest.approx(1.0)

    def test_entropy_of_uniform(self):
        uniform = np.full((1, 4), 0.25)
        assert _entropy_rows(uniform)[0] == pytest.approx(np.log(4))

    def test_delta_information_nonnegative(self):
        rng = np.random.default_rng(2)
        p = rng.dirichlet(np.ones(6), size=4)
        entropies = _entropy_rows(p)
        deltas = _delta_information(0.3, p[0], entropies[0], np.full(3, 0.2), p[1:], entropies[1:])
        assert np.all(deltas >= -1e-12)

    def test_delta_zero_for_identical_distributions(self):
        q = np.full(4, 0.25)
        entropy = _entropy_rows(q[None, :])[0]
        delta = _delta_information(0.5, q, entropy, np.array([0.5]), q[None, :], np.array([entropy]))
        assert delta[0] == pytest.approx(0.0, abs=1e-12)


class TestLimbo:
    def test_separates_two_groups(self):
        data, classes = two_group_categorical()
        clustering = limbo(data, k=2)
        assert classification_error(clustering, classes) == 0.0

    def test_k_respected(self):
        data, _ = two_group_categorical()
        for k in (2, 3, 5):
            assert limbo(data, k=k).k == k

    def test_summarization_budget(self):
        data, classes = two_group_categorical(per_group=80)
        clustering = limbo(data, k=2, phi=0.5, max_leaves=16)
        assert classification_error(clustering, classes) <= 0.05

    def test_phi_zero_and_positive_consistent_on_easy_data(self):
        data, classes = two_group_categorical()
        exact = limbo(data, k=2, phi=0.0)
        lossy = limbo(data, k=2, phi=1.0, max_leaves=32)
        assert classification_error(exact, classes) == 0.0
        assert classification_error(lossy, classes) == 0.0

    def test_invalid_parameters(self):
        data, _ = two_group_categorical()
        with pytest.raises(ValueError):
            limbo(data, k=0)
        with pytest.raises(ValueError):
            limbo(data, k=2, phi=-1.0)
        with pytest.raises(ValueError):
            limbo(np.zeros(4, dtype=np.int32), k=1)

    def test_handles_missing_values(self):
        data, classes = two_group_categorical()
        rng = np.random.default_rng(5)
        data[rng.random(data.shape) < 0.1] = MISSING
        clustering = limbo(data, k=2)
        assert classification_error(clustering, classes) <= 0.1
