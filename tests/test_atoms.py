"""Tests for duplicate collapsing and weighted (atom) instances.

The central claim: running an algorithm on the collapsed weighted
instance is equivalent to running it on the original duplicate-bearing
one.  For the cost function and the lower bound the equivalence is an
exact identity, verified directly; for BALLS and AGGLOMERATIVE the two
runs are compared end-to-end.
"""

import numpy as np
import pytest

from repro import Clustering, aggregate
from repro.core import CorrelationInstance, total_disagreement
from repro.core.atoms import collapse_duplicates
from repro.algorithms import agglomerative, balls, local_search

from conftest import planted_instance


def duplicated_problem(seed, n_atoms=25, m=5, groups=3, max_copies=4):
    """A label matrix with known duplicate structure."""
    rng = np.random.default_rng(seed)
    _, base = planted_instance(n=n_atoms, m=m, groups=groups, flip=0.25, seed=seed)
    copies = rng.integers(1, max_copies + 1, size=n_atoms)
    expanded = np.repeat(base, copies, axis=0)
    order = rng.permutation(expanded.shape[0])
    return expanded[order]


class TestCollapse:
    def test_round_trip(self):
        matrix = duplicated_problem(0)
        atoms = collapse_duplicates(matrix)
        assert np.array_equal(atoms.matrix[atoms.inverse], matrix)
        assert int(atoms.weights.sum()) == matrix.shape[0]

    def test_no_duplicates_is_identity(self):
        matrix = np.array([[0, 1], [1, 0], [2, 2]], dtype=np.int32)
        atoms = collapse_duplicates(matrix)
        assert atoms.n_atoms == 3
        assert (atoms.weights == 1).all()

    def test_expand_validates_size(self):
        atoms = collapse_duplicates(duplicated_problem(1))
        with pytest.raises(ValueError):
            atoms.expand(Clustering([0]))

    def test_inverse_is_flat_under_numpy_20x_shape(self, monkeypatch):
        """Regression: numpy 2.0.x returns the axis-0 ``return_inverse``
        shaped ``(n, 1)`` (reverted to ``(n,)`` in 2.1).  A 2-D inverse
        silently broadcasts ``expand()`` into an ``(n, n)`` label matrix,
        so ``collapse_duplicates`` must flatten it unconditionally."""
        from repro.core import atoms as atoms_module

        real_unique = np.unique

        def unique_20x(*args, **kwargs):
            out = real_unique(*args, **kwargs)
            # Only axis-based unique was affected in numpy 2.0.x.
            if kwargs.get("axis") is not None and kwargs.get("return_inverse"):
                unique, inverse, *rest = out
                return (unique, np.reshape(inverse, (-1, 1)), *rest)
            return out

        monkeypatch.setattr(atoms_module.np, "unique", unique_20x)
        matrix = duplicated_problem(3)
        atoms = atoms_module.collapse_duplicates(matrix)
        assert atoms.inverse.ndim == 1
        assert np.array_equal(atoms.matrix[atoms.inverse], matrix)
        expanded = atoms.expand(Clustering(np.arange(atoms.n_atoms) % 2))
        assert expanded.labels.shape == (matrix.shape[0],)

    def test_expand_preserves_atom_cohesion(self):
        matrix = duplicated_problem(2)
        atoms = collapse_duplicates(matrix)
        atom_clustering = Clustering(np.arange(atoms.n_atoms) % 3)
        expanded = atoms.expand(atom_clustering)
        # Duplicates always land together.
        for atom in range(atoms.n_atoms):
            rows = np.flatnonzero(atoms.inverse == atom)
            assert len(set(expanded.labels[rows].tolist())) == 1


class TestWeightedInstance:
    def make(self, seed):
        matrix = duplicated_problem(seed)
        atoms = collapse_duplicates(matrix)
        expanded = CorrelationInstance.from_label_matrix(matrix)
        collapsed = CorrelationInstance.from_label_matrix(
            atoms.matrix, weights=atoms.weights
        )
        return matrix, atoms, expanded, collapsed

    @pytest.mark.parametrize("seed", range(5))
    def test_cost_identity(self, seed):
        matrix, atoms, expanded, collapsed = self.make(seed)
        rng = np.random.default_rng(seed)
        for _ in range(4):
            atom_labels = rng.integers(0, 4, size=atoms.n_atoms)
            atom_clustering = Clustering(atom_labels)
            expanded_clustering = atoms.expand(atom_clustering)
            assert collapsed.cost(atom_clustering) == pytest.approx(
                expanded.cost(expanded_clustering), rel=1e-9
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_lower_bound_identity(self, seed):
        _, _, expanded, collapsed = self.make(seed)
        assert collapsed.lower_bound() == pytest.approx(expanded.lower_bound(), rel=1e-9)

    def test_weights_validation(self):
        X = np.zeros((3, 3))
        with pytest.raises(ValueError):
            CorrelationInstance(X, weights=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            CorrelationInstance(X, weights=np.array([1.0, 0.5, 1.0]))

    def test_subinstance_carries_weights(self):
        _, atoms, _, collapsed = self.make(4)
        sub = collapsed.subinstance([0, 2])
        assert sub.weights is not None
        assert sub.weights.tolist() == [atoms.weights[0], atoms.weights[2]]


def tie_free_weighted_case(seed, n_atoms=14, max_copies=3):
    """A generic float instance plus its explicit duplicate expansion.

    Label-matrix instances carry exact ties (multiples of 1/m) that make
    greedy merge *paths* diverge between the collapsed and expanded runs;
    generic float distances isolate the weighted mechanics.
    """
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.05, 0.95, size=(n_atoms, n_atoms))
    X = (X + X.T) / 2.0
    np.fill_diagonal(X, 0.0)
    weights = rng.integers(1, max_copies + 1, size=n_atoms)
    index = np.repeat(np.arange(n_atoms), weights)
    expanded = X[np.ix_(index, index)].copy()
    # Duplicates of the same atom sit at distance exactly 0.
    same_atom = index[:, None] == index[None, :]
    expanded[same_atom] = 0.0
    collapsed_instance = CorrelationInstance(X, weights=weights.astype(np.float64))
    expanded_instance = CorrelationInstance.from_distances(expanded)
    return collapsed_instance, expanded_instance, index


class TestWeightedAlgorithms:
    @pytest.mark.parametrize("seed", range(6))
    def test_agglomerative_equivalence_tie_free(self, seed):
        collapsed_instance, expanded_instance, index = tie_free_weighted_case(seed)
        via_atoms = Clustering(agglomerative(collapsed_instance).labels[index])
        direct = agglomerative(expanded_instance)
        assert via_atoms == direct

    @pytest.mark.parametrize("seed", range(6))
    def test_balls_equivalence_when_balls_always_accept(self, seed):
        # With alpha >= radius every ball is accepted, removing the one
        # case (rejected ball) where the expanded run can split an atom.
        collapsed_instance, expanded_instance, index = tie_free_weighted_case(seed)
        via_atoms = Clustering(balls(collapsed_instance, alpha=0.5).labels[index])
        direct = balls(expanded_instance, alpha=0.5)
        assert via_atoms == direct

    @pytest.mark.parametrize("seed", range(4))
    def test_balls_weighted_never_worse_at_small_alpha(self, seed):
        # At small alpha the expanded run may split duplicates into many
        # singletons (paying their mutual pairs); the weighted run keeps
        # atoms whole, which can only help the objective on these cases.
        collapsed_instance, expanded_instance, index = tie_free_weighted_case(seed + 50)
        via_atoms = Clustering(balls(collapsed_instance, alpha=0.25).labels[index])
        direct = balls(expanded_instance, alpha=0.25)
        assert expanded_instance.cost(via_atoms) <= expanded_instance.cost(direct) + 1e-9

    def test_label_matrix_collapse_cost_parity(self):
        """On real label matrices the distances are multiples of 1/m, so
        greedy tie-breaking paths diverge between the collapsed and direct
        runs; both still optimize the same objective and must land in the
        same quality band (and LOCALSEARCH polishing narrows the gap)."""
        from repro.core.instance import CorrelationInstance
        from repro.algorithms import local_search

        for seed in range(5):
            matrix = duplicated_problem(seed)
            direct = aggregate(matrix, method="agglomerative", compute_lower_bound=False)
            collapsed = aggregate(
                matrix, method="agglomerative", collapse=True, compute_lower_bound=False
            )
            # Raw greedy outcomes may differ by several percent on tiny
            # noisy instances (tie paths); after polishing in the full
            # space, the collapsed start is as good as the direct one.
            instance = CorrelationInstance.from_label_matrix(matrix)
            polished_direct = instance.cost(local_search(instance, initial=direct.clustering))
            polished_collapsed = instance.cost(
                local_search(instance, initial=collapsed.clustering)
            )
            assert polished_collapsed <= polished_direct * 1.05 + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_local_search_moves_are_cost_true(self, seed):
        """Weighted LOCALSEARCH deltas must equal true expanded-cost deltas:
        the weighted cost never increases and matches a from-scratch
        weighted evaluation."""
        matrix = duplicated_problem(seed + 20)
        atoms = collapse_duplicates(matrix)
        collapsed_instance = CorrelationInstance.from_label_matrix(
            atoms.matrix, weights=atoms.weights
        )
        expanded_instance = CorrelationInstance.from_label_matrix(matrix)
        result = local_search(collapsed_instance)
        expanded_result = atoms.expand(result)
        assert collapsed_instance.cost(result) == pytest.approx(
            expanded_instance.cost(expanded_result), rel=1e-9
        )
        # Local optimality in the weighted move space.
        start_cost = collapsed_instance.cost(result)
        polished = local_search(collapsed_instance, initial=result)
        assert collapsed_instance.cost(polished) == pytest.approx(start_cost)


class TestAggregateCollapse:
    def test_collapse_returns_full_cover(self):
        matrix = duplicated_problem(7)
        collapsed = aggregate(
            matrix, method="agglomerative", collapse=True, compute_lower_bound=False
        )
        assert collapsed.clustering.n == matrix.shape[0]

    def test_collapse_keeps_duplicates_together(self):
        matrix = duplicated_problem(11)
        atoms = collapse_duplicates(matrix)
        result = aggregate(matrix, method="local-search", collapse=True)
        for atom in range(atoms.n_atoms):
            rows = np.flatnonzero(atoms.inverse == atom)
            assert len(set(result.clustering.labels[rows].tolist())) == 1

    def test_collapse_with_sampling(self):
        matrix = duplicated_problem(8, n_atoms=60, max_copies=3)
        result = aggregate(
            matrix, method="sampling", collapse=True, sample_size=40, rng=0
        )
        assert result.clustering.n == matrix.shape[0]
        atoms = collapse_duplicates(matrix)
        for atom in range(atoms.n_atoms):
            rows = np.flatnonzero(atoms.inverse == atom)
            assert len(set(result.clustering.labels[rows].tolist())) == 1

    def test_collapse_rejected_for_best(self):
        matrix = duplicated_problem(8)
        with pytest.raises(ValueError, match="collapse"):
            aggregate(matrix, method="best", collapse=True)

    @pytest.mark.parametrize("seed", range(3))
    def test_exact_weighted_matches_expanded(self, seed):
        """Branch-and-bound on the weighted atom instance finds the same
        optimal cost as on the physically expanded instance — the property
        the shard merge layer relies on."""
        matrix = duplicated_problem(9 + seed, n_atoms=6, max_copies=2)
        atoms = collapse_duplicates(matrix)
        collapsed = CorrelationInstance.from_label_matrix(
            atoms.matrix, weights=atoms.weights
        )
        expanded = CorrelationInstance.from_label_matrix(matrix)
        from repro.algorithms import exact_optimum

        atom_clustering, atom_cost = exact_optimum(collapsed)
        _, direct_cost = exact_optimum(expanded)
        assert atom_cost == pytest.approx(direct_cost, rel=1e-9)
        assert expanded.cost(atoms.expand(atom_clustering)) == pytest.approx(
            direct_cost, rel=1e-9
        )

    def test_exact_collapse_pipeline(self):
        matrix = duplicated_problem(9, n_atoms=6, max_copies=2)
        via_atoms = aggregate(matrix, method="exact", collapse=True)
        direct = aggregate(matrix, method="exact")
        assert via_atoms.cost == pytest.approx(direct.cost, rel=1e-9)
        assert via_atoms.clustering.n == matrix.shape[0]

    def test_weighted_count_tables_match_expanded(self):
        """ClusterCountTables with multiplicities must equal the tables of
        the physically expanded matrix."""
        from repro.core.objective import ClusterCountTables

        matrix = duplicated_problem(12, n_atoms=30)
        atoms = collapse_duplicates(matrix)
        rng = np.random.default_rng(0)
        member_atoms = rng.choice(atoms.n_atoms, size=12, replace=False)
        labels = np.arange(12) % 3

        weighted = ClusterCountTables(
            atoms.matrix, member_atoms, labels, member_weights=atoms.weights[member_atoms]
        )
        # Expanded equivalent: every duplicate of a member atom is a member.
        member_rows = []
        member_labels = []
        for atom, label in zip(member_atoms, labels):
            rows = np.flatnonzero(atoms.inverse == atom)
            member_rows.extend(rows.tolist())
            member_labels.extend([label] * rows.size)
        expanded = ClusterCountTables(
            matrix, np.array(member_rows), np.array(member_labels)
        )
        # Scores of the remaining atoms (evaluated via a representative row)
        # must coincide.
        others = np.setdiff1d(np.arange(atoms.n_atoms), member_atoms)[:8]
        representative_rows = np.array(
            [np.flatnonzero(atoms.inverse == atom)[0] for atom in others]
        )
        weighted_masses = weighted.masses(others)
        expanded_masses = expanded.masses(representative_rows)
        assert np.allclose(weighted_masses, expanded_masses)

    def test_weighted_sampling_runs_and_covers(self):
        from repro.algorithms import agglomerative, sampling

        matrix = duplicated_problem(13, n_atoms=80, max_copies=4)
        atoms = collapse_duplicates(matrix)
        result = sampling(
            atoms.matrix,
            agglomerative,
            # An explicit size is validated against the atom count now, so
            # size it from the collapsed instance rather than the original.
            sample_size=max(1, atoms.n_atoms // 2),
            rng=0,
            weights=atoms.weights.astype(np.float64),
        )
        assert result.n == atoms.n_atoms

    def test_disagreements_consistent_with_total(self):
        matrix = duplicated_problem(10)
        result = aggregate(matrix, method="local-search", collapse=True)
        assert result.disagreements == pytest.approx(
            total_disagreement(matrix, result.clustering)
        )
