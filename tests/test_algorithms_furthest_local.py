"""Tests for FURTHEST and LOCALSEARCH (repro.algorithms)."""

import numpy as np
import pytest

from repro import Clustering
from repro.core import CorrelationInstance
from repro.algorithms import agglomerative, furthest, local_search

from conftest import random_aggregation_instance


class TestFurthest:
    def test_figure1_optimum(self, figure1_instance):
        assert furthest(figure1_instance) == Clustering([0, 1, 0, 1, 2, 2])

    def test_single_object(self):
        instance = CorrelationInstance.from_distances(np.zeros((1, 1)))
        assert furthest(instance).k == 1

    def test_identical_objects_single_cluster(self):
        matrix = np.zeros((6, 3), dtype=np.int32)
        instance = CorrelationInstance.from_label_matrix(matrix)
        assert furthest(instance).k == 1

    def test_never_worse_than_single_cluster(self):
        for seed in range(6):
            _, instance = random_aggregation_instance(n=20, m=4, k=4, seed=seed)
            result = furthest(instance)
            single = instance.cost(Clustering.single_cluster(20))
            assert instance.cost(result) <= single + 1e-9

    def test_first_centers_are_furthest_pair(self):
        # Three points: two identical, one maximally far — the far pair
        # must split first, giving exactly two clusters.
        matrix = np.array([[0, 0], [0, 0], [1, 1]], dtype=np.int32)
        instance = CorrelationInstance.from_label_matrix(matrix)
        result = furthest(instance)
        assert result == Clustering([0, 0, 1])

    def test_max_k_caps_centers(self):
        _, instance = random_aggregation_instance(n=25, m=5, k=5, seed=1)
        result = furthest(instance, max_k=2)
        assert result.k <= 2

    def test_force_k_returns_exact_count(self):
        _, instance = random_aggregation_instance(n=25, m=5, k=5, seed=3)
        for k in (2, 4, 7):
            assert furthest(instance, force_k=k).k == k

    def test_force_k_validation(self):
        _, instance = random_aggregation_instance(n=10, m=3, k=3, seed=4)
        with pytest.raises(ValueError):
            furthest(instance, force_k=0)
        with pytest.raises(ValueError):
            furthest(instance, force_k=11)
        with pytest.raises(ValueError):
            furthest(instance, max_k=3, force_k=3)

    def test_force_k_one_is_single_cluster(self):
        _, instance = random_aggregation_instance(n=8, m=3, k=3, seed=5)
        assert furthest(instance, force_k=1).k == 1

    def test_all_zero_matrix_force_k_uses_distinct_centers(self):
        # Regression: on an identically-zero X, np.argmax lands on the
        # diagonal (flat index 0) and used to install node 0 as *both*
        # initial centers, splitting it off as a phantom cluster.  With
        # distinct canonical centers node 0 stays with the bulk and the
        # forced second cluster is the second center's own singleton.
        matrix = np.zeros((6, 3), dtype=np.int32)
        instance = CorrelationInstance.from_label_matrix(matrix)
        result = furthest(instance, force_k=2)
        assert result == Clustering([0, 1, 0, 0, 0, 0])

    def test_stops_on_first_non_improvement(self):
        # With all pairwise distances below 1/2, splitting anything hurts,
        # so FURTHEST must return the single cluster.
        X = np.full((8, 8), 0.3)
        np.fill_diagonal(X, 0.0)
        instance = CorrelationInstance.from_distances(X)
        assert furthest(instance).k == 1


class TestLocalSearch:
    def test_figure1_optimum(self, figure1_instance):
        assert local_search(figure1_instance) == Clustering([0, 1, 0, 1, 2, 2])

    def test_local_optimality(self):
        """After convergence no single-node move can strictly improve."""
        for seed in range(4):
            _, instance = random_aggregation_instance(n=15, m=3, k=3, seed=seed)
            result = local_search(instance)
            base = instance.cost(result)
            labels = result.labels.astype(np.int64)
            for v in range(15):
                for target in range(result.k + 1):  # +1: fresh singleton
                    candidate = labels.copy()
                    candidate[v] = target if target < result.k else result.k
                    assert instance.cost(Clustering(candidate)) >= base - 1e-9

    def test_improves_initial_solution(self):
        _, instance = random_aggregation_instance(n=30, m=4, k=4, seed=9)
        initial = Clustering.random(30, 6, rng=0)
        improved = local_search(instance, initial=initial)
        assert instance.cost(improved) <= instance.cost(initial) + 1e-9

    def test_postprocessing_never_hurts(self):
        for seed in range(4):
            _, instance = random_aggregation_instance(n=25, m=5, k=3, seed=seed)
            first = agglomerative(instance)
            polished = local_search(instance, initial=first)
            assert instance.cost(polished) <= instance.cost(first) + 1e-9

    def test_initial_size_mismatch_rejected(self, figure1_instance):
        with pytest.raises(ValueError):
            local_search(figure1_instance, initial=Clustering([0, 1]))

    def test_shuffled_order_is_valid(self, figure1_instance):
        result = local_search(figure1_instance, rng=3)
        assert result.n == 6
        assert figure1_instance.cost(result) == pytest.approx(5.0 / 3.0)

    def test_max_sweeps_respected(self):
        _, instance = random_aggregation_instance(n=20, m=3, k=3, seed=2)
        result = local_search(instance, max_sweeps=1)
        assert result.n == 20  # terminates and returns a valid partition

    def test_fixed_point_of_optimum(self, figure1_instance, figure1_optimum):
        result = local_search(figure1_instance, initial=figure1_optimum)
        assert result == figure1_optimum
