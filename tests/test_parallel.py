"""Tests for the shared-memory parallel backend (repro.parallel)."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import aggregate
from repro.cli import main
from repro.core.atoms import collapse_duplicates
from repro.core.instance import CorrelationInstance, disagreement_fractions
from repro.core.labels import MISSING
from repro.core.objective import ClusterCountTables
from repro.datasets import generate_votes
from repro.parallel import (
    DEFAULT_PORTFOLIO,
    JOBS_ENV_VAR,
    SharedNDArray,
    parallel_assign,
    parallel_disagreement_fractions,
    portfolio,
    resolve_jobs,
)


class TestResolveJobs:
    def test_explicit_value_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(3) == 3

    def test_none_consults_environment(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs(None) == 5

    def test_unset_environment_means_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1
        monkeypatch.setenv(JOBS_ENV_VAR, "  ")
        assert resolve_jobs(None) == 1

    def test_invalid_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError, match=JOBS_ENV_VAR):
            resolve_jobs(None)

    @pytest.mark.parametrize("value", [0, -1])
    def test_nonpositive_means_all_cores(self, value):
        import os

        assert resolve_jobs(value) == max(1, os.cpu_count() or 1)

    def test_nonpositive_environment_means_all_cores(self, monkeypatch):
        import os

        monkeypatch.setenv(JOBS_ENV_VAR, "0")
        assert resolve_jobs(None) == max(1, os.cpu_count() or 1)


class TestSharedNDArray:
    def test_create_attach_round_trip(self):
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        with SharedNDArray.create(data.shape, data.dtype) as owner:
            owner.array[...] = data
            view = SharedNDArray.attach(owner.descriptor)
            try:
                np.testing.assert_array_equal(view.array, data)
                # Same physical pages: a write through one side is seen
                # by the other without any copying.
                view.array[1, 2] = -7.0
                assert owner.array[1, 2] == -7.0
            finally:
                view.close()

    def test_descriptor_is_plain_data(self):
        with SharedNDArray.create((2, 5), np.float32) as shared:
            name, shape, dtype_name = shared.descriptor
            assert isinstance(name, str)
            assert shape == (2, 5)
            assert dtype_name == "float32"
            assert "owner" in repr(shared)

    def test_owner_close_unlinks_segment(self):
        shared = SharedNDArray.create((4,), np.int64)
        descriptor = shared.descriptor
        shared.close()
        with pytest.raises(FileNotFoundError):
            SharedNDArray.attach(descriptor)


def build_matrix(n, m, k, seed, missing_rate=0.0):
    """A random (n, m) label matrix, optionally with missing entries."""
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, k, size=(n, m)).astype(np.int32)
    if missing_rate > 0.0:
        matrix[rng.random((n, m)) < missing_rate] = MISSING
        # Validation rejects all-missing columns; re-anchor any.
        for j in np.flatnonzero(np.all(matrix == MISSING, axis=0)):
            matrix[0, j] = 0
    return matrix


build_problems = st.tuples(
    st.integers(min_value=2, max_value=24),  # n
    st.integers(min_value=1, max_value=5),  # m
    st.integers(min_value=1, max_value=4),  # k
    st.integers(min_value=0, max_value=10_000),  # seed
    st.sampled_from([0.0, 0.25]),  # missing rate
)


class TestParallelBuild:
    @settings(max_examples=10, deadline=None)
    @given(
        problem=build_problems,
        missing=st.sampled_from(["coin-flip", "average"]),
        dtype=st.sampled_from([np.float64, np.float32]),
    )
    def test_bit_identical_to_serial(self, problem, missing, dtype):
        """The tentpole guarantee: any worker count, any row tiling."""
        n, m, k, seed, rate = problem
        matrix = build_matrix(n, m, k, seed, missing_rate=rate)
        serial = disagreement_fractions(matrix, dtype=dtype, missing=missing, n_jobs=1)
        fanned = parallel_disagreement_fractions(
            matrix, dtype=dtype, missing=missing, n_jobs=3, block_rows=3
        )
        assert fanned.dtype == serial.dtype
        np.testing.assert_array_equal(fanned, serial)

    def test_bit_identical_with_nondefault_p(self):
        matrix = build_matrix(30, 4, 3, seed=5, missing_rate=0.3)
        serial = disagreement_fractions(matrix, p=0.2, n_jobs=1)
        fanned = parallel_disagreement_fractions(matrix, p=0.2, n_jobs=2, block_rows=7)
        np.testing.assert_array_equal(fanned, serial)

    def test_single_block_falls_back_to_serial(self):
        matrix = build_matrix(10, 3, 3, seed=0)
        X = parallel_disagreement_fractions(matrix, n_jobs=4)  # one default block
        np.testing.assert_array_equal(X, disagreement_fractions(matrix, n_jobs=1))

    def test_rejects_bad_parameters(self):
        matrix = build_matrix(6, 2, 2, seed=0)
        with pytest.raises(ValueError, match="missing"):
            parallel_disagreement_fractions(matrix, missing="nope")
        with pytest.raises(ValueError, match="probability"):
            parallel_disagreement_fractions(matrix, p=1.5)
        with pytest.raises(ValueError, match="block_rows"):
            parallel_disagreement_fractions(matrix, block_rows=0)

    def test_small_instances_stay_serial(self, monkeypatch):
        """The MIN_PARALLEL_ROWS floor: tiny builds never pay pool start-up."""
        import repro.parallel.build as build_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("parallel build dispatched below the size floor")

        monkeypatch.setattr(build_module, "parallel_disagreement_fractions", boom)
        matrix = build_matrix(40, 3, 3, seed=1)
        X = disagreement_fractions(matrix, n_jobs=4)
        np.testing.assert_array_equal(X, disagreement_fractions(matrix, n_jobs=1))

    def test_from_label_matrix_honours_n_jobs(self, monkeypatch):
        """Above the floor, n_jobs>1 routes through the parallel build."""
        import repro.parallel.build as build_module

        matrix = build_matrix(64, 3, 3, seed=2)
        monkeypatch.setattr(build_module, "MIN_PARALLEL_ROWS", 32)
        serial = CorrelationInstance.from_label_matrix(matrix, n_jobs=1)
        fanned = CorrelationInstance.from_label_matrix(matrix, n_jobs=2)
        np.testing.assert_array_equal(fanned.X, serial.X)
        assert fanned.m == serial.m


class TestParallelAssign:
    def test_matches_serial_assign(self):
        matrix = generate_votes(n=200, rng=0).label_matrix()
        sample = np.arange(0, 200, 4)
        sub = CorrelationInstance.from_label_matrix(matrix[sample])
        from repro.algorithms.agglomerative import agglomerative

        clustering = agglomerative(sub)
        tables = ClusterCountTables(matrix, sample, clustering.labels)
        rest = np.setdiff1d(np.arange(200), sample)
        serial = tables.assign(rest)
        for jobs, block in ((1, 7), (2, 7), (3, 16)):
            fanned = parallel_assign(tables, rest, n_jobs=jobs, block_size=block)
            np.testing.assert_array_equal(fanned, serial)

    def test_empty_rows(self):
        matrix = build_matrix(12, 3, 3, seed=0)
        sample = np.arange(12)
        sub = CorrelationInstance.from_label_matrix(matrix)
        from repro.algorithms.agglomerative import agglomerative

        tables = ClusterCountTables(matrix, sample, agglomerative(sub).labels)
        result = parallel_assign(tables, np.empty(0, dtype=np.int64), n_jobs=2)
        assert result.size == 0 and result.dtype == np.int64

    def test_rejects_bad_block_size(self):
        matrix = build_matrix(8, 2, 2, seed=0)
        sub = CorrelationInstance.from_label_matrix(matrix)
        from repro.algorithms.agglomerative import agglomerative

        tables = ClusterCountTables(matrix, np.arange(8), agglomerative(sub).labels)
        with pytest.raises(ValueError, match="block_size"):
            parallel_assign(tables, np.arange(8), block_size=0)


class TestPortfolio:
    def test_parallel_matches_serial(self):
        matrix = generate_votes(n=120, rng=0).label_matrix()
        serial = portfolio(matrix, rng=7, n_jobs=1)
        fanned = portfolio(matrix, rng=7, n_jobs=3)
        assert fanned.best_method == serial.best_method
        assert fanned.cost == serial.cost
        np.testing.assert_array_equal(fanned.best.labels, serial.best.labels)
        assert [run.cost for run in fanned.runs] == [run.cost for run in serial.runs]
        assert [run.method for run in fanned.runs] == list(DEFAULT_PORTFOLIO)
        assert serial.jobs == 1 and fanned.jobs == 3

    def test_parallel_matches_serial_on_weighted_atoms(self):
        matrix = generate_votes(n=150, rng=1).label_matrix()
        atoms = collapse_duplicates(matrix)
        instance = CorrelationInstance.from_label_matrix(
            atoms.matrix, weights=atoms.weights
        )
        serial = portfolio(instance, rng=3, n_jobs=1)
        fanned = portfolio(instance, rng=3, n_jobs=2)
        assert fanned.cost == serial.cost
        np.testing.assert_array_equal(fanned.best.labels, serial.best.labels)
        assert [run.cost for run in fanned.runs] == [run.cost for run in serial.runs]

    def test_repeated_stochastic_entries_are_independent_restarts(self):
        matrix = generate_votes(n=80, rng=2).label_matrix()
        methods = ("local-search", "local-search", "local-search")
        serial = portfolio(matrix, methods=methods, rng=11, n_jobs=1)
        fanned = portfolio(matrix, methods=methods, rng=11, n_jobs=2)
        assert [run.cost for run in fanned.runs] == [run.cost for run in serial.runs]
        np.testing.assert_array_equal(fanned.best.labels, serial.best.labels)

    def test_finds_figure1_optimum(self, figure1_clusterings, figure1_optimum):
        result = portfolio(figure1_clusterings, rng=0)
        assert result.best == figure1_optimum
        assert result.cost == pytest.approx(5.0 / 3.0)
        assert result.best_method in DEFAULT_PORTFOLIO
        assert "winner" in result.summary()
        report = result.to_dict()
        assert report["best_method"] == result.best_method
        assert len(report["runs"]) == len(DEFAULT_PORTFOLIO)

    def test_per_method_params_forwarded(self, figure1_clusterings):
        result = portfolio(
            figure1_clusterings,
            methods=("balls",),
            params={"balls": {"alpha": 0.4}},
            rng=0,
        )
        assert result.runs[0].method == "balls"

    def test_rejects_bad_configuration(self, figure1_clusterings):
        with pytest.raises(ValueError, match="at least one"):
            portfolio(figure1_clusterings, methods=())
        with pytest.raises(ValueError, match="unknown inner"):
            portfolio(figure1_clusterings, methods=("sampling",))
        with pytest.raises(ValueError, match="not in the portfolio"):
            portfolio(
                figure1_clusterings, methods=("balls",), params={"furthest": {}}
            )

    def test_aggregate_method_registered(self):
        matrix = generate_votes(n=100, rng=0).label_matrix()
        serial = aggregate(matrix, method="portfolio", rng=5, n_jobs=1)
        fanned = aggregate(matrix, method="portfolio", rng=5, n_jobs=2)
        assert serial.clustering == fanned.clustering
        record = serial.params["portfolio"]
        assert record["best_method"] in DEFAULT_PORTFOLIO
        assert len(record["runs"]) == len(DEFAULT_PORTFOLIO)
        assert serial.cost == pytest.approx(record["cost"])


class TestSamplingNJobs:
    def test_sampling_bit_identical_across_jobs(self):
        from repro.algorithms.agglomerative import agglomerative
        from repro.algorithms.sampling import sampling

        matrix = generate_votes(n=300, rng=0).label_matrix()
        serial = sampling(matrix, agglomerative, sample_size=60, rng=9, n_jobs=1)
        fanned = sampling(matrix, agglomerative, sample_size=60, rng=9, n_jobs=2)
        assert serial == fanned


class TestCliPortfolio:
    @pytest.fixture
    def votes_csv(self, tmp_path):
        path = tmp_path / "votes.csv"
        generate_votes(n=100, rng=0).to_csv(path)
        return str(path)

    def test_table_output(self, votes_csv, capsys):
        assert main(["portfolio", votes_csv, "--seed", "3", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        for method in DEFAULT_PORTFOLIO:
            assert method in out
        assert "*" in out  # winner marker

    def test_json_output_matches_serial(self, votes_csv, capsys, tmp_path):
        out_path = tmp_path / "labels.txt"
        assert (
            main(
                [
                    "portfolio",
                    votes_csv,
                    "--seed",
                    "3",
                    "--jobs",
                    "2",
                    "--json",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["jobs"] == 2
        assert {run["method"] for run in report["runs"]} == set(DEFAULT_PORTFOLIO)

        labels = np.loadtxt(out_path, dtype=np.int64)
        dataset_matrix = generate_votes(n=100, rng=0).label_matrix()
        serial = portfolio(dataset_matrix, rng=3, n_jobs=1)
        assert report["best_method"] == serial.best_method
        assert report["cost"] == pytest.approx(serial.cost)
        np.testing.assert_array_equal(labels, serial.best.labels)
