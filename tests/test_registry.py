"""Tests for :mod:`repro.registry` — the unified method registry.

The registry is the single source of truth for method dispatch: these
tests pin the registered name sets (so a registration can never silently
drop out of ``available_methods()`` / the CLI / the serve schema), the
derived parameter schemas, the validation error messages, and the
resolution helpers the other layers build on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import STOCHASTIC_METHODS, aggregate, available_methods
from repro.registry import (
    REQUIRED,
    MethodSpec,
    all_specs,
    clusterer_names,
    get_method,
    is_stochastic,
    method_names,
    resolve_instance_method,
    stochastic_method_names,
    validate_params,
)

FIG1 = np.array(
    [
        [0, 0, 0],
        [0, 1, 1],
        [1, 0, 0],
        [1, 1, 1],
        [2, 2, 2],
        [2, 3, 2],
    ],
    dtype=np.int64,
)


# ---------------------------------------------------------------------------
# Registered name sets
# ---------------------------------------------------------------------------


def test_aggregate_role_holds_all_paper_methods() -> None:
    assert method_names("aggregate") == (
        "agglomerative",
        "annealing",
        "balls",
        "best",
        "cmsy",
        "exact",
        "furthest",
        "genetic",
        "local-search",
        "pivot",
        "portfolio",
        "sampling",
        "sharded",
        "streaming",
    )


def test_baseline_role_holds_consensus_references() -> None:
    assert method_names("baseline") == ("cspa", "evidence", "mcla", "mixture")


def test_clusterer_role_holds_base_clusterers() -> None:
    assert clusterer_names() == ("dbscan", "kmeans", "limbo", "linkage", "rock")


def test_available_methods_is_registry_derived() -> None:
    assert available_methods() == method_names("aggregate")


def test_stochastic_methods_matches_registry() -> None:
    assert STOCHASTIC_METHODS == stochastic_method_names()
    assert set(STOCHASTIC_METHODS) == {
        name for name in method_names("aggregate") if is_stochastic(name)
    }


def test_roles_are_disjoint_namespaces() -> None:
    # "kmeans" is a clusterer, not an aggregation method.
    with pytest.raises(ValueError, match="unknown method 'kmeans'"):
        get_method("kmeans")
    spec = get_method("kmeans", role="clusterer")
    assert spec.role == "clusterer"
    assert spec.kind == "points"


# ---------------------------------------------------------------------------
# Spec capabilities and schemas
# ---------------------------------------------------------------------------


def test_specs_carry_capability_flags() -> None:
    assert get_method("balls").supports_weights
    assert get_method("balls").kind == "instance"
    assert get_method("pivot").kind == "label-fast"
    assert not get_method("best").supports_collapse
    assert get_method("portfolio").needs_instance
    assert get_method("sampling").stochastic


def test_param_schema_derived_from_signature() -> None:
    spec = get_method("balls")
    names = [param.name for param in spec.params]
    assert "alpha" in names
    alpha = next(param for param in spec.params if param.name == "alpha")
    assert not alpha.required
    assert alpha.default == pytest.approx(0.25)


def test_required_params_detected() -> None:
    spec = get_method("kmeans", role="clusterer")
    k = next(param for param in spec.params if param.name == "k")
    assert k.required
    assert k.default is REQUIRED
    with pytest.raises(ValueError, match="requires parameter"):
        spec.require_params({})


def test_describe_renders_params() -> None:
    text = get_method("balls").describe()
    assert "balls" in text
    assert "--alpha" in text


def test_all_specs_sorted_and_typed() -> None:
    specs = all_specs(role="aggregate")
    assert [spec.name for spec in specs] == sorted(spec.name for spec in specs)
    assert all(isinstance(spec, MethodSpec) for spec in specs)


# ---------------------------------------------------------------------------
# Parameter validation (satellite: unknown kwargs raise with accepted list)
# ---------------------------------------------------------------------------


def test_unknown_param_rejected_with_accepted_list() -> None:
    with pytest.raises(ValueError) as excinfo:
        aggregate(FIG1, method="balls", bogus=1)
    message = str(excinfo.value)
    assert "unknown parameter(s) 'bogus' for method 'balls'" in message
    assert "alpha" in message


def test_unknown_param_checked_before_any_work() -> None:
    # Even expensive methods fail fast on a typo'd parameter name.
    with pytest.raises(ValueError, match="unknown parameter"):
        aggregate(FIG1, method="local-search", iterations=3)


def test_validate_params_helper() -> None:
    validate_params("balls", {"alpha": 0.4})
    with pytest.raises(ValueError, match="unknown parameter"):
        validate_params("balls", {"radius_": 1})


def test_extra_params_allowed_for_open_signatures() -> None:
    # sharded forwards **params to the inner method, so extras must pass.
    assert get_method("sharded").accepts_extra


def test_known_params_still_accepted() -> None:
    result = aggregate(FIG1, method="balls", alpha=0.4)
    assert result.params == {"alpha": 0.4}


# ---------------------------------------------------------------------------
# Resolution helpers
# ---------------------------------------------------------------------------


def test_resolve_instance_method_names_and_callables() -> None:
    func = resolve_instance_method("agglomerative")
    assert callable(func)
    marker = lambda instance: None  # noqa: E731
    assert resolve_instance_method(marker) is marker
    with pytest.raises(ValueError, match="unknown inner algorithm"):
        resolve_instance_method("nope")


def test_unknown_method_error_lists_choices() -> None:
    with pytest.raises(ValueError) as excinfo:
        get_method("nope")
    assert "unknown method 'nope'" in str(excinfo.value)
    assert "agglomerative" in str(excinfo.value)


def test_unknown_clusterer_error_is_role_specific() -> None:
    with pytest.raises(ValueError, match="unknown base clusterer"):
        get_method("nope", role="clusterer")


# ---------------------------------------------------------------------------
# Registration is non-invasive
# ---------------------------------------------------------------------------


def test_decorated_functions_unchanged() -> None:
    # register_method returns the function object untouched, so direct
    # calls (the pre-registry API) behave identically.
    from repro.algorithms import balls
    from repro.core import CorrelationInstance

    instance = CorrelationInstance.from_label_matrix(FIG1)
    direct = balls(instance)
    via_registry = get_method("balls").func(instance)
    assert np.array_equal(direct.labels, via_registry.labels)


def test_clusterer_specs_return_label_arrays() -> None:
    rng = np.random.default_rng(0)
    points = rng.random((30, 2))
    labels = get_method("kmeans", role="clusterer").func(points, k=3, rng=1)
    assert labels.shape == (30,)
    assert set(np.unique(labels)) <= {0, 1, 2}
