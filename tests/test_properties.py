"""Cross-cutting property tests (hypothesis) over the whole pipeline.

These tie the library's pieces together: random aggregation problems are
generated wholesale and every algorithm's output is checked against the
framework's invariants — the identities the paper's §3 establishes, the
guarantees §4 proves, and basic sanity that unit tests of single modules
cannot see.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Clustering, aggregate, clustering_distance
from repro.core import CorrelationInstance, total_disagreement
from repro.core.labels import as_label_matrix
from repro.algorithms import exact_optimum

from strategies import grid_matrix as build

# A compact strategy for full aggregation problems.
problems = st.tuples(
    st.integers(3, 14),  # n
    st.integers(1, 5),  # m
    st.integers(1, 4),  # max labels per clustering
    st.integers(0, 10_000),  # seed
)


METHODS = ("best", "balls", "agglomerative", "furthest", "local-search")


class TestFrameworkIdentities:
    @settings(max_examples=25, deadline=None)
    @given(problems)
    def test_disagreements_equal_m_times_cost(self, problem):
        """Problem 1 and Problem 2 coincide: D(C) = m * d(C)."""
        n, m, k, seed = problem
        matrix = build(n, m, k, seed)
        instance = CorrelationInstance.from_label_matrix(matrix)
        rng = np.random.default_rng(seed + 1)
        candidate = Clustering(rng.integers(0, 3, size=n))
        assert instance.m * instance.cost(candidate) == pytest.approx(
            total_disagreement(matrix, candidate)
        )

    @settings(max_examples=25, deadline=None)
    @given(problems)
    def test_aggregation_instances_are_metric(self, problem):
        """The X values of §3 obey the triangle inequality."""
        n, m, k, seed = problem
        instance = CorrelationInstance.from_label_matrix(build(n, m, k, seed))
        assert instance.max_triangle_violation() <= 1e-9

    @settings(max_examples=25, deadline=None)
    @given(problems)
    def test_metric_holds_with_missing_values(self, problem):
        n, m, k, seed = problem
        matrix = build(n, m, k, seed, missing_rate=0.25)
        instance = CorrelationInstance.from_label_matrix(matrix, p=0.5)
        assert instance.max_triangle_violation() <= 1e-9

    @settings(max_examples=15, deadline=None)
    @given(problems)
    def test_lower_bound_below_optimum(self, problem):
        n, m, k, seed = problem
        instance = CorrelationInstance.from_label_matrix(build(n, m, k, seed))
        _, optimum = exact_optimum(instance)
        assert instance.lower_bound() <= optimum + 1e-9


class TestAlgorithmInvariants:
    @settings(max_examples=10, deadline=None)
    @given(problems)
    def test_every_method_returns_valid_partition(self, problem):
        n, m, k, seed = problem
        matrix = build(n, m, k, seed)
        for method in METHODS:
            result = aggregate(matrix, method=method, compute_lower_bound=False)
            labels = result.clustering.labels
            assert labels.shape == (n,)
            assert labels.min() >= 0
            assert result.disagreements >= 0

    @settings(max_examples=10, deadline=None)
    @given(problems)
    def test_no_method_beats_exact(self, problem):
        n, m, k, seed = problem
        matrix = build(n, m, k, seed)
        instance = CorrelationInstance.from_label_matrix(matrix)
        _, optimum = exact_optimum(instance)
        for method in METHODS:
            result = aggregate(matrix, method=method, compute_lower_bound=False)
            assert result.cost >= optimum - 1e-9, method

    @settings(max_examples=10, deadline=None)
    @given(problems)
    def test_local_search_never_above_agglomerative(self, problem):
        """Post-processing AGGLOMERATIVE with LOCALSEARCH never hurts, so
        LOCALSEARCH seeded that way is at most the agglomerative cost —
        here we check the weaker published claim on the default seed."""
        n, m, k, seed = problem
        matrix = build(n, m, k, seed)
        instance = CorrelationInstance.from_label_matrix(matrix)
        from repro.algorithms import agglomerative, local_search

        first = agglomerative(instance)
        polished = local_search(instance, initial=first)
        assert instance.cost(polished) <= instance.cost(first) + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(problems)
    def test_unanimous_inputs_are_returned(self, problem):
        """If all m clusterings agree, every method returns that clustering
        (its objective value is 0, which is trivially optimal)."""
        n, m, k, seed = problem
        rng = np.random.default_rng(seed)
        base = Clustering(rng.integers(0, k, size=n))
        matrix = as_label_matrix([base] * max(m, 2))
        for method in METHODS:
            result = aggregate(matrix, method=method, compute_lower_bound=False)
            assert result.clustering == base, method
            assert result.disagreements == pytest.approx(0.0)

    @settings(max_examples=10, deadline=None)
    @given(problems, st.integers(0, 3))
    def test_relabeling_inputs_does_not_change_result(self, problem, perm_seed):
        """Cluster label *names* carry no information; permuting them must
        leave every (deterministic) algorithm's output unchanged."""
        n, m, k, seed = problem
        matrix = build(n, m, k, seed)
        rng = np.random.default_rng(perm_seed)
        permuted = matrix.copy()
        for j in range(m):
            top = permuted[:, j].max() + 1
            mapping = rng.permutation(top)
            permuted[:, j] = mapping[permuted[:, j]]
        for method in ("agglomerative", "furthest", "local-search", "balls"):
            a = aggregate(matrix, method=method, compute_lower_bound=False)
            b = aggregate(permuted, method=method, compute_lower_bound=False)
            assert a.clustering == b.clustering, method

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_object_order_equivariance_tie_free(self, seed):
        """Permuting the objects permutes the consensus accordingly.

        Aggregation instances carry exact ties (distances are multiples of
        1/m) under which index-based tie-breaking is order-dependent, so
        the property is tested on generic float instances where ties have
        measure zero.
        """
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 16))
        X = rng.uniform(0.05, 0.95, size=(n, n))
        X = (X + X.T) / 2.0
        np.fill_diagonal(X, 0.0)
        order = rng.permutation(n)
        permuted_X = X[np.ix_(order, order)]
        from repro.algorithms import agglomerative

        # Only AGGLOMERATIVE is genuinely order-independent (its merges are
        # global minima); LOCALSEARCH sweeps nodes in index order, so its
        # local optimum legitimately depends on the presentation order.
        original = agglomerative(CorrelationInstance.from_distances(X))
        permuted = agglomerative(CorrelationInstance.from_distances(permuted_X))
        assert Clustering(original.labels[order]) == permuted


class TestMetamorphicRelations:
    """Metamorphic transforms of the *input* with predictable output effects.

    Complementing the differential sweep (tests/test_differential_oracle.py),
    these need no oracle: each transform has a provable relation between
    the original and transformed runs, checked exactly.
    """

    @settings(max_examples=10, deadline=None)
    @given(problems, st.integers(0, 3))
    def test_relabeling_invariance_covers_stochastic_methods(self, problem, perm_seed):
        """Input-label renames leave X bit-identical, so even the seeded
        stochastic methods (same rng) must return the same clustering."""
        n, m, k, seed = problem
        matrix = build(n, m, k, seed)
        rng = np.random.default_rng(perm_seed)
        permuted = matrix.copy()
        for j in range(m):
            top = permuted[:, j].max() + 1
            mapping = rng.permutation(top)
            permuted[:, j] = mapping[permuted[:, j]]
        instance_a = CorrelationInstance.from_label_matrix(matrix)
        instance_b = CorrelationInstance.from_label_matrix(permuted)
        assert np.array_equal(instance_a.X, instance_b.X)
        # pivot/cmsy run label-matrix-direct (no instance): the renamed
        # labels must produce bitwise-identical pair rows there too.
        for method in ("local-search", "sampling", "pivot", "cmsy"):
            a = aggregate(matrix, method=method, rng=7, compute_lower_bound=False)
            b = aggregate(permuted, method=method, rng=7, compute_lower_bound=False)
            assert a.clustering == b.clustering, method

    @settings(max_examples=10, deadline=None)
    @given(problems)
    def test_duplicating_the_input_clusterings_is_invariant(self, problem):
        """Concatenating the input set with itself leaves every pairwise
        disagreement *fraction* unchanged, so the consensus is identical
        and D(C) exactly doubles."""
        n, m, k, seed = problem
        matrix = build(n, m, k, seed)
        doubled = np.concatenate([matrix, matrix], axis=1)
        instance = CorrelationInstance.from_label_matrix(matrix)
        instance_doubled = CorrelationInstance.from_label_matrix(doubled)
        assert np.array_equal(instance.X, instance_doubled.X)
        for method in ("balls", "agglomerative", "furthest", "local-search"):
            a = aggregate(matrix, method=method, compute_lower_bound=False)
            b = aggregate(doubled, method=method, compute_lower_bound=False)
            assert a.clustering == b.clustering, method
            assert b.disagreements == pytest.approx(2.0 * a.disagreements), method
        # The stochastic label-path methods see the same disagreement
        # *fractions* bitwise (2c / 2m rounds exactly like c / m), so a
        # fixed seed must survive the duplication too.
        for method in ("pivot", "cmsy"):
            a = aggregate(matrix, method=method, rng=7, compute_lower_bound=False)
            b = aggregate(doubled, method=method, rng=7, compute_lower_bound=False)
            assert a.clustering == b.clustering, method
            assert b.disagreements == pytest.approx(2.0 * a.disagreements), method

    @settings(max_examples=15, deadline=None)
    @given(problems)
    def test_atom_compression_preserves_weighted_cost(self, problem):
        """Collapsing duplicate rows into weighted atoms preserves the
        objective: the weighted cost of any atom clustering equals the
        expanded clustering's total disagreement over the full matrix."""
        from repro.core.atoms import collapse_duplicates

        n, m, k, seed = problem
        # Force duplicates: few labels over few columns on a stretched n.
        matrix = build(2 * n, min(m, 2), min(k, 2), seed)
        atoms = collapse_duplicates(matrix)
        weighted = CorrelationInstance.from_label_matrix(
            atoms.matrix, weights=atoms.weights
        )
        rng = np.random.default_rng(seed + 5)
        atom_clustering = Clustering(rng.integers(0, 3, size=atoms.n_atoms))
        expanded = atoms.expand(atom_clustering)
        assert weighted.m * weighted.cost(atom_clustering) == pytest.approx(
            total_disagreement(matrix, expanded)
        )

    @settings(max_examples=10, deadline=None)
    @given(problems)
    def test_atom_compression_cost_monotonicity(self, problem):
        """Solving on the collapsed instance never beats the exact optimum
        of the expanded problem, and collapse=True reports costs in the
        expanded objective's units."""
        n, m, k, seed = problem
        matrix = build(min(2 * n, 14), min(m, 2), min(k, 2), seed)
        instance = CorrelationInstance.from_label_matrix(matrix)
        _, optimum = exact_optimum(instance)
        collapsed = aggregate(
            matrix, method="agglomerative", collapse=True, compute_lower_bound=False
        )
        plain = aggregate(matrix, method="agglomerative", compute_lower_bound=False)
        assert collapsed.clustering.n == matrix.shape[0]
        assert collapsed.cost >= optimum - 1e-9
        assert collapsed.cost <= plain.cost + 1e-9


class TestMirkinMetricAxioms:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_identity_symmetry_triangle(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 20))
        a, b, c = (Clustering(rng.integers(0, 5, size=n)) for _ in range(3))
        assert clustering_distance(a, a) == 0
        assert clustering_distance(a, b) == clustering_distance(b, a)
        assert clustering_distance(a, c) <= clustering_distance(a, b) + clustering_distance(b, c)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_refinement_monotonicity(self, seed):
        """Merging two clusters of C changes d(C, .) by at most the number
        of pairs the merge joins — a Lipschitz property of the metric."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 20))
        base = Clustering(rng.integers(0, 4, size=n))
        other = Clustering(rng.integers(0, 4, size=n))
        if base.k < 2:
            return
        merged = base.merge_clusters(0, 1)
        joined_pairs = int(base.sizes()[0]) * int(base.sizes()[1])
        assert abs(
            clustering_distance(merged, other) - clustering_distance(base, other)
        ) <= joined_pairs
