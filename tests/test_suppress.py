"""Suppression parsing edge cases, covering both linters.

Regression suite for the tokenize-based directive extraction in
:mod:`repro.analysis.suppress`: directives in string literals must NOT
suppress (the old raw-line regex scan did), directives on any line of a
multi-line statement must cover the whole statement, compound-statement
directives must cover only the header, ``disable-file`` must work from
anywhere in the file, and unknown rule codes must error (RPR000) instead
of silently doing nothing.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis.flow import analyze_sources
from repro.analysis.lint import lint_source
from repro.analysis.suppress import KNOWN_CODES, extract_suppressions

CORE = "src/repro/core/snippet.py"


def lint_codes(source: str, path: str = CORE) -> list[str]:
    return [finding.rule for finding in lint_source(textwrap.dedent(source), path=path)]


def flow_codes(source: str, path: str = CORE) -> list[str]:
    return [f.rule for f in analyze_sources({path: textwrap.dedent(source)})]


# ---------------------------------------------------------------------------
# extract_suppressions primitives
# ---------------------------------------------------------------------------


def test_known_codes_span_both_tools() -> None:
    assert "RPR001" in KNOWN_CODES  # repolint
    assert "RPR013" in KNOWN_CODES  # flow
    assert "RPR014" in KNOWN_CODES  # repolint (method-dispatch tables)
    assert "RPR015" not in KNOWN_CODES


def test_directive_in_string_literal_is_ignored() -> None:
    source = 'text = "# repolint: disable=RPR001"\n'
    suppressions = extract_suppressions(source, ast.parse(source))
    assert suppressions.active(1) == frozenset()
    assert suppressions.errors == ()


def test_multi_line_statement_extent_expansion() -> None:
    source = (
        "value = compute(\n"
        "    1,\n"
        "    2,\n"
        ")  # repolint: disable=RPR003\n"
    )
    suppressions = extract_suppressions(source, ast.parse(source))
    # The directive on the closing paren covers the statement's first line.
    assert "RPR003" in suppressions.active(1)
    assert "RPR003" in suppressions.active(4)
    assert suppressions.active(5) == frozenset()


def test_compound_statement_covers_header_not_body() -> None:
    source = (
        "@decorator\n"
        "def f(\n"
        "    x,\n"
        "):  # repolint: disable=RPR004\n"
        "    body_line()\n"
    )
    suppressions = extract_suppressions(source, ast.parse(source))
    assert "RPR004" in suppressions.active(1)  # decorator line
    assert "RPR004" in suppressions.active(2)  # def line
    assert suppressions.active(5) == frozenset()  # body NOT blanket-covered


def test_without_tree_directives_cover_own_line_only() -> None:
    source = "value = compute(\n    1,\n)  # repolint: disable=RPR003\n"
    suppressions = extract_suppressions(source)
    assert suppressions.active(1) == frozenset()
    assert "RPR003" in suppressions.active(3)


def test_unknown_and_empty_codes_are_errors() -> None:
    source = (
        "x = 1  # repolint: disable=RPR999\n"
        "y = 2  # repolint: disable=\n"
        "z = 3  # repolint: disable=RPR001,RPR998\n"
    )
    suppressions = extract_suppressions(source, ast.parse(source))
    assert (1, "RPR999") in suppressions.errors
    assert (2, "<empty>") in suppressions.errors
    assert (3, "RPR998") in suppressions.errors
    assert "RPR001" in suppressions.active(3)  # the valid code still applies


def test_disable_file_collects_from_anywhere() -> None:
    source = "x = 1\ny = 2\n# repolint: disable-file=RPR001\n"
    suppressions = extract_suppressions(source, ast.parse(source))
    assert "RPR001" in suppressions.active(1)
    assert "RPR001" in suppressions.active(99)


# ---------------------------------------------------------------------------
# repolint integration
# ---------------------------------------------------------------------------


def test_lint_string_literal_directive_does_not_suppress() -> None:
    # The directive lives in a string ON THE SAME LINE as a real finding;
    # the old raw-line regex scan suppressed it.
    source = 'import random\nrandom.seed(1); s = "# repolint: disable=RPR001"\n'
    assert lint_codes(source) == ["RPR001"]


def test_lint_multi_line_statement_suppression() -> None:
    violation = (
        "import numpy as np\n"
        "x = np.zeros(\n"
        "    (4, 4),\n"
        ")\n"
    )
    assert lint_codes(violation) == ["RPR003"]
    suppressed = violation.replace(")\n", ")  # repolint: disable=RPR003\n")
    assert lint_codes(suppressed) == []


def test_lint_decorated_def_header_suppression() -> None:
    source = (
        "def wrap(f):\n"
        "    return f\n"
        "@wrap\n"
        "def f(labels=[]):  # repolint: disable=RPR004\n"
        "    return labels\n"
    )
    assert lint_codes(source) == []


def test_lint_disable_file_after_code_still_applies() -> None:
    source = (
        "import random\n"
        "random.seed(1)\n"
        "# repolint: disable-file=RPR001\n"
    )
    assert lint_codes(source) == []


def test_lint_unknown_code_errors_rpr000() -> None:
    findings = lint_source("x = 1  # repolint: disable=RPR777\n", path=CORE)
    assert [f.rule for f in findings] == ["RPR000"]
    assert "RPR777" in findings[0].message


def test_lint_accepts_flow_rule_codes() -> None:
    # A flow-rule suppression must not be an unknown-code error under
    # repolint (and vice versa): the registry is shared.
    assert lint_codes("x = 1  # repolint: disable=RPR013\n") == []


# ---------------------------------------------------------------------------
# flow-analyzer integration
# ---------------------------------------------------------------------------

_GRID_VIOLATION = (
    "def total(backend, n):\n"
    "    for start in range(0, n, 4096):{comment}\n"
    "        backend.row_block(start, start + 4096)\n"
)


def test_flow_suppression_on_loop_header() -> None:
    assert flow_codes(_GRID_VIOLATION.format(comment="")) == ["RPR013"]
    assert (
        flow_codes(_GRID_VIOLATION.format(comment="  # repolint: disable=RPR013")) == []
    )


def test_flow_string_literal_directive_does_not_suppress() -> None:
    source = (
        'NOTE = "# repolint: disable-file=RPR013"\n'
        + _GRID_VIOLATION.format(comment="")
    )
    assert flow_codes(source) == ["RPR013"]


def test_flow_unknown_code_errors_rpr000() -> None:
    assert flow_codes("x = 1  # repolint: disable=RPR888\n") == ["RPR000"]


def test_flow_accepts_lint_rule_codes() -> None:
    assert flow_codes("x = 1  # repolint: disable=RPR001\n") == []


@pytest.mark.parametrize("code", sorted(KNOWN_CODES))
def test_every_known_code_parses_in_both_tools(code: str) -> None:
    source = f"x = 1  # repolint: disable={code}\n"
    assert lint_codes(source) == []
    assert flow_codes(source) == []
