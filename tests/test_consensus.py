"""Tests for the §6 related-work consensus methods (repro.consensus)."""

import numpy as np
import pytest

from repro import Clustering
from repro.core.instance import disagreement_fractions
from repro.core.labels import MISSING, as_label_matrix
from repro.consensus import (
    coassociation_matrix,
    cspa,
    evidence_accumulation,
    genetic_consensus,
    mcla,
    mixture_consensus,
    mixture_consensus_bic,
)
from repro.core.instance import CorrelationInstance

from conftest import planted_instance


class TestCoassociation:
    def test_complement_of_disagreement(self):
        _, matrix = planted_instance(n=30, m=4, groups=3, flip=0.2, seed=0)
        agreement = coassociation_matrix(matrix)
        disagreement = disagreement_fractions(matrix)
        off_diagonal = ~np.eye(30, dtype=bool)
        assert np.allclose(agreement[off_diagonal], 1.0 - disagreement[off_diagonal])

    def test_unit_diagonal(self):
        _, matrix = planted_instance(n=10, m=3, groups=2, flip=0.1, seed=1)
        assert np.allclose(np.diagonal(coassociation_matrix(matrix)), 1.0)

    def test_missing_contributes_p(self):
        matrix = np.array([[0, MISSING], [0, 0]], dtype=np.int32)
        agreement = coassociation_matrix(matrix, p=0.3)
        # Attribute 0 agrees (1.0); attribute 1 contributes p = 0.3.
        assert agreement[0, 1] == pytest.approx((1.0 + 0.3) / 2)


class TestEvidenceAccumulation:
    def test_recovers_planted_with_k(self):
        truth, matrix = planted_instance(n=90, m=8, groups=3, flip=0.1, seed=2)
        assert evidence_accumulation(matrix, k=3) == Clustering(truth)

    def test_lifetime_rule_finds_k(self):
        truth, matrix = planted_instance(n=90, m=8, groups=4, flip=0.1, seed=3)
        result = evidence_accumulation(matrix)
        assert result == Clustering(truth)

    def test_threshold_cut(self):
        truth, matrix = planted_instance(n=60, m=6, groups=3, flip=0.05, seed=4)
        result = evidence_accumulation(matrix, threshold=0.5)
        assert result == Clustering(truth)

    def test_threshold_one_gives_fine_clusters(self):
        _, matrix = planted_instance(n=40, m=5, groups=3, flip=0.3, seed=5)
        strict = evidence_accumulation(matrix, threshold=1.0)
        loose = evidence_accumulation(matrix, threshold=0.0)
        assert strict.k >= loose.k

    def test_k_and_threshold_exclusive(self):
        _, matrix = planted_instance(n=20, m=3, groups=2, flip=0.1, seed=6)
        with pytest.raises(ValueError):
            evidence_accumulation(matrix, k=2, threshold=0.5)

    def test_average_variant(self):
        truth, matrix = planted_instance(n=60, m=6, groups=3, flip=0.1, seed=7)
        assert evidence_accumulation(matrix, k=3, method="average") == Clustering(truth)

    def test_invalid_threshold(self):
        _, matrix = planted_instance(n=20, m=3, groups=2, flip=0.1, seed=8)
        with pytest.raises(ValueError):
            evidence_accumulation(matrix, threshold=1.5)


class TestHypergraph:
    def test_cspa_recovers_planted(self):
        truth, matrix = planted_instance(n=80, m=7, groups=4, flip=0.1, seed=9)
        assert cspa(matrix, k=4) == Clustering(truth)

    def test_cspa_merges_far_nodes_when_k_too_small(self):
        """The paper's §6 critique: cutting at k merges dissimilar nodes."""
        truth, matrix = planted_instance(n=60, m=8, groups=4, flip=0.05, seed=10)
        forced = cspa(matrix, k=2)
        assert forced.k == 2  # it obliges — no penalty for the merge

    def test_mcla_recovers_planted(self):
        truth, matrix = planted_instance(n=80, m=7, groups=4, flip=0.1, seed=11)
        assert mcla(matrix, k=4) == Clustering(truth)

    def test_mcla_needs_enough_hyperedges(self):
        matrix = as_label_matrix([[0, 0, 1, 1]])  # 2 hyperedges only
        with pytest.raises(ValueError):
            mcla(matrix, k=3)

    def test_invalid_k(self):
        _, matrix = planted_instance(n=20, m=3, groups=2, flip=0.1, seed=12)
        with pytest.raises(ValueError):
            cspa(matrix, k=0)
        with pytest.raises(ValueError):
            mcla(matrix, k=0)


class TestMixture:
    def test_recovers_planted(self):
        truth, matrix = planted_instance(n=100, m=8, groups=4, flip=0.1, seed=13)
        result = mixture_consensus(matrix, k=4, rng=0)
        assert result.clustering == Clustering(truth)
        assert result.converged

    def test_log_likelihood_increases_with_k_on_train(self):
        _, matrix = planted_instance(n=60, m=5, groups=3, flip=0.2, seed=14)
        ll2 = mixture_consensus(matrix, k=2, rng=0).log_likelihood
        ll6 = mixture_consensus(matrix, k=6, rng=0).log_likelihood
        assert ll6 >= ll2 - 1e-6  # more components never fit worse (train LL)

    def test_bic_selects_planted_k(self):
        _, matrix = planted_instance(n=150, m=8, groups=4, flip=0.1, seed=15)
        best, scores = mixture_consensus_bic(matrix, range(2, 8), rng=0)
        assert best.clustering.k == 4
        assert min(scores, key=scores.get) == 4

    def test_handles_missing(self):
        truth, matrix = planted_instance(n=80, m=6, groups=3, flip=0.1, seed=16)
        matrix = matrix.copy()
        rng = np.random.default_rng(0)
        matrix[rng.random(matrix.shape) < 0.15] = MISSING
        matrix[0] = 0
        result = mixture_consensus(matrix, k=3, rng=0)
        # Allow a few mistakes under missingness.
        from repro.metrics import classification_error

        assert classification_error(result.clustering, truth) < 0.1

    def test_parameter_count(self):
        _, matrix = planted_instance(n=30, m=4, groups=3, flip=0.1, seed=17)
        result = mixture_consensus(matrix, k=2, rng=0)
        arities = [int(matrix[:, j].max()) + 1 for j in range(matrix.shape[1])]
        expected = 1 + 2 * sum(a - 1 for a in arities)
        assert result.n_parameters == expected

    def test_invalid_k(self):
        _, matrix = planted_instance(n=20, m=3, groups=2, flip=0.1, seed=18)
        with pytest.raises(ValueError):
            mixture_consensus(matrix, k=0)


class TestGenetic:
    def test_recovers_easy_planted(self):
        truth, matrix = planted_instance(n=24, m=8, groups=3, flip=0.05, seed=20)
        instance = CorrelationInstance.from_label_matrix(matrix)
        result = genetic_consensus(instance, generations=200, rng=0)
        assert result == Clustering(truth)

    def test_converges_slowly_on_larger_instances(self):
        """The GA's characteristic weakness — the reason the paper's direct
        combinatorial algorithms won this line of work: at a budget where
        AGGLOMERATIVE is exact-ish, the GA is still far away."""
        from repro.algorithms import agglomerative

        truth, matrix = planted_instance(n=40, m=8, groups=3, flip=0.05, seed=20)
        instance = CorrelationInstance.from_label_matrix(matrix)
        ga = genetic_consensus(instance, generations=80, rng=0)
        direct = agglomerative(instance)
        assert instance.cost(direct) <= instance.cost(ga)

    def test_seeded_never_worse_than_seed(self):
        truth, matrix = planted_instance(n=30, m=5, groups=3, flip=0.2, seed=21)
        instance = CorrelationInstance.from_label_matrix(matrix)
        seed = Clustering(np.random.default_rng(0).integers(0, 4, size=30))
        result = genetic_consensus(
            instance, generations=40, seeds=[seed], elite=2, rng=0
        )
        assert instance.cost(result) <= instance.cost(seed) + 1e-9

    def test_deterministic_under_seed(self):
        _, matrix = planted_instance(n=25, m=4, groups=3, flip=0.2, seed=22)
        instance = CorrelationInstance.from_label_matrix(matrix)
        a = genetic_consensus(instance, generations=30, rng=7)
        b = genetic_consensus(instance, generations=30, rng=7)
        assert a == b

    def test_parameter_validation(self):
        _, matrix = planted_instance(n=10, m=3, groups=2, flip=0.1, seed=23)
        instance = CorrelationInstance.from_label_matrix(matrix)
        with pytest.raises(ValueError):
            genetic_consensus(instance, population_size=1)
        with pytest.raises(ValueError):
            genetic_consensus(instance, elite=50)
        with pytest.raises(ValueError):
            genetic_consensus(instance, mutation_rate=2.0)
        with pytest.raises(ValueError):
            genetic_consensus(instance, seeds=[Clustering([0, 1])])
