"""Tests for the exact solver and BESTCLUSTERING."""

import numpy as np
import pytest

from repro import Clustering
from repro.core import CorrelationInstance, total_disagreement
from repro.core.labels import MISSING, as_label_matrix
from repro.algorithms import (
    best_clustering,
    column_as_candidate,
    enumerate_partitions,
    exact_optimum,
)

from conftest import random_aggregation_instance

BELL_NUMBERS = {1: 1, 2: 2, 3: 5, 4: 15, 5: 52, 6: 203, 7: 877}


class TestEnumeratePartitions:
    @pytest.mark.parametrize("n,count", sorted(BELL_NUMBERS.items()))
    def test_counts_are_bell_numbers(self, n, count):
        assert sum(1 for _ in enumerate_partitions(n)) == count

    def test_all_distinct(self):
        seen = {tuple(p) for p in enumerate_partitions(5)}
        assert len(seen) == BELL_NUMBERS[5]

    def test_restricted_growth_property(self):
        for partition in enumerate_partitions(6):
            assert partition[0] == 0
            running_max = 0
            for value in partition[1:]:
                assert value <= running_max + 1
                running_max = max(running_max, value)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            list(enumerate_partitions(0))


class TestExactOptimum:
    def test_figure1(self, figure1_instance):
        optimum, cost = exact_optimum(figure1_instance)
        assert optimum == Clustering([0, 1, 0, 1, 2, 2])
        assert cost == pytest.approx(5.0 / 3.0)

    def test_single_object(self):
        instance = CorrelationInstance.from_distances(np.zeros((1, 1)))
        optimum, cost = exact_optimum(instance)
        assert optimum.k == 1 and cost == 0.0

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_full_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 8))
        _, instance = random_aggregation_instance(n=n, m=3, k=3, seed=seed + 30)
        _, bb_cost = exact_optimum(instance)
        enumerated = min(
            instance.cost(Clustering(partition)) for partition in enumerate_partitions(n)
        )
        assert bb_cost == pytest.approx(enumerated)

    def test_without_heuristic_seed(self, figure1_instance):
        _, cost = exact_optimum(figure1_instance, seed_with_heuristics=False)
        assert cost == pytest.approx(5.0 / 3.0)

    def test_size_cap(self):
        instance = CorrelationInstance.from_distances(np.zeros((19, 19)))
        with pytest.raises(ValueError, match="at most 18"):
            exact_optimum(instance)

    def test_lower_bound_sandwich(self):
        for seed in range(5):
            _, instance = random_aggregation_instance(n=9, m=4, k=3, seed=seed)
            _, cost = exact_optimum(instance)
            assert instance.lower_bound() <= cost + 1e-9


class TestColumnAsCandidate:
    def test_total_column_unchanged(self):
        column = np.array([0, 1, 0, 2])
        assert column_as_candidate(column) == Clustering(column)

    def test_own_cluster_policy(self):
        column = np.array([0, MISSING, 1, MISSING])
        candidate = column_as_candidate(column, missing="own-cluster")
        assert candidate.k == 3
        assert candidate.same_cluster(1, 3)

    def test_singletons_policy(self):
        column = np.array([0, MISSING, 1, MISSING])
        candidate = column_as_candidate(column, missing="singletons")
        assert candidate.k == 4
        assert not candidate.same_cluster(1, 3)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            column_as_candidate(np.array([0, MISSING]), missing="drop")


class TestBestClustering:
    def test_figure1_picks_c3(self, figure1_clusterings, figure1_optimum):
        matrix = as_label_matrix(figure1_clusterings)
        assert best_clustering(matrix) == figure1_optimum  # C3 is optimal here

    def test_returns_an_input(self):
        rng = np.random.default_rng(0)
        columns = [rng.integers(0, 3, size=20) for _ in range(5)]
        matrix = as_label_matrix(columns)
        winner = best_clustering(matrix)
        assert any(winner == Clustering(c) for c in columns)

    def test_minimizes_among_inputs(self):
        rng = np.random.default_rng(1)
        columns = [rng.integers(0, 3, size=15) for _ in range(4)]
        matrix = as_label_matrix(columns)
        winner = best_clustering(matrix)
        winner_score = total_disagreement(matrix, winner)
        for column in columns:
            assert winner_score <= total_disagreement(matrix, Clustering(column)) + 1e-9

    def test_two_approximation_guarantee(self):
        """BESTCLUSTERING is within 2(1 - 1/m) of the optimum."""
        for seed in range(6):
            matrix, instance = random_aggregation_instance(n=8, m=4, k=3, seed=seed)
            _, optimal_cost = exact_optimum(instance)
            optimal_d = optimal_cost * matrix.shape[1]
            best_d = total_disagreement(matrix, best_clustering(matrix))
            m = matrix.shape[1]
            if optimal_d == 0:
                assert best_d == 0
            else:
                assert best_d <= 2 * (1 - 1 / m) * optimal_d + 1e-6

    def test_missing_column_gets_extra_cluster(self):
        matrix = np.array(
            [[0, 0], [0, 0], [1, MISSING], [1, 1]], dtype=np.int32
        )
        winner = best_clustering(matrix)
        assert winner.n == 4
