"""Tests for hierarchical linkage (repro.cluster.linkage), cross-checked against scipy."""

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch

from repro.core.labels import contingency_table
from repro.cluster import hierarchical, linkage

METHODS = ("single", "complete", "average", "ward")


def random_points(seed, n=40, d=2):
    return np.random.default_rng(seed).normal(size=(n, d))


def partitions_equal(a: np.ndarray, b: np.ndarray) -> bool:
    table = contingency_table(a, b)
    return int((table > 0).sum()) == max(table.shape) and table.shape[0] == table.shape[1]


class TestAgainstScipy:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_flat_cuts_match_scipy(self, method, seed):
        points = random_points(seed)
        Z = sch.linkage(points, method)
        ours = linkage(points, method=method)
        for k in (2, 3, 5, 8):
            theirs = sch.fcluster(Z, k, "maxclust") - 1
            assert partitions_equal(ours.cut(k), theirs), (method, k)

    @pytest.mark.parametrize("method", ("single", "complete", "average"))
    def test_heights_match_scipy(self, method):
        points = random_points(5)
        Z = sch.linkage(points, method)
        ours = linkage(points, method=method)
        assert np.allclose(np.sort(Z[:, 2]), ours.heights(), rtol=1e-9)

    def test_ward_heights_are_squared_scale(self):
        # Our Ward works in squared-Euclidean scale; scipy reports sqrt of
        # a related quantity — only the merge *structure* must agree.
        points = random_points(9)
        Z = sch.linkage(points, "ward")
        ours = linkage(points, method="ward")
        for k in (2, 4, 6):
            theirs = sch.fcluster(Z, k, "maxclust") - 1
            assert partitions_equal(ours.cut(k), theirs)


class TestApi:
    def test_cut_range_validation(self):
        result = linkage(random_points(0, n=10))
        with pytest.raises(ValueError):
            result.cut(0)
        with pytest.raises(ValueError):
            result.cut(11)

    def test_cut_extremes(self):
        result = linkage(random_points(1, n=12))
        assert len(np.unique(result.cut(1))) == 1
        assert len(np.unique(result.cut(12))) == 12

    def test_cut_height_zero_gives_singletons(self):
        result = linkage(random_points(2, n=9))
        assert len(np.unique(result.cut_height(-1.0))) == 9

    def test_cut_height_infinity_gives_one_cluster(self):
        result = linkage(random_points(3, n=9))
        assert len(np.unique(result.cut_height(np.inf))) == 1

    def test_distance_matrix_input(self):
        points = random_points(4, n=15)
        from repro.cluster import euclidean_matrix

        via_points = linkage(points, method="average")
        via_matrix = linkage(distances=euclidean_matrix(points), method="average")
        assert partitions_equal(via_points.cut(4), via_matrix.cut(4))

    def test_ward_requires_points(self):
        with pytest.raises(ValueError):
            linkage(distances=np.zeros((3, 3)), method="ward")

    def test_exactly_one_input(self):
        points = random_points(5, n=5)
        with pytest.raises(ValueError):
            linkage(points, distances=np.zeros((5, 5)))
        with pytest.raises(ValueError):
            linkage()

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            linkage(random_points(0, n=5), method="centroid")

    def test_single_point(self):
        result = linkage(np.zeros((1, 2)))
        assert result.merges.shape == (0, 3)
        assert result.cut(1).tolist() == [0]

    def test_hierarchical_convenience(self):
        points = random_points(6, n=20)
        labels = hierarchical(points, 4, "complete")
        assert len(np.unique(labels)) == 4

    def test_monotone_heights(self):
        # All four linkages are reducible, so dendrogram heights ascend.
        for method in METHODS:
            result = linkage(random_points(7, n=25), method=method)
            heights = result.heights()
            assert np.all(np.diff(heights) >= -1e-9), method
