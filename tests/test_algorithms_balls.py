"""Tests for the BALLS algorithm (repro.algorithms.balls)."""

import numpy as np
import pytest

from repro import Clustering
from repro.core import CorrelationInstance
from repro.algorithms import PRACTICAL_ALPHA, THEORY_ALPHA, balls, exact_optimum

from conftest import random_aggregation_instance


class TestBasics:
    def test_constants_match_paper(self):
        assert THEORY_ALPHA == 0.25  # Theorem 1
        assert PRACTICAL_ALPHA == 0.4  # "alpha = 2/5 leads to better solutions"

    def test_figure1_theory_alpha_fragments(self, figure1_instance):
        # The paper observes alpha = 1/4 "tends to be small as it creates
        # many singleton clusters" — on Figure 1 every ball has average
        # distance 1/3 > 1/4, so everything is a singleton.
        result = balls(figure1_instance, alpha=THEORY_ALPHA)
        assert result.k == 6

    def test_figure1_practical_alpha_recovers_optimum(self, figure1_instance):
        result = balls(figure1_instance, alpha=PRACTICAL_ALPHA)
        assert result == Clustering([0, 1, 0, 1, 2, 2])

    def test_invalid_alpha_rejected(self, figure1_instance):
        with pytest.raises(ValueError):
            balls(figure1_instance, alpha=1.5)

    def test_invalid_radius_rejected(self, figure1_instance):
        with pytest.raises(ValueError):
            balls(figure1_instance, radius=0.0)

    def test_all_identical_objects_form_one_cluster(self):
        matrix = np.zeros((8, 3), dtype=np.int32)
        instance = CorrelationInstance.from_label_matrix(matrix)
        assert balls(instance).k == 1

    def test_all_distinct_objects_stay_singletons(self):
        matrix = np.tile(np.arange(6, dtype=np.int32)[:, None], (1, 3))
        instance = CorrelationInstance.from_label_matrix(matrix)
        assert balls(instance).k == 6

    def test_partition_is_total(self):
        _, instance = random_aggregation_instance(n=30, m=4, k=3, seed=0)
        result = balls(instance, alpha=PRACTICAL_ALPHA)
        assert result.n == 30

    def test_index_order_option(self, figure1_instance):
        result = balls(figure1_instance, alpha=PRACTICAL_ALPHA, sort_by_weight=False)
        assert result.n == 6  # still a valid partition


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", range(12))
    def test_within_3x_of_optimum_on_random_aggregations(self, seed):
        """Theorem 1: BALLS at alpha = 1/4 is a 3-approximation (the input
        distances obey the triangle inequality by construction)."""
        rng = np.random.default_rng(seed)
        n, m, k = int(rng.integers(5, 11)), int(rng.integers(2, 6)), int(rng.integers(2, 4))
        matrix, instance = random_aggregation_instance(n=n, m=m, k=k, seed=seed + 100)
        _, optimal_cost = exact_optimum(instance)
        cost = instance.cost(balls(instance, alpha=THEORY_ALPHA))
        if optimal_cost == 0:
            assert cost == 0
        else:
            assert cost <= 3.0 * optimal_cost + 1e-9

    @pytest.mark.parametrize("seed", range(10))
    def test_factor_two_for_three_clusterings(self, seed):
        """Paper §4: for m = 3 the BALLS cost is at most twice the optimum."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 11))
        matrix, instance = random_aggregation_instance(n=n, m=3, k=3, seed=seed + 500)
        from repro.algorithms import exact_optimum

        _, optimal = exact_optimum(instance)
        cost = instance.cost(balls(instance, alpha=THEORY_ALPHA))
        if optimal == 0:
            assert cost == 0
        else:
            assert cost <= 2.0 * optimal + 1e-9

    def test_two_planted_groups_recovered(self):
        # Two groups of identical objects at mutual distance 1.
        matrix = np.array([[0] * 4 + [1] * 4] * 5, dtype=np.int32).T.copy()
        instance = CorrelationInstance.from_label_matrix(matrix)
        result = balls(instance, alpha=THEORY_ALPHA)
        assert result == Clustering([0] * 4 + [1] * 4)
