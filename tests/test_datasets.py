"""Tests for the dataset generators and the categorical container."""

import numpy as np
import pytest

from repro.core.labels import MISSING
from repro.datasets import (
    CategoricalDataset,
    gaussian_with_noise,
    generate_census,
    generate_mushrooms,
    generate_votes,
    seven_groups,
)


class TestCategoricalDataset:
    def make(self):
        data = np.array([[0, 1], [1, MISSING], [0, 0]], dtype=np.int32)
        return CategoricalDataset(
            name="toy",
            data=data,
            attribute_names=["a", "b"],
            classes=np.array([0, 1, 0]),
            class_names=["x", "y"],
            value_names=[["u", "v"], ["p", "q"]],
        )

    def test_shape_properties(self):
        ds = self.make()
        assert (ds.n, ds.m) == (3, 2)
        assert ds.missing_count() == 1
        assert ds.arities().tolist() == [2, 2]

    def test_label_matrix_is_data(self):
        ds = self.make()
        assert ds.label_matrix() is ds.data

    def test_attribute_name_count_enforced(self):
        with pytest.raises(ValueError):
            CategoricalDataset("bad", np.zeros((2, 2), dtype=np.int32), ["only-one"])

    def test_class_alignment_enforced(self):
        with pytest.raises(ValueError):
            CategoricalDataset(
                "bad", np.zeros((2, 1), dtype=np.int32), ["a"], classes=np.array([0])
            )

    def test_subset(self):
        ds = self.make()
        sub = ds.subset(np.array([0, 2]))
        assert sub.n == 2
        assert sub.classes.tolist() == [0, 0]

    def test_csv_round_trip(self, tmp_path):
        ds = self.make()
        path = tmp_path / "toy.csv"
        ds.to_csv(path)
        back = CategoricalDataset.from_csv(path)
        assert back.n == ds.n and back.m == ds.m
        assert back.missing_count() == 1
        assert back.classes is not None
        # Same partition structure per column (codes may be renumbered).
        for j in range(ds.m):
            ours = ds.data[:, j]
            theirs = back.data[:, j]
            assert np.array_equal(ours == MISSING, theirs == MISSING)

    def test_csv_without_class(self, tmp_path):
        data = np.array([[0], [1]], dtype=np.int32)
        ds = CategoricalDataset("noclass", data, ["a"])
        path = tmp_path / "noclass.csv"
        ds.to_csv(path)
        back = CategoricalDataset.from_csv(path)
        assert back.classes is None

    def test_csv_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError):
            CategoricalDataset.from_csv(path)


class TestVotes:
    def test_default_shape(self):
        ds = generate_votes(rng=0)
        assert (ds.n, ds.m) == (435, 16)
        assert ds.missing_count() == 288
        assert np.bincount(ds.classes).tolist() == [267, 168]

    def test_binary_attributes(self):
        ds = generate_votes(rng=0)
        assert np.all(ds.arities() == 2)

    def test_scaled_size(self):
        ds = generate_votes(n=100, rng=0)
        assert ds.n == 100
        assert ds.missing_count() == round(288 * 100 / 435)

    def test_deterministic(self):
        a, b = generate_votes(rng=5), generate_votes(rng=5)
        assert np.array_equal(a.data, b.data)

    def test_parties_are_separated(self):
        # Most same-party pairs agree more than cross-party pairs.
        ds = generate_votes(rng=0)
        from repro.core.instance import disagreement_fractions

        X = disagreement_fractions(ds.data)
        cls = ds.classes
        within = X[np.ix_(cls == 0, cls == 0)].mean()
        across = X[np.ix_(cls == 0, cls == 1)].mean()
        assert across > within + 0.15

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_votes(n=1)


class TestMushrooms:
    def test_default_shape(self):
        ds = generate_mushrooms(rng=0)
        assert (ds.n, ds.m) == (8124, 22)
        assert ds.missing_count() == 2480
        # Class totals of the real dataset (from Table 1): 3916 poisonous.
        assert int(ds.classes.sum()) == 3916

    def test_missing_all_in_stalk_root(self):
        ds = generate_mushrooms(n=2000, rng=0)
        missing_per_column = (ds.data == MISSING).sum(axis=0)
        assert missing_per_column[10] == ds.missing_count()
        assert (np.delete(missing_per_column, 10) == 0).all()

    def test_scaled_sizes_sum(self):
        ds = generate_mushrooms(n=1500, rng=1)
        assert ds.n == 1500

    def test_veil_type_single_valued(self):
        ds = generate_mushrooms(n=500, rng=0)
        column = ds.data[:, 15]
        assert np.unique(column[column != MISSING]).size == 1

    def test_deterministic(self):
        a = generate_mushrooms(n=300, rng=3)
        b = generate_mushrooms(n=300, rng=3)
        assert np.array_equal(a.data, b.data)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_mushrooms(n=3)


class TestCensus:
    def test_default_shape(self):
        ds = generate_census(n=5000, rng=0)
        assert (ds.n, ds.m) == (5000, 8)
        assert set(np.unique(ds.classes)) <= {0, 1}

    def test_arity_bounds(self):
        ds = generate_census(n=5000, rng=0)
        expected_max = [9, 16, 7, 15, 6, 5, 2, 42]
        for j, bound in enumerate(expected_max):
            assert ds.arities()[j] <= bound

    def test_group_floor(self):
        with pytest.raises(ValueError):
            generate_census(n=10, n_groups=55)

    def test_mixed_classes(self):
        # Subgroups mix salary classes: E_C of any clustering stays > 0.15.
        ds = generate_census(n=8000, rng=0)
        minority = min(np.bincount(ds.classes)) / ds.n
        assert 0.15 <= minority <= 0.5


class TestSynthetic2D:
    def test_seven_groups_shape(self):
        data = seven_groups(rng=0)
        assert data.points.shape[1] == 2
        assert len(np.unique(data.truth)) == 7
        assert 600 <= data.n <= 900

    def test_seven_groups_uneven_sizes(self):
        data = seven_groups(rng=0)
        sizes = np.bincount(data.truth)
        assert sizes.max() > 3 * sizes.min()

    def test_gaussian_with_noise_counts(self):
        data = gaussian_with_noise(5, points_per_cluster=50, noise_fraction=0.2, rng=0)
        assert data.n == 5 * 50 + round(0.2 * 250)
        assert (data.truth == -1).sum() == round(0.2 * 250)

    def test_gaussian_zero_noise(self):
        data = gaussian_with_noise(3, points_per_cluster=10, noise_fraction=0.0, rng=0)
        assert (data.truth >= 0).all()

    def test_gaussian_invalid_params(self):
        with pytest.raises(ValueError):
            gaussian_with_noise(0)
        with pytest.raises(ValueError):
            gaussian_with_noise(3, noise_fraction=1.0)

    def test_points_in_unit_square_mostly(self):
        data = gaussian_with_noise(4, rng=1)
        inside = ((data.points >= -0.1) & (data.points <= 1.1)).all(axis=1).mean()
        assert inside > 0.98

    def test_ascii_plot_renders(self):
        data = seven_groups(rng=0)
        art = data.ascii_plot(width=40, height=12)
        assert len(art.splitlines()) == 12

    def test_deterministic(self):
        a, b = seven_groups(rng=2), seven_groups(rng=2)
        assert np.allclose(a.points, b.points)
