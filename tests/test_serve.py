"""Aggregation service tests: batching determinism, backpressure, lifecycle.

The in-process :class:`ServerHarness` runs a real
:class:`~repro.serve.AggregationService` — real sockets, real HTTP — on a
background event-loop thread, so concurrency tests drive the service the
way production clients would while assertions stay synchronous.  The
SIGTERM path (signal handlers must live on a main thread) is covered by
a ``python -m repro serve`` subprocess test at the bottom.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import asyncio

import numpy as np
import pytest

from repro.core.aggregate import aggregate
from repro.datasets import generate_votes
from repro.parallel.portfolio import portfolio
from repro.serve import AggregationService, ServeConfig
from repro.stream import StreamingAggregator, load_checkpoint


class ServerHarness:
    """One live service on a background event loop, plus an HTTP client."""

    def __init__(self, **config_kwargs) -> None:
        self.config = ServeConfig(port=0, **config_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever, daemon=True)
        self._thread.start()
        self.service = AggregationService(self.config)
        self.run(self.service.start())
        self.port = self.service.port

    def run(self, coro, timeout: float = 30.0):
        """Run a coroutine on the service loop from the test thread."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def call(self, fn, timeout: float = 5.0):
        """Run a plain callable on the service loop thread (pause/resume)."""
        done = threading.Event()
        box: dict = {}

        def runner() -> None:
            try:
                box["value"] = fn()
            except BaseException as error:  # surfaced below
                box["error"] = error
            done.set()

        self._loop.call_soon_threadsafe(runner)
        assert done.wait(timeout), "loop callback did not run"
        if "error" in box:
            raise box["error"]
        return box.get("value")

    def request(self, method: str, path: str, body=None, timeout: float = 30.0):
        """One HTTP request; returns ``(status, payload, headers)``."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            conn.request(method, path, body=None if body is None else json.dumps(body))
            response = conn.getresponse()
            raw = response.read()
            payload = json.loads(raw) if raw else None
            return response.status, payload, dict(response.getheaders())
        finally:
            conn.close()

    def close(self) -> dict:
        summary = self.run(self.service.shutdown())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()
        return summary


@pytest.fixture
def harness():
    """A default-config service; closed (gracefully) after the test."""
    server = ServerHarness(batch_window=0.001)
    yield server
    if server.service is not None:
        server.close()


def _columns(n_rows: int = 60, m: int = 8, rng: int = 5) -> list[list[int]]:
    matrix = generate_votes(n=n_rows, rng=rng).label_matrix()
    return [matrix[:, j].tolist() for j in range(min(m, matrix.shape[1]))]


# ---------------------------------------------------------------------------
# Routing, health, validation
# ---------------------------------------------------------------------------


class TestRoutingAndValidation:
    def test_healthz_and_unknown_routes(self, harness):
        status, payload, _ = harness.request("GET", "/healthz")
        assert (status, payload) == (200, {"status": "ok", "sessions": 0})
        assert harness.request("GET", "/nope")[0] == 404
        assert harness.request("PUT", "/sessions")[0] == 405
        assert harness.request("GET", "/sessions/ghost")[0] == 404
        assert harness.request("GET", "/sessions/ghost/consensus")[0] == 404

    @pytest.mark.parametrize(
        "body",
        [
            None,  # empty body
            {"n": 5},  # no name
            {"name": "bad name", "n": 5},  # space in name
            {"name": "../evil", "n": 5},  # path traversal
            {"name": "s", "n": 0},  # n < 1
            {"name": "s", "n": 5, "p": 1.5},  # p out of range
            {"name": "s", "n": 5, "decay": 0.0},  # decay out of range
            {"name": "s", "n": 5, "missing": "guess"},  # unknown mode
            {"name": "s", "n": 5, "weird": 1},  # unknown field
            {"name": "s", "n": 5.0},  # float n
            {"name": "s", "n": True},  # bool n
        ],
    )
    def test_create_session_rejects_bad_bodies(self, harness, body):
        status, payload, _ = harness.request("POST", "/sessions", body)
        assert status == 400
        assert "error" in payload

    def test_create_session_n_guard_is_413(self):
        server = ServerHarness(max_n=100)
        try:
            status, payload, _ = server.request(
                "POST", "/sessions", {"name": "big", "n": 101}
            )
            assert status == 413
            assert "max_n" in payload["error"]
        finally:
            server.close()

    @pytest.mark.parametrize(
        "labels",
        [
            None,
            [0, 1],  # wrong length
            [0.5] * 4,  # floats
            ["a"] * 4,  # strings
            [0, 1, None, 1],  # null hole
            [-2, 0, 1, 1],  # below the missing marker
            [-1, -1, -1, -1],  # entirely missing
        ],
    )
    def test_observe_rejects_bad_labels(self, harness, labels):
        assert harness.request("POST", "/sessions", {"name": "v", "n": 4})[0] == 201
        status, payload, _ = harness.request(
            "POST", "/sessions/v/observe", {"labels": labels}
        )
        assert status == 400
        assert "error" in payload

    def test_consensus_before_first_update_is_409(self, harness):
        harness.request("POST", "/sessions", {"name": "empty", "n": 4})
        status, payload, _ = harness.request("GET", "/sessions/empty/consensus")
        assert status == 409
        assert "no consensus" in payload["error"]

    def test_duplicate_session_is_409_and_table_limit_503(self):
        server = ServerHarness(max_sessions=2)
        try:
            assert server.request("POST", "/sessions", {"name": "a", "n": 4})[0] == 201
            assert server.request("POST", "/sessions", {"name": "a", "n": 4})[0] == 409
            assert server.request("POST", "/sessions", {"name": "b", "n": 4})[0] == 201
            status, _, headers = server.request("POST", "/sessions", {"name": "c", "n": 4})
            assert status == 503
            assert "Retry-After" in headers
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Observe semantics: serial parity, concurrent determinism, coalescing
# ---------------------------------------------------------------------------


class TestObserveDeterminism:
    def test_serial_observes_match_streaming_engine(self, harness):
        columns = _columns()
        n = len(columns[0])
        harness.request("POST", "/sessions", {"name": "serial", "n": n, "seed": 11})
        engine = StreamingAggregator(n, rng=11)
        for column in columns:
            status, payload, _ = harness.request(
                "POST", "/sessions/serial/observe", {"labels": column}
            )
            update = engine.observe(np.asarray(column, dtype=np.int64))
            assert status == 200
            assert payload["index"] == update.index
            assert payload["cost"] == update.cost
            assert payload["k"] == update.k
        status, payload, _ = harness.request("GET", "/sessions/serial/consensus")
        assert status == 200
        assert payload["labels"] == engine.consensus.labels.tolist()
        assert payload["cost"] == engine.cost()

    def test_concurrent_observes_are_bit_identical_to_serial_replay(self, harness):
        """The acceptance criterion: batching must not change results.

        Concurrent clients race their columns in; whatever arrival order
        the server picked (reported via ``update.index``) must yield the
        exact state a serial engine produces replaying that same order.
        """
        columns = _columns(n_rows=50, m=8)
        n = len(columns[0])
        harness.request("POST", "/sessions", {"name": "race", "n": n, "seed": 23})

        def submit(column):
            status, payload, _ = harness.request(
                "POST", "/sessions/race/observe", {"labels": column}
            )
            assert status == 200
            return payload["index"], column

        with ThreadPoolExecutor(max_workers=len(columns)) as pool:
            arrived = sorted(pool.map(submit, columns))

        assert [index for index, _ in arrived] == list(range(1, len(columns) + 1))
        replay = StreamingAggregator(n, rng=23)
        for _, column in arrived:
            replay.observe(np.asarray(column, dtype=np.int64))

        _, payload, _ = harness.request("GET", "/sessions/race/consensus")
        assert payload["labels"] == replay.consensus.labels.tolist()
        assert payload["cost"] == replay.cost()
        assert payload["count"] == len(columns)

    def test_concurrent_observes_coalesce_into_batches(self):
        server = ServerHarness(batch_window=0.05, max_batch=64)
        try:
            columns = _columns(n_rows=40, m=6)
            n = len(columns[0])
            server.request("POST", "/sessions", {"name": "co", "n": n})
            session = server.call(lambda: server.service.sessions.get("co"))

            # Park the worker: it holds at most one early batch at the
            # pause gate while the rest of the burst queues behind it, so
            # the post-resume batch deterministically coalesces.
            server.call(session.pause)
            with ThreadPoolExecutor(max_workers=len(columns)) as pool:
                futures = [
                    pool.submit(
                        server.request, "POST", "/sessions/co/observe", {"labels": c}
                    )
                    for c in columns
                ]
                time.sleep(0.5)  # let every request reach the queue
                server.call(session.resume)
                results = [f.result() for f in futures]

            sizes = [payload["batched"] for status, payload, _ in results]
            assert all(status == 200 for status, _, _ in results)
            assert max(sizes) >= 2, f"no coalescing observed: {sizes}"
            # One publish per batch, not per request.
            versions = {payload["version"] for _, payload, _ in results}
            assert len(versions) < len(columns)
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Backpressure and non-blocking reads
# ---------------------------------------------------------------------------


class TestBackpressureAndReads:
    def test_queue_limit_yields_429_with_retry_after(self):
        server = ServerHarness(queue_limit=2, batch_window=0.0, max_batch=1)
        try:
            columns = _columns(n_rows=30, m=6)
            n = len(columns[0])
            server.request("POST", "/sessions", {"name": "bp", "n": n})
            session = server.call(lambda: server.service.sessions.get("bp"))
            server.call(session.pause)

            with ThreadPoolExecutor(max_workers=len(columns)) as pool:
                futures = [
                    pool.submit(
                        server.request, "POST", "/sessions/bp/observe", {"labels": c}
                    )
                    for c in columns
                ]
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    statuses = [f.result()[0] for f in futures if f.done()]
                    if statuses.count(429) >= len(columns) - 3:
                        break
                server.call(session.resume)
                results = [f.result() for f in futures]

            accepted = [r for r in results if r[0] == 200]
            rejected = [r for r in results if r[0] == 429]
            assert len(accepted) + len(rejected) == len(columns)
            # queue_limit=2 plus at most one batch in the worker's hands.
            assert 1 <= len(accepted) <= 3
            for _, payload, headers in rejected:
                assert "Retry-After" in headers
                assert int(headers["Retry-After"]) >= 1
                assert "queue is full" in payload["error"]
        finally:
            server.close()

    def test_aggregate_waiting_room_full_yields_429_on_sharded(self):
        """The one-shot waiting room signals per-client backpressure the
        same way the observe queue does: 429 plus a Retry-After hint."""
        server = ServerHarness(aggregate_pending=1, aggregate_concurrency=1)
        release = threading.Event()
        try:
            columns = _columns(n_rows=30, m=4)
            service = server.service
            original = service._run_aggregate

            def gated(spec):
                assert release.wait(20), "test never released the gate"
                return original(spec)

            service._run_aggregate = gated
            body = {"clusterings": columns, "method": "sharded", "n_shards": 2, "seed": 1}
            with ThreadPoolExecutor(max_workers=1) as pool:
                first = pool.submit(server.request, "POST", "/aggregate", body)
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    if server.call(lambda: service._aggregate_waiting) >= 1:
                        break
                status, payload, headers = server.request("POST", "/aggregate", body)
                assert status == 429
                assert "Retry-After" in headers
                assert int(headers["Retry-After"]) >= 1
                assert "waiting room" in payload["error"]
                release.set()
                status, payload, _ = first.result(timeout=30)
            assert status == 200
            assert payload["method"] == "sharded"
            assert payload["shard"]["n_shards"] == 2
        finally:
            release.set()
            server.close()

    def test_consensus_reads_do_not_wait_for_writes(self):
        server = ServerHarness(batch_window=0.0)
        try:
            columns = _columns(n_rows=40, m=4)
            n = len(columns[0])
            server.request("POST", "/sessions", {"name": "nb", "n": n})
            server.request("POST", "/sessions/nb/observe", {"labels": columns[0]})
            server.request("POST", "/sessions/nb/observe", {"labels": columns[1]})
            _, before, _ = server.request("GET", "/sessions/nb/consensus")

            session = server.call(lambda: server.service.sessions.get("nb"))
            server.call(session.pause)
            blocked = ThreadPoolExecutor(max_workers=1).submit(
                server.request, "POST", "/sessions/nb/observe", {"labels": columns[2]}
            )
            # With a write parked in the queue, reads still answer instantly
            # from the published snapshot.
            start = time.monotonic()
            status, during, _ = server.request("GET", "/sessions/nb/consensus")
            elapsed = time.monotonic() - start
            assert status == 200
            assert during == before
            assert elapsed < 1.0
            assert not blocked.done()

            server.call(session.resume)
            assert blocked.result(timeout=10)[0] == 200
            _, after, _ = server.request("GET", "/sessions/nb/consensus")
            assert after["version"] == before["version"] + 1
        finally:
            server.close()

    def test_consensus_labels_flag_trims_payload(self, harness):
        columns = _columns(n_rows=30, m=2)
        harness.request("POST", "/sessions", {"name": "sm", "n": len(columns[0])})
        harness.request("POST", "/sessions/sm/observe", {"labels": columns[0]})
        _, slim, _ = harness.request("GET", "/sessions/sm/consensus?labels=false")
        assert "labels" not in slim
        assert slim["version"] == 1


# ---------------------------------------------------------------------------
# One-shot /aggregate
# ---------------------------------------------------------------------------


class TestAggregateEndpoint:
    def test_portfolio_parity_with_library_call(self, harness):
        matrix = generate_votes(n=40, rng=9).label_matrix()[:, :5]
        clusterings = [matrix[:, j].tolist() for j in range(matrix.shape[1])]
        status, payload, _ = harness.request(
            "POST", "/aggregate", {"clusterings": clusterings, "seed": 4}
        )
        local = portfolio(matrix, rng=4)
        assert status == 200
        assert payload["method"] == "portfolio"
        assert payload["best_method"] == local.best_method
        assert payload["cost"] == local.cost
        assert payload["labels"] == local.best.labels.tolist()

    def test_named_method_parity_with_library_call(self, harness):
        matrix = generate_votes(n=40, rng=9).label_matrix()[:, :5]
        clusterings = [matrix[:, j].tolist() for j in range(matrix.shape[1])]
        status, payload, _ = harness.request(
            "POST",
            "/aggregate",
            {"clusterings": clusterings, "method": "agglomerative"},
        )
        local = aggregate(matrix, method="agglomerative", compute_lower_bound=False)
        assert status == 200
        assert payload["method"] == "agglomerative"
        assert payload["cost"] == local.cost
        assert payload["k"] == local.k
        assert payload["labels"] == local.clustering.labels.tolist()

    def test_sharded_method_parity_and_report(self, harness):
        matrix = generate_votes(n=60, rng=3).label_matrix()[:, :6]
        clusterings = [matrix[:, j].tolist() for j in range(matrix.shape[1])]
        status, payload, _ = harness.request(
            "POST",
            "/aggregate",
            {"clusterings": clusterings, "method": "sharded", "n_shards": 2, "seed": 5},
        )
        local = aggregate(
            matrix, method="sharded", n_shards=2, rng=5, compute_lower_bound=False
        )
        assert status == 200
        assert payload["method"] == "sharded"
        assert payload["labels"] == local.clustering.labels.tolist()
        assert payload["cost"] == local.cost
        # The per-shard report rides along for observability parity.
        assert payload["shard"]["n_shards"] == 2
        assert len(payload["shard"]["shards"]) == 2
        assert payload["shard"]["merge_method"] in ("exact", "local-search", "trivial")

    def test_n_shards_validation(self, harness):
        clusterings = [[0, 1, 0, 1], [0, 1, 1, 0]]
        status, payload, _ = harness.request(
            "POST", "/aggregate", {"clusterings": clusterings, "n_shards": 2}
        )
        assert status == 400
        assert "sharded" in payload["error"]
        status, payload, _ = harness.request(
            "POST",
            "/aggregate",
            {"clusterings": clusterings, "method": "sharded", "n_shards": 0},
        )
        assert status == 400
        assert "n_shards" in payload["error"]

    def test_aggregate_validation(self, harness):
        assert harness.request("POST", "/aggregate", {"clusterings": []})[0] == 400
        assert (
            harness.request(
                "POST", "/aggregate", {"clusterings": [[0, 1]], "method": "telepathy"}
            )[0]
            == 400
        )
        status, payload, _ = harness.request(
            "POST", "/aggregate", {"clusterings": [[0, 1], [0, 1, 2]]}
        )
        assert status == 400
        assert "clusterings[1]" in payload["error"]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_per_endpoint_counters_and_latency(self, harness):
        from repro.obs import get_registry

        # The registry is process-global; count only this test's traffic.
        harness.call(get_registry().reset)
        harness.request("POST", "/sessions", {"name": "m", "n": 4})
        harness.request("POST", "/sessions/m/observe", {"labels": [0, 0, 1, 1]})
        harness.request("GET", "/sessions/m/consensus")
        harness.request("GET", "/sessions/ghost")

        status, payload, _ = harness.request("GET", "/metrics")
        assert status == 200
        counters = payload["counters"]
        assert counters["serve.sessions.create.requests"] == 1
        assert counters["serve.sessions.create.status.201"] == 1
        assert counters["serve.observe.requests"] == 1
        assert counters["serve.observe.status.200"] == 1
        assert counters["serve.consensus.status.200"] == 1
        assert counters["serve.sessions.info.status.404"] == 1
        histograms = payload["histograms"]
        assert histograms["serve.observe.seconds"]["count"] == 1
        assert histograms["serve.batch.size"]["count"] == 1
        assert payload["sessions"]["m"]["count"] == 1


# ---------------------------------------------------------------------------
# Checkpoint persistence and graceful shutdown
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_shutdown_checkpoints_every_session_and_restores(self, tmp_path):
        columns = _columns(n_rows=30, m=4)
        n = len(columns[0])
        server = ServerHarness(checkpoint_dir=tmp_path)
        server.request("POST", "/sessions", {"name": "alpha", "n": n, "seed": 2})
        server.request("POST", "/sessions", {"name": "beta", "n": n, "seed": 3})
        for column in columns:
            server.request("POST", "/sessions/alpha/observe", {"labels": column})
        server.request("POST", "/sessions/beta/observe", {"labels": columns[0]})
        _, final, _ = server.request("GET", "/sessions/alpha/consensus")
        summary = server.close()

        assert sorted(summary["checkpoints"]) == [
            str(tmp_path / "alpha.npz"),
            str(tmp_path / "beta.npz"),
        ]
        engine = load_checkpoint(tmp_path / "alpha.npz", n=n)
        assert engine.count == len(columns)
        assert engine.consensus.labels.tolist() == final["labels"]

        # A new server over the same directory adopts the saved state.
        revived = ServerHarness(checkpoint_dir=tmp_path)
        try:
            status, payload, _ = revived.request(
                "POST", "/sessions", {"name": "alpha", "n": n, "seed": 2}
            )
            assert (status, payload["restored"], payload["count"]) == (
                201,
                True,
                len(columns),
            )
            _, consensus, _ = revived.request("GET", "/sessions/alpha/consensus")
            assert consensus["labels"] == final["labels"]

            # ... but refuses to graft it onto a different configuration.
            revived.request("DELETE", "/sessions/alpha")
            status, payload, _ = revived.request(
                "POST", "/sessions", {"name": "alpha", "n": n, "decay": 0.5}
            )
            assert status == 409
            assert "checkpoint" in payload["error"]
        finally:
            revived.close()

    def test_delete_drains_and_checkpoints(self, tmp_path):
        server = ServerHarness(checkpoint_dir=tmp_path)
        try:
            server.request("POST", "/sessions", {"name": "gone", "n": 4})
            server.request("POST", "/sessions/gone/observe", {"labels": [0, 0, 1, 1]})
            status, payload, _ = server.request("DELETE", "/sessions/gone")
            assert status == 200
            assert payload["checkpoint"] == str(tmp_path / "gone.npz")
            assert server.request("GET", "/sessions/gone")[0] == 404
            # The name is free again; the checkpoint restores on re-create.
            status, payload, _ = server.request(
                "POST", "/sessions", {"name": "gone", "n": 4}
            )
            assert (status, payload["restored"]) == (201, True)
        finally:
            server.close()

    def test_shutdown_waits_for_inflight_aggregate(self, tmp_path):
        """Drain consistency: shutdown blocks (up to ``drain_timeout``)
        until in-flight one-shot aggregates flush their responses, and
        still checkpoints every session."""
        server = ServerHarness(checkpoint_dir=tmp_path)
        release = threading.Event()
        shutdown_box: dict = {}
        try:
            columns = _columns(n_rows=30, m=4)
            server.request("POST", "/sessions", {"name": "keep", "n": len(columns[0])})
            server.request("POST", "/sessions/keep/observe", {"labels": columns[0]})
            service = server.service
            original = service._run_aggregate

            def gated(spec):
                assert release.wait(20), "test never released the gate"
                return original(spec)

            service._run_aggregate = gated
            body = {"clusterings": columns, "method": "sharded", "n_shards": 2, "seed": 0}
            with ThreadPoolExecutor(max_workers=2) as pool:
                inflight = pool.submit(server.request, "POST", "/aggregate", body)
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    if server.call(lambda: service._aggregate_waiting) >= 1:
                        break

                def close():
                    shutdown_box["summary"] = server.close()

                closing = pool.submit(close)
                time.sleep(0.2)
                # Shutdown is parked on the idle event, not done yet.
                assert not closing.done()
                release.set()
                status, payload, _ = inflight.result(timeout=30)
                closing.result(timeout=30)
            assert status == 200
            assert payload["method"] == "sharded"
            assert shutdown_box["summary"]["checkpoints"] == [
                str(tmp_path / "keep.npz")
            ]
            server.service = None  # already closed
        finally:
            release.set()
            if server.service is not None:
                server.close()

    def test_draining_server_refuses_new_work(self):
        server = ServerHarness()
        try:
            server.request("POST", "/sessions", {"name": "d", "n": 4})
            # Flip the drain flag the way shutdown() does while the
            # listener still accepts: new work must 503, health stays up.
            server.call(lambda: setattr(server.service, "_draining", True))
            status, _, headers = server.request("POST", "/sessions", {"name": "e", "n": 4})
            assert status == 503
            assert "Retry-After" in headers
            assert server.request("POST", "/sessions/d/observe", {"labels": [0] * 4})[0] == 503
            status, payload, _ = server.request("GET", "/healthz")
            assert (status, payload["status"]) == (200, "draining")
            server.call(lambda: setattr(server.service, "_draining", False))
        finally:
            server.close()


_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


@pytest.mark.no_contracts
def test_sigterm_drains_and_checkpoints(tmp_path):
    """``repro serve`` under SIGTERM: clean exit, checkpoint on disk."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(filter(None, [_SRC, env.get("PYTHONPATH", "")]))
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--checkpoint-dir",
            str(tmp_path),
            "--json",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        banner = json.loads(proc.stdout.readline())
        assert banner["event"] == "serve.start"
        port = banner["port"]
        assert port > 0

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        conn.request("POST", "/sessions", body=json.dumps({"name": "sig", "n": 4}))
        response = conn.getresponse()
        response.read()
        assert response.status == 201
        conn.request(
            "POST", "/sessions/sig/observe", body=json.dumps({"labels": [0, 0, 1, 1]})
        )
        response = conn.getresponse()
        response.read()
        assert response.status == 200
        conn.close()

        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    assert proc.returncode == 0, err
    stop = json.loads(out.strip().splitlines()[-1])
    assert stop["event"] == "serve.stop"
    assert stop["sessions"] == 1
    assert (tmp_path / "sig.npz").exists()
    assert load_checkpoint(tmp_path / "sig.npz", n=4).count == 1
