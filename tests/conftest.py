"""Shared fixtures: the paper's running example and small random instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Clustering
from repro.analysis.contracts import contracts
from repro.core import CorrelationInstance
from repro.core.labels import as_label_matrix


@pytest.fixture(autouse=True)
def _runtime_contracts(request: pytest.FixtureRequest):
    """Run every test with debug-mode runtime contracts enabled.

    The contract layer (repro.analysis.contracts) validates instance
    symmetry/range/triangle-inequality, canonical labels, and streaming
    drift bounds on the fly, so the whole suite doubles as an invariant
    exerciser.  Opt out with ``@pytest.mark.no_contracts`` (e.g. for
    benchmarks where the O(n²) checks would dominate).
    """
    if request.node.get_closest_marker("no_contracts"):
        yield
        return
    with contracts():
        yield


@pytest.fixture
def figure1_clusterings() -> list[Clustering]:
    """The three input clusterings of the paper's Figure 1."""
    return [
        Clustering([0, 0, 1, 1, 2, 2]),
        Clustering([0, 1, 0, 1, 2, 3]),
        Clustering([0, 1, 0, 1, 2, 2]),
    ]


@pytest.fixture
def figure1_optimum() -> Clustering:
    """The optimal aggregate of Figure 1 (5 disagreements)."""
    return Clustering([0, 1, 0, 1, 2, 2])


@pytest.fixture
def figure1_instance(figure1_clusterings) -> CorrelationInstance:
    """The Figure 2 correlation instance (distances 1/3, 2/3, 1)."""
    return CorrelationInstance.from_clusterings(figure1_clusterings)


def random_aggregation_instance(
    n: int, m: int, k: int, seed: int
) -> tuple[np.ndarray, CorrelationInstance]:
    """A random aggregation problem: m clusterings of n objects with <= k clusters."""
    rng = np.random.default_rng(seed)
    matrix = as_label_matrix([rng.integers(0, k, size=n) for _ in range(m)])
    return matrix, CorrelationInstance.from_label_matrix(matrix)


def planted_instance(
    n: int, m: int, groups: int, flip: float, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Clusterings that all agree on `groups` planted clusters, with noise.

    Each of the ``m`` input clusterings is the planted partition with a
    ``flip`` fraction of objects relabelled at random.  Returns
    ``(truth_labels, label_matrix)``.
    """
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, groups, size=n)
    columns = []
    for _ in range(m):
        noisy = truth.copy()
        flips = rng.random(n) < flip
        noisy[flips] = rng.integers(0, groups, size=int(flips.sum()))
        columns.append(noisy)
    return truth, as_label_matrix(columns)
