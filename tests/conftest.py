"""Shared fixtures: the paper's running example and small random instances."""

from __future__ import annotations

import pytest

from repro import Clustering
from repro.analysis.contracts import contracts
from repro.core import CorrelationInstance

# Historical home of these helpers; re-exported so the many existing
# ``from conftest import ...`` call sites keep working.  New tests should
# import from tests/strategies.py directly.
from strategies import planted_instance, random_aggregation_instance

__all__ = ["planted_instance", "random_aggregation_instance"]


@pytest.fixture(autouse=True)
def _runtime_contracts(request: pytest.FixtureRequest):
    """Run every test with debug-mode runtime contracts enabled.

    The contract layer (repro.analysis.contracts) validates instance
    symmetry/range/triangle-inequality, canonical labels, and streaming
    drift bounds on the fly, so the whole suite doubles as an invariant
    exerciser.  Opt out with ``@pytest.mark.no_contracts`` (e.g. for
    benchmarks where the O(n²) checks would dominate).
    """
    if request.node.get_closest_marker("no_contracts"):
        yield
        return
    with contracts():
        yield


@pytest.fixture
def figure1_clusterings() -> list[Clustering]:
    """The three input clusterings of the paper's Figure 1."""
    return [
        Clustering([0, 0, 1, 1, 2, 2]),
        Clustering([0, 1, 0, 1, 2, 3]),
        Clustering([0, 1, 0, 1, 2, 2]),
    ]


@pytest.fixture
def figure1_optimum() -> Clustering:
    """The optimal aggregate of Figure 1 (5 disagreements)."""
    return Clustering([0, 1, 0, 1, 2, 2])


@pytest.fixture
def figure1_instance(figure1_clusterings) -> CorrelationInstance:
    """The Figure 2 correlation instance (distances 1/3, 2/3, 1)."""
    return CorrelationInstance.from_clusterings(figure1_clusterings)
