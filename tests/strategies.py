"""Shared random-instance generators for the test suite.

Consolidates the grid / missing-pattern / planted / weighted-atom
generators that used to be duplicated across ``test_properties.py``,
``test_differential_oracle.py`` and ``test_shard.py``, plus the helpers
``conftest.py`` re-exports to the rest of the suite.

Determinism contract: every generator consumes its RNG in exactly the
order of the code it replaced, so migrated call sites reproduce every
historical test instance bit for bit.  New tests should build on
:func:`random_label_matrix` rather than adding another ad-hoc recipe.
"""

from __future__ import annotations

import numpy as np

from repro.core import CorrelationInstance
from repro.core.labels import MISSING, as_label_matrix

__all__ = [
    "far_atoms_problem",
    "grid_matrix",
    "oracle_case",
    "planted_instance",
    "random_aggregation_instance",
    "random_label_matrix",
]


def random_label_matrix(
    n: int,
    m: int,
    k: int,
    rng: np.random.Generator,
    *,
    missing_rate: float = 0.0,
    dtype: type = np.int64,
    guard_first_row: bool = True,
) -> np.ndarray:
    """Uniform random ``(n, m)`` label matrix with optional missing holes.

    ``guard_first_row`` selects between the suite's two historical hole
    conventions.  ``True`` masks row 0 out of the hole pattern before
    punching (the differential-oracle recipe — a fully-missing input
    clustering would be invalid); ``False`` punches holes everywhere and
    then overwrites row 0 with label 0 (the property-test recipe).  RNG
    consumption is one ``integers`` draw plus, when ``missing_rate`` is
    nonzero, one ``random`` draw.
    """
    matrix = rng.integers(0, k, size=(n, m)).astype(dtype)
    if missing_rate > 0.0:
        holes = rng.random(size=(n, m)) < missing_rate
        if guard_first_row:
            holes[0, :] = False
        matrix[holes] = MISSING
        if not guard_first_row:
            matrix[0] = 0
    return matrix


def grid_matrix(n, m, k, seed, missing_rate=0.0) -> np.ndarray:
    """The property-test grid (``test_properties.build``): int32 labels,
    row 0 forced to a real clustering whenever holes are punched."""
    return random_label_matrix(
        n,
        m,
        k,
        np.random.default_rng(seed),
        missing_rate=missing_rate,
        dtype=np.int32,
        guard_first_row=False,
    )


def oracle_case(n: int, m: int, seed: int, missing: float) -> tuple[np.ndarray, int]:
    """The differential-oracle grid: ``(seed, n, m)``-keyed stream, cluster
    budget ``k`` drawn from the same stream.  Returns ``(matrix, k)``."""
    rng = np.random.default_rng(seed * 10_007 + n * 101 + m)
    k = int(rng.integers(2, max(3, n)))
    matrix = random_label_matrix(
        n, m, k, rng, missing_rate=missing, dtype=np.int64, guard_first_row=True
    )
    return matrix, k


def random_aggregation_instance(
    n: int, m: int, k: int, seed: int
) -> tuple[np.ndarray, CorrelationInstance]:
    """A random aggregation problem: m clusterings of n objects with <= k clusters."""
    rng = np.random.default_rng(seed)
    matrix = as_label_matrix([rng.integers(0, k, size=n) for _ in range(m)])
    return matrix, CorrelationInstance.from_label_matrix(matrix)


def planted_instance(
    n: int, m: int, groups: int, flip: float, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Clusterings that all agree on `groups` planted clusters, with noise.

    Each of the ``m`` input clusterings is the planted partition with a
    ``flip`` fraction of objects relabelled at random.  Returns
    ``(truth_labels, label_matrix)``.
    """
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, groups, size=n)
    columns = []
    for _ in range(m):
        noisy = truth.copy()
        flips = rng.random(n) < flip
        noisy[flips] = rng.integers(0, groups, size=int(flips.sum()))
        columns.append(noisy)
    return truth, as_label_matrix(columns)


def far_atoms_problem() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Five atoms, mutually >1/2 apart, duplicated into 14 contiguous rows.

    Distinct atoms disagree in at least 5 of 6 columns (distance >= 5/6),
    so in-shard AGGLOMERATIVE merges exactly the duplicate groups and
    nothing else; the multiplicities put the 2-shard contiguous boundary
    (7 | 7) on a group edge, so sharding loses no information at all.
    """
    base = np.array(
        [
            [0, 0, 0, 0, 0, 0],
            [1, 1, 1, 1, 0, 1],
            [2, 2, 2, 2, 1, 0],
            [3, 3, 3, 3, 1, 1],
            [4, 4, 4, 4, 2, 0],
        ],
        dtype=np.int32,
    )
    copies = np.array([3, 2, 2, 3, 4])
    return np.repeat(base, copies, axis=0), base, copies
