"""Tests for cluster profiling (repro.metrics.profiles)."""

import numpy as np
import pytest

from repro import Clustering
from repro.datasets import CategoricalDataset, generate_census
from repro.metrics import describe_clusters


def toy_dataset():
    # Two clear groups: group A all (0, 0), group B all (1, 1); attribute
    # "c" is constant (never a distinctive trait).
    data = np.array(
        [[0, 0, 0]] * 5 + [[1, 1, 0]] * 5,
        dtype=np.int32,
    )
    return CategoricalDataset(
        name="toy",
        data=data,
        attribute_names=["a", "b", "c"],
        value_names=[["a0", "a1"], ["b0", "b1"], ["c0"]],
    )


class TestDescribeClusters:
    def test_traits_found(self):
        dataset = toy_dataset()
        clustering = Clustering([0] * 5 + [1] * 5)
        profiles = describe_clusters(dataset, clustering)
        assert len(profiles) == 2
        first = profiles[0]
        named = {(attribute, value) for attribute, value, _ in first.traits}
        assert named <= {("a", "a0"), ("b", "b0"), ("a", "a1"), ("b", "b1")}
        assert all(prevalence == 1.0 for _, _, prevalence in first.traits)

    def test_constant_attribute_excluded(self):
        dataset = toy_dataset()
        clustering = Clustering([0] * 5 + [1] * 5)
        profiles = describe_clusters(dataset, clustering)
        for profile in profiles:
            assert all(attribute != "c" for attribute, _, _ in profile.traits)

    def test_min_size_skips_singletons(self):
        dataset = toy_dataset()
        clustering = Clustering([0] * 9 + [1])
        profiles = describe_clusters(dataset, clustering, min_size=2)
        assert len(profiles) == 1

    def test_sorted_by_size(self):
        census = generate_census(n=1500, rng=0)
        clustering = Clustering(np.arange(1500) % 7)
        profiles = describe_clusters(census, clustering)
        sizes = [profile.size for profile in profiles]
        assert sizes == sorted(sizes, reverse=True)

    def test_summary_renders(self):
        dataset = toy_dataset()
        clustering = Clustering([0] * 5 + [1] * 5)
        text = describe_clusters(dataset, clustering)[0].summary()
        assert "cluster" in text and "n=5" in text

    def test_size_mismatch_rejected(self):
        dataset = toy_dataset()
        with pytest.raises(ValueError):
            describe_clusters(dataset, Clustering([0, 1]))

    def test_max_traits_cap(self):
        census = generate_census(n=2000, rng=1)
        from repro import aggregate

        result = aggregate(
            census.label_matrix(), method="sampling", sample_size=400, rng=0,
            compute_lower_bound=False,
        )
        profiles = describe_clusters(census, result.clustering, max_traits=2)
        assert all(len(profile.traits) <= 2 for profile in profiles)
