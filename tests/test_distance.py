"""Tests for the Mirkin disagreement distance (repro.core.distance)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Clustering, clustering_distance
from repro.core.distance import (
    distance_matrix,
    expected_column_distance,
    normalized_distance,
    pairs_within,
    total_disagreement,
)
from repro.core.labels import MISSING, as_label_matrix

clusterings = st.lists(st.integers(0, 4), min_size=2, max_size=25).map(Clustering)


def brute_force_distance(first: Clustering, second: Clustering) -> int:
    """Reference O(n^2) pair enumeration."""
    count = 0
    for u, v in itertools.combinations(range(first.n), 2):
        if first.same_cluster(u, v) != second.same_cluster(u, v):
            count += 1
    return count


class TestPairsWithin:
    def test_known_values(self):
        assert pairs_within(np.array([3, 2, 1])) == 3 + 1 + 0

    def test_empty(self):
        assert pairs_within(np.array([], dtype=int)) == 0


class TestClusteringDistance:
    def test_figure1_example(self, figure1_clusterings, figure1_optimum):
        distances = [clustering_distance(c, figure1_optimum) for c in figure1_clusterings]
        assert distances == [4, 1, 0]  # paper: 4 vs C1, 1 vs C2, identical to C3

    def test_identical_is_zero(self):
        c = Clustering([0, 1, 1, 2])
        assert clustering_distance(c, c) == 0

    def test_symmetry(self):
        a, b = Clustering([0, 0, 1, 1]), Clustering([0, 1, 0, 1])
        assert clustering_distance(a, b) == clustering_distance(b, a)

    def test_singletons_vs_single_cluster(self):
        n = 7
        distance = clustering_distance(Clustering.singletons(n), Clustering.single_cluster(n))
        assert distance == n * (n - 1) // 2

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            clustering_distance(Clustering([0, 1]), Clustering([0, 1, 2]))

    @given(clusterings, st.integers(0, 4))
    def test_matches_brute_force(self, first, k_seed):
        rng = np.random.default_rng(k_seed)
        second = Clustering(rng.integers(0, 3, size=first.n))
        assert clustering_distance(first, second) == brute_force_distance(first, second)

    @settings(max_examples=40)
    @given(st.integers(0, 10_000))
    def test_triangle_inequality(self, seed):
        """Observation 1 of the paper: d_V is a metric."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 20))
        a, b, c = (Clustering(rng.integers(0, 4, size=n)) for _ in range(3))
        assert clustering_distance(a, c) <= (
            clustering_distance(a, b) + clustering_distance(b, c)
        )

    @given(clusterings)
    def test_zero_iff_equal(self, first):
        rng = np.random.default_rng(first.n)
        second = Clustering(rng.integers(0, 3, size=first.n))
        distance = clustering_distance(first, second)
        assert (distance == 0) == (first == second)


class TestExpectedColumnDistance:
    def test_no_missing_matches_exact(self):
        column = np.array([0, 0, 1, 1, 2])
        target = Clustering([0, 1, 0, 1, 2])
        expected = expected_column_distance(column, target)
        assert expected == clustering_distance(Clustering(column), target)

    def test_all_missing_column_is_pure_coin_flip(self):
        # Column entirely missing is invalid input per validate, but the
        # distance function itself handles it: every pair is a coin flip.
        column = np.full(4, MISSING)
        target = Clustering([0, 0, 1, 1])
        value = expected_column_distance(column, target, p=0.5)
        assert value == pytest.approx(0.5 * 6)

    def test_p_one_trusts_joins(self):
        # p=1: missing-involved pairs are always reported together, so the
        # clustering only pays for the pairs it splits.
        column = np.array([MISSING, 0, 0])
        together = Clustering([0, 0, 0])
        apart = Clustering([0, 1, 2])
        assert expected_column_distance(column, together, p=1.0) == 0.0
        assert expected_column_distance(column, apart, p=1.0) == pytest.approx(3.0)

    def test_p_zero_trusts_splits(self):
        column = np.array([MISSING, 0, 0])
        together = Clustering([0, 0, 0])
        assert expected_column_distance(column, together, p=0.0) == pytest.approx(2.0)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            expected_column_distance(np.array([0, 1]), Clustering([0, 1]), p=1.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expected_column_distance(np.array([0, 1]), Clustering([0, 1, 2]))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_monte_carlo_agreement(self, seed):
        """The closed form matches simulating the coin flips."""
        rng = np.random.default_rng(seed)
        n = 8
        column = rng.integers(0, 3, size=n).astype(np.int64)
        column[rng.random(n) < 0.3] = MISSING
        target = Clustering(rng.integers(0, 3, size=n))
        p = 0.5
        analytic = expected_column_distance(column, target, p=p)

        simulation_rng = np.random.default_rng(123)
        trials = 3000
        total = 0.0
        present = column != MISSING
        for _ in range(trials):
            for u in range(n):
                for v in range(u + 1, n):
                    same_target = target.same_cluster(u, v)
                    if present[u] and present[v]:
                        same_column = column[u] == column[v]
                    else:
                        same_column = simulation_rng.random() < p
                    total += same_column != same_target
        assert analytic == pytest.approx(total / trials, rel=0.05)


class TestTotalDisagreement:
    def test_figure1_optimum_value(self, figure1_clusterings, figure1_optimum):
        assert total_disagreement(figure1_clusterings, figure1_optimum) == 5.0

    def test_accepts_matrix_and_sequence(self, figure1_clusterings, figure1_optimum):
        matrix = as_label_matrix(figure1_clusterings)
        assert total_disagreement(matrix, figure1_optimum) == total_disagreement(
            figure1_clusterings, figure1_optimum
        )

    def test_shape_mismatch_rejected(self, figure1_clusterings):
        with pytest.raises(ValueError):
            total_disagreement(figure1_clusterings, Clustering([0, 1]))

    def test_input_is_its_own_best_friend(self, figure1_clusterings):
        # D(C_i) computed against the set including itself counts 0 for itself.
        c = figure1_clusterings[2]
        alone = total_disagreement([c], c)
        assert alone == 0.0


class TestNormalizedAndMatrix:
    def test_normalized_range(self):
        a = Clustering.singletons(6)
        b = Clustering.single_cluster(6)
        assert normalized_distance(a, b) == 1.0
        assert normalized_distance(a, a) == 0.0

    def test_distance_matrix_symmetric_zero_diagonal(self, figure1_clusterings):
        matrix = distance_matrix(figure1_clusterings)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diagonal(matrix) == 0)

    def test_distance_matrix_values(self, figure1_clusterings):
        matrix = distance_matrix(figure1_clusterings)
        c1, c2, c3 = figure1_clusterings
        assert matrix[0, 1] == clustering_distance(c1, c2)
        assert matrix[1, 2] == clustering_distance(c2, c3)
