"""Tests for the k-means substrate (repro.cluster.kmeans)."""

import numpy as np
import pytest

from repro.cluster import kmeans
from repro.cluster.kmeans import KMeansResult


def three_blobs(seed=0, sizes=(40, 40, 40)):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.vstack(
        [rng.normal(center, 0.3, size=(size, 2)) for center, size in zip(centers, sizes)]
    )
    truth = np.repeat(np.arange(3), sizes)
    return points, truth


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points, truth = three_blobs()
        result = kmeans(points, 3, rng=0)
        # Perfect recovery up to label names: within each true blob all
        # labels agree, across blobs they differ.
        for blob in range(3):
            blob_labels = result.labels[truth == blob]
            assert len(set(blob_labels.tolist())) == 1
        assert len(set(result.labels.tolist())) == 3

    def test_result_type_and_fields(self):
        points, _ = three_blobs()
        result = kmeans(points, 3, rng=0)
        assert isinstance(result, KMeansResult)
        assert result.centers.shape == (3, 2)
        assert result.inertia >= 0
        assert result.converged
        assert result.iterations >= 1

    def test_inertia_decreases_with_k(self):
        points, _ = three_blobs()
        inertias = [kmeans(points, k, rng=0, n_init=3).inertia for k in (1, 2, 3, 6)]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_k_equals_n(self):
        points = np.random.default_rng(0).normal(size=(5, 2))
        result = kmeans(points, 5, rng=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_k_one(self):
        points, _ = three_blobs()
        result = kmeans(points, 1, rng=0)
        assert np.allclose(result.centers[0], points.mean(axis=0))

    def test_invalid_k(self):
        points, _ = three_blobs()
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, len(points) + 1)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(10), 2)

    def test_invalid_n_init(self):
        points, _ = three_blobs()
        with pytest.raises(ValueError):
            kmeans(points, 2, n_init=0)

    def test_deterministic_under_seed(self):
        points, _ = three_blobs()
        a = kmeans(points, 4, rng=7)
        b = kmeans(points, 4, rng=7)
        assert np.array_equal(a.labels, b.labels)

    def test_random_init_mode(self):
        points, _ = three_blobs()
        result = kmeans(points, 3, init="random", rng=0)
        assert result.inertia < 1000

    def test_unknown_init_rejected(self):
        points, _ = three_blobs()
        with pytest.raises(ValueError):
            kmeans(points, 2, init="pca")

    def test_no_empty_clusters(self):
        # Near-duplicated points invite empty clusters; repair must fill them.
        rng = np.random.default_rng(0)
        points = np.vstack(
            [rng.normal(0.0, 0.01, size=(20, 2)), rng.normal(5.0, 0.01, size=(2, 2))]
        )
        result = kmeans(points, 3, rng=0, n_init=5)
        assert len(np.unique(result.labels)) == 3

    def test_inertia_matches_labels(self):
        points, _ = three_blobs()
        result = kmeans(points, 3, rng=1)
        explicit = sum(
            float(((points[result.labels == c] - result.centers[c]) ** 2).sum())
            for c in range(3)
        )
        assert result.inertia == pytest.approx(explicit, rel=1e-9)
