"""Smoke tests: the fast example scripts run end to end.

The heavyweight examples (100K-point sampling, privacy-preserving
aggregation over 4000 people) are exercised by the benchmark suite's
equivalent workloads; here we run the quick ones as a user would.
"""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "Optimal aggregate" in out
    assert "5 disagreements" in out


def test_categorical_votes_runs(capsys):
    run_example("categorical_votes.py")
    out = capsys.readouterr().out
    assert "AGGLOMERATIVE consensus vs party labels" in out


def test_movies_outliers_runs(capsys):
    run_example("movies_outliers.py")
    out = capsys.readouterr().out
    assert "isolated in tiny clusters: 8 / 8" in out


def test_heterogeneous_data_runs(capsys):
    run_example("heterogeneous_data.py")
    out = capsys.readouterr().out
    assert "aggregated: k =" in out


def test_large_scale_sampling_runs_small(capsys):
    run_example("large_scale_sampling.py", ["6000"])
    out = capsys.readouterr().out
    assert "consensus:" in out
