"""Seed-stability regression: same integer seed, bit-identical output.

The library's determinism contract says every stochastic entry point is a
pure function of its inputs plus one integer seed — across repeated runs
*and* across worker counts (``REPRO_JOBS``).  These tests run each
stochastic method twice under identical seeds and require label-for-label
identical clusterings, so any accidental global-RNG leak or
scheduling-dependent seed derivation fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregate import STOCHASTIC_METHODS, aggregate

_N, _M, _K = 60, 5, 4


def _matrix(seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, _K, size=(_N, _M)).astype(np.int32)


def _run(method: str, seed: int, **params) -> np.ndarray:
    result = aggregate(_matrix(), method=method, rng=seed, compute_lower_bound=False, **params)
    return result.clustering.labels.copy()


@pytest.mark.parametrize("method", sorted(STOCHASTIC_METHODS))
def test_stochastic_methods_are_bit_identical_across_runs(method: str) -> None:
    first = _run(method, seed=123)
    second = _run(method, seed=123)
    assert np.array_equal(first, second), f"{method} diverged under a fixed seed"


@pytest.mark.parametrize("method", sorted(STOCHASTIC_METHODS))
def test_seed_stability_under_two_workers(method: str, monkeypatch) -> None:
    """REPRO_JOBS=2 must not change any seeded output (bit-identity of the
    parallel backend is part of the determinism contract)."""
    serial = _run(method, seed=7)
    monkeypatch.setenv("REPRO_JOBS", "2")
    parallel = _run(method, seed=7)
    assert np.array_equal(serial, parallel), (
        f"{method} output depends on REPRO_JOBS — parallel backend broke bit-identity"
    )


def test_portfolio_runs_are_stable_across_runs_and_jobs(monkeypatch) -> None:
    from repro.parallel.portfolio import portfolio

    matrix = _matrix(3)
    first = portfolio(matrix, rng=11, n_jobs=1)
    second = portfolio(matrix, rng=11, n_jobs=1)
    assert np.array_equal(first.best.labels, second.best.labels)
    assert first.best_method == second.best_method
    assert [r.cost for r in first.runs] == [r.cost for r in second.runs]

    monkeypatch.setenv("REPRO_JOBS", "2")
    fanned = portfolio(matrix, rng=11)
    assert np.array_equal(first.best.labels, fanned.best.labels)
    assert first.best_method == fanned.best_method
    assert [r.cost for r in first.runs] == [r.cost for r in fanned.runs]


def test_streaming_engine_is_stable_across_runs() -> None:
    from repro.stream import StreamingAggregator

    matrix = _matrix(5)

    def replay() -> tuple[np.ndarray, float]:
        engine = StreamingAggregator(_N, rng=42)
        for j in range(matrix.shape[1]):
            engine.observe(matrix[:, j])
        return engine.consensus.labels.copy(), engine.cost()

    labels_a, cost_a = replay()
    labels_b, cost_b = replay()
    assert np.array_equal(labels_a, labels_b)
    assert cost_a == cost_b


def test_streaming_engine_is_stable_under_two_workers(monkeypatch) -> None:
    from repro.stream import StreamingAggregator

    matrix = _matrix(5)

    def replay() -> np.ndarray:
        engine = StreamingAggregator(_N, rng=42)
        for j in range(matrix.shape[1]):
            engine.observe(matrix[:, j])
        return engine.consensus.labels.copy()

    serial = replay()
    monkeypatch.setenv("REPRO_JOBS", "2")
    assert np.array_equal(serial, replay())
