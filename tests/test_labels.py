"""Tests for repro.core.labels (label matrices and contingency tables)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Clustering
from repro.core.labels import (
    MISSING,
    as_label_matrix,
    columns_as_clusterings,
    compact_columns,
    contingency_table,
    validate_label_matrix,
)


class TestAsLabelMatrix:
    def test_from_clusterings(self, figure1_clusterings):
        matrix = as_label_matrix(figure1_clusterings)
        assert matrix.shape == (6, 3)
        assert matrix.dtype == np.int32

    def test_from_raw_arrays_with_missing(self):
        matrix = as_label_matrix([np.array([0, 1, MISSING]), np.array([0, 0, 1])])
        assert matrix[2, 0] == MISSING

    def test_mixed_inputs(self):
        matrix = as_label_matrix([Clustering([0, 1]), [1, 1]])
        assert matrix.shape == (2, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            as_label_matrix([])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            as_label_matrix([[0, 1], [0, 1, 2]])

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            as_label_matrix([np.array([0.5, 1.0])])


class TestValidate:
    def test_accepts_well_formed(self):
        validate_label_matrix(np.array([[0, 1], [1, MISSING]], dtype=np.int32))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            validate_label_matrix(np.array([0, 1]))

    def test_rejects_below_missing(self):
        with pytest.raises(ValueError):
            validate_label_matrix(np.array([[0], [-2]]))

    def test_rejects_all_missing_column(self):
        with pytest.raises(ValueError):
            validate_label_matrix(np.array([[MISSING, 0], [MISSING, 1]]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_label_matrix(np.zeros((0, 2), dtype=np.int32))


class TestColumnsAsClusterings:
    def test_round_trip(self, figure1_clusterings):
        matrix = as_label_matrix(figure1_clusterings)
        back = columns_as_clusterings(matrix)
        assert back == figure1_clusterings

    def test_missing_rejected(self):
        matrix = np.array([[0, 1], [MISSING, 0]], dtype=np.int32)
        with pytest.raises(ValueError):
            columns_as_clusterings(matrix)


class TestContingency:
    def test_known_table(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        table = contingency_table(a, b)
        assert table.tolist() == [[1, 1], [1, 1]]

    def test_missing_excluded(self):
        a = np.array([0, 0, MISSING])
        b = np.array([0, 1, 1])
        table = contingency_table(a, b)
        assert int(table.sum()) == 2

    def test_identity(self):
        a = np.array([0, 1, 2, 0])
        table = contingency_table(a, a)
        assert np.array_equal(table, np.diag([2, 1, 1]))

    def test_all_missing_gives_empty(self):
        a = np.full(3, MISSING)
        table = contingency_table(a, np.array([0, 1, 2]))
        assert table.shape == (0, 0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            contingency_table(np.array([0, 1]), np.array([0]))

    @given(
        st.lists(st.integers(0, 4), min_size=2, max_size=30),
        st.lists(st.integers(0, 4), min_size=2, max_size=30),
    )
    def test_total_equals_n(self, a, b):
        size = min(len(a), len(b))
        table = contingency_table(np.array(a[:size]), np.array(b[:size]))
        assert int(table.sum()) == size

    @given(st.lists(st.integers(0, 3), min_size=2, max_size=25))
    def test_row_sums_are_cluster_sizes(self, labels):
        arr = np.array(labels)
        table = contingency_table(arr, np.zeros(len(labels), dtype=int))
        assert np.array_equal(table[:, 0], np.bincount(arr))


class TestCompactColumns:
    def test_renumbers_sparse_labels(self):
        matrix = np.array([[10, 3], [10, 7], [20, 3]], dtype=np.int32)
        compacted = compact_columns(matrix)
        assert compacted[:, 0].tolist() == [0, 0, 1]
        assert compacted[:, 1].tolist() == [0, 1, 0]

    def test_preserves_missing(self):
        matrix = np.array([[5, MISSING], [MISSING, 2], [9, 2]], dtype=np.int32)
        compacted = compact_columns(matrix)
        assert compacted[1, 0] == MISSING
        assert compacted[0, 1] == MISSING

    def test_idempotent(self):
        matrix = np.array([[0, 1], [1, MISSING], [0, 0]], dtype=np.int32)
        once = compact_columns(matrix)
        assert np.array_equal(once, compact_columns(once))
