"""repolint rule tests: true positives, clean negatives, suppressions, CLI.

Each rule is exercised through :func:`repro.analysis.lint.lint_source` with
a synthetic ``path`` argument, because rule scoping (RPR002/003/005) keys
off the file's location inside the ``repro`` package tree.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.lint import RULES, Finding, lint_paths, lint_source, main

CORE = "src/repro/core/snippet.py"
ALGOS = "src/repro/algorithms/snippet.py"
OUTSIDE = "tests/snippet.py"


def codes(source: str, path: str = CORE) -> list[str]:
    return [finding.rule for finding in lint_source(textwrap.dedent(source), path=path)]


# ---------------------------------------------------------------------------
# RPR001: global-state RNG
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "import numpy as np\nx = np.random.rand(3)\n",
        "import numpy as np\nnp.random.seed(0)\n",
        "import numpy.random as npr\nnpr.shuffle([1, 2])\n",
        "from numpy import random\nx = random.rand(2)\n",
        "from numpy.random import rand\n",
        "import random\nx = random.random()\n",
        "from random import shuffle\n",
    ],
)
def test_rpr001_flags_global_rng(source: str) -> None:
    assert codes(source) == ["RPR001"]


@pytest.mark.parametrize(
    "source",
    [
        "import numpy as np\nrng = np.random.default_rng(0)\nx = rng.random(3)\n",
        "import numpy as np\ng = np.random.Generator(np.random.PCG64(1))\n",
        "from numpy.random import Generator, SeedSequence\n",
        "from random import Random\nr = Random(0)\nx = r.random()\n",
        # A local variable named `random` is not the stdlib module.
        "def f(random):\n    return random.choice([1])\n",
    ],
)
def test_rpr001_allows_generator_api(source: str) -> None:
    assert codes(source) == []


def test_rpr001_applies_outside_the_library_too() -> None:
    assert codes("import random\nrandom.seed(1)\n", path=OUTSIDE) == ["RPR001"]


# ---------------------------------------------------------------------------
# RPR002: Python-level pair loops
# ---------------------------------------------------------------------------

PAIR_LOOP = """
    def pair_sum(X, n):
        total = 0.0
        for i in range(n):
            for j in range(n):
                total += X[i, j]
        return total
"""

CHAINED_PAIR_LOOP = """
    def pair_sum(X, n):
        total = 0.0
        for i in range(n):
            for j in range(i):
                total += X[i][j]
        return total
"""

BLOCKED_LOOP = """
    def pair_sum(X, n, block):
        total = 0.0
        for start in range(0, n, block):
            stop = min(start + block, n)
            total += float(X[start:stop, :].sum())
        return total
"""


def test_rpr002_flags_nested_pair_loop() -> None:
    findings = lint_source(textwrap.dedent(PAIR_LOOP), path=CORE)
    assert [f.rule for f in findings] == ["RPR002"]
    # Reported at the outer loop.
    assert findings[0].line == 4


def test_rpr002_flags_chained_subscripts() -> None:
    assert codes(CHAINED_PAIR_LOOP) == ["RPR002"]


def test_rpr002_allows_blocked_kernels() -> None:
    assert codes(BLOCKED_LOOP) == []


def test_rpr002_allows_single_loops_and_non_pair_bodies() -> None:
    assert codes("def f(X, n):\n    for i in range(n):\n        X[i] = 0.0\n") == []
    assert (
        codes(
            "def f(X, n):\n"
            "    for i in range(n):\n"
            "        for j in range(n):\n"
            "            pass\n"
        )
        == []
    )


def test_rpr002_scoped_to_hot_packages() -> None:
    assert codes(PAIR_LOOP, path=OUTSIDE) == []
    assert codes(PAIR_LOOP, path="src/repro/datasets/snippet.py") == []


def test_rpr002_covers_the_algorithms_package() -> None:
    # The pivot module lives under algorithms/ and must stay inside the
    # pair-loop rule's scope — a sweep rewritten as a Python double loop
    # would silently lose the near-linear guarantee otherwise.
    assert codes(PAIR_LOOP, path=ALGOS) == ["RPR002"]
    assert codes(PAIR_LOOP, path="src/repro/algorithms/pivot.py") == ["RPR002"]


def test_pivot_module_is_lint_clean() -> None:
    """``src/repro/algorithms/pivot.py`` passes every repolint rule."""
    from pathlib import Path

    module = Path(__file__).resolve().parents[1] / "src/repro/algorithms/pivot.py"
    findings, checked = lint_paths([module])
    assert checked == 1
    assert findings == [], "\n".join(f.format() for f in findings)


# ---------------------------------------------------------------------------
# RPR003: allocations need an explicit dtype in kernel modules
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "alloc",
    ["np.zeros((3, 3))", "np.empty(5)", "np.ones(4)", "np.full(4, 1.5)"],
)
def test_rpr003_flags_dtypeless_allocations(alloc: str) -> None:
    assert codes(f"import numpy as np\nx = {alloc}\n") == ["RPR003"]


@pytest.mark.parametrize(
    "alloc",
    [
        "np.zeros((3, 3), dtype=np.float64)",
        "np.empty(5, np.float32)",  # positional dtype
        "np.full(4, 1.5, dtype=np.float64)",
        "np.zeros_like(y)",  # inherits dtype; not an RPR003 target
    ],
)
def test_rpr003_allows_explicit_dtype(alloc: str) -> None:
    assert codes(f"import numpy as np\ny = None\nx = {alloc}\n") == []


def test_rpr003_scoped_to_kernel_packages() -> None:
    source = "import numpy as np\nx = np.zeros(3)\n"
    assert codes(source, path=OUTSIDE) == []
    assert codes(source, path="src/repro/datasets/snippet.py") == []


# ---------------------------------------------------------------------------
# RPR004: mutable defaults and Clustering.labels mutation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "def f(items=[]):\n    return items\n",
        "def f(*, cache={}):\n    return cache\n",
        "def f(x=dict()):\n    return x\n",
        "def f(x=set()):\n    return x\n",
    ],
)
def test_rpr004_flags_mutable_defaults(source: str) -> None:
    assert codes(source) == ["RPR004"]


@pytest.mark.parametrize(
    "source",
    [
        "c.labels[0] = 1\n",
        "c.labels[2:4] = 0\n",
        "c.labels[0] += 1\n",
        "c.labels.sort()\n",
        "c.labels.fill(0)\n",
    ],
)
def test_rpr004_flags_labels_mutation(source: str) -> None:
    assert codes(source) == ["RPR004"]


@pytest.mark.parametrize(
    "source",
    [
        "def f(items=None):\n    return items or []\n",
        "def f(x=()):\n    return x\n",
        "labels = c.labels.copy()\nlabels[0] = 1\n",
        "k = c.labels.max()\n",  # non-mutating method is fine
    ],
)
def test_rpr004_clean_patterns(source: str) -> None:
    assert codes(source) == []


# ---------------------------------------------------------------------------
# RPR005: the rng signature convention (library files only)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "def sample(data, seed=0):\n    return data\n",
        "def sample(data, random_state=None):\n    return data\n",
        "def sample(data, rng=None):\n    return data\n",  # missing annotation
        "import numpy as np\n"
        "def sample(data, rng: np.random.Generator = None):\n    return data\n",
    ],
)
def test_rpr005_flags_nonconforming_signatures(source: str) -> None:
    assert codes(source, path=ALGOS) == ["RPR005"]


@pytest.mark.parametrize(
    "source",
    [
        "import numpy as np\n"
        "def sample(data, rng: np.random.Generator | int | None = None):\n"
        "    return data\n",
        "def _helper(rng):\n    return rng\n",  # private functions are exempt
        "def sample(data):\n    return data\n",
    ],
)
def test_rpr005_clean_signatures(source: str) -> None:
    assert codes(source, path=ALGOS) == []


def test_rpr005_scoped_to_library_files() -> None:
    assert codes("def sample(data, seed=0):\n    return data\n", path=OUTSIDE) == []


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------


def test_line_suppression_silences_matching_rule() -> None:
    source = "import random\nrandom.seed(1)  # repolint: disable=RPR001\n"
    assert codes(source) == []


def test_line_suppression_ignores_other_rules() -> None:
    source = "import random\nrandom.seed(1)  # repolint: disable=RPR003\n"
    assert codes(source) == ["RPR001"]


def test_line_suppression_accepts_comma_separated_codes() -> None:
    source = "import random\nrandom.seed(1)  # repolint: disable=RPR003, RPR001\n"
    assert codes(source) == []


def test_file_wide_suppression() -> None:
    source = (
        "# repolint: disable-file=RPR001\n"
        "import random\n"
        "random.seed(1)\n"
        "random.random()\n"
    )
    assert codes(source) == []


def test_syntax_error_reports_rpr000() -> None:
    findings = lint_source("def broken(:\n", path=OUTSIDE)
    assert [f.rule for f in findings] == ["RPR000"]


# ---------------------------------------------------------------------------
# RPR006: multiprocessing pools outside repro.parallel
# ---------------------------------------------------------------------------

PARALLEL = "src/repro/parallel/snippet.py"


@pytest.mark.parametrize(
    "source",
    [
        "from multiprocessing import Pool\n",
        "from multiprocessing.pool import Pool\n",
        "from multiprocessing.pool import ThreadPool\n",
        "from multiprocessing.dummy import Pool\n",
        "import multiprocessing\np = multiprocessing.Pool(2)\n",
        "import multiprocessing as mp\np = mp.Pool(2)\n",
        "import multiprocessing as mp\np = mp.pool.Pool(2)\n",
        "import multiprocessing.pool as mpp\np = mpp.Pool(2)\n",
        "from multiprocessing import pool\np = pool.Pool(2)\n",
        "import multiprocessing as mp\np = mp.get_context('fork').Pool(2)\n",
        "from multiprocessing import get_context\np = get_context('fork').Pool(2)\n",
    ],
)
def test_rpr006_flags_direct_pools(source: str) -> None:
    assert codes(source) == ["RPR006"]
    assert codes(source, path=OUTSIDE) == ["RPR006"]


@pytest.mark.parametrize(
    "source",
    [
        "from multiprocessing import Pool\n",
        "import multiprocessing as mp\np = mp.Pool(2)\n",
        "from multiprocessing import get_context\np = get_context('fork').Pool(2)\n",
    ],
)
def test_rpr006_exempts_the_parallel_package(source: str) -> None:
    assert codes(source, path=PARALLEL) == []


@pytest.mark.parametrize(
    "source",
    [
        "import multiprocessing\n",
        "from multiprocessing import shared_memory\n",
        "from multiprocessing import get_context\nctx = get_context('fork')\n",
        "from repro.parallel.build import pool\nworkers = pool(4)\n",
        # An unrelated object with a Pool attribute is not multiprocessing.
        "import threading\np = threading.Pool(2)\n",
    ],
)
def test_rpr006_allows_non_pool_multiprocessing(source: str) -> None:
    assert codes(source) == []


def test_rpr006_suppressible_inline() -> None:
    source = "from multiprocessing import Pool  # repolint: disable=RPR006\n"
    assert codes(source) == []


# ---------------------------------------------------------------------------
# RPR007: raw perf_counter outside repro.obs
# ---------------------------------------------------------------------------

OBS = "src/repro/obs/snippet.py"


@pytest.mark.parametrize(
    "source",
    [
        "import time\nt = time.perf_counter()\n",
        "import time\nt = time.perf_counter_ns()\n",
        "import time as t\nstart = t.perf_counter()\n",
        "from time import perf_counter\n",
        "from time import perf_counter_ns\n",
        "from time import perf_counter as clock\n",
    ],
)
def test_rpr007_flags_raw_perf_counter(source: str) -> None:
    assert codes(source) == ["RPR007"]
    assert codes(source, path=ALGOS) == ["RPR007"]


@pytest.mark.parametrize(
    "source",
    [
        "import time\nt = time.perf_counter()\n",
        "from time import perf_counter\n",
    ],
)
def test_rpr007_exempts_the_obs_package(source: str) -> None:
    assert codes(source, path=OBS) == []


@pytest.mark.parametrize(
    "source",
    [
        "import time\nt = time.perf_counter()\n",
        "from time import perf_counter\n",
    ],
)
def test_rpr007_scoped_to_library_files(source: str) -> None:
    # Tests and benchmarks may time things however they like.
    assert codes(source, path=OUTSIDE) == []
    assert codes(source, path="benchmarks/bench_x.py") == []


@pytest.mark.parametrize(
    "source",
    [
        # Non-profiling time functions stay legal everywhere.
        "import time\ntime.sleep(0.1)\n",
        "import time\nnow = time.monotonic()\n",
        "from time import sleep\n",
        # A local variable named `time` is not the stdlib module.
        "def f(time):\n    return time.perf_counter()\n",
    ],
)
def test_rpr007_allows_other_time_functions(source: str) -> None:
    assert codes(source) == []


def test_rpr007_suppressible_inline() -> None:
    source = "import time\nt = time.perf_counter()  # repolint: disable=RPR007\n"
    assert codes(source) == []


# ---------------------------------------------------------------------------
# RPR008: raw pair-matrix access outside repro.core
# ---------------------------------------------------------------------------

BUILD = "src/repro/parallel/build.py"
PARALLEL = "src/repro/parallel/portfolio.py"


@pytest.mark.parametrize(
    "source",
    [
        "def f(instance):\n    return instance.X.sum()\n",
        "def f(instance):\n    return instance._X[0]\n",
        "def f(self):\n    self._X = None\n",
        "def f(instance, w):\n    return instance.X.astype(float) @ w\n",
    ],
)
def test_rpr008_flags_matrix_access_outside_core(source: str) -> None:
    assert codes(source, path=ALGOS) == ["RPR008"]
    assert codes(source, path=PARALLEL) == ["RPR008"]
    assert codes(source, path="src/repro/stream/engine.py") == ["RPR008"]


@pytest.mark.parametrize(
    "source",
    [
        "def f(instance):\n    return instance.X.sum()\n",
        "def f(self):\n    return self._X[0]\n",
    ],
)
def test_rpr008_exempts_core_and_the_shared_memory_fanout(source: str) -> None:
    assert codes(source) == []  # CORE path
    assert codes(source, path=BUILD) == []


def test_rpr008_scoped_to_library_files() -> None:
    # Tests and benchmarks may poke the raw matrix freely.
    source = "def f(instance):\n    return instance.X\n"
    assert codes(source, path=OUTSIDE) == []
    assert codes(source, path="benchmarks/bench_x.py") == []


@pytest.mark.parametrize(
    "source",
    [
        # Other attribute names are untouched, including near-misses.
        "def f(instance):\n    return instance.Xs\n",
        "def f(instance):\n    return instance.backend.row_block(0, 8)\n",
        "def f(self):\n    return self._X_buffer\n",
    ],
)
def test_rpr008_allows_other_attributes(source: str) -> None:
    assert codes(source, path=ALGOS) == []


def test_rpr008_suppressible_inline() -> None:
    source = "def f(instance):\n    return instance.X  # repolint: disable=RPR008\n"
    assert codes(source, path=ALGOS) == []


# ---------------------------------------------------------------------------
# RPR009: blocking calls inside async def bodies (repro.serve only)
# ---------------------------------------------------------------------------

SERVE = "src/repro/serve/snippet.py"


@pytest.mark.parametrize(
    "source",
    [
        "import time\nasync def h():\n    time.sleep(1)\n",
        "from time import sleep\nasync def h():\n    sleep(0.1)\n",
        "async def h():\n    open('x')\n",
        "import numpy as np\nasync def h():\n    np.load('x.npz')\n",
        "import numpy as np\nasync def h():\n    np.savez_compressed('x.npz')\n",
        "async def h(path):\n    path.read_text()\n",
        "async def h(path):\n    path.write_bytes(b'x')\n",
        "from repro.parallel.build import pool\nasync def h():\n    pool(4)\n",
        "from repro.parallel import build\nasync def h():\n    build.pool(4)\n",
        "from repro.parallel.build import pool\nasync def h():\n    pool(4).map(str, [1])\n",
    ],
)
def test_rpr009_flags_blocking_calls_in_async_defs(source: str) -> None:
    assert "RPR009" in codes(source, path=SERVE)


@pytest.mark.parametrize(
    "source",
    [
        # Sync functions may block: the worker-thread targets live there.
        "import time\ndef apply():\n    time.sleep(1)\n    open('x')\n",
        # The sanctioned pattern: hand blocking work to the executor.
        "async def h(loop, fn):\n    await loop.run_in_executor(None, fn)\n",
        "import asyncio\nasync def h():\n    await asyncio.sleep(0.1)\n",
        # A sync helper nested inside an async def is executor fodder, not
        # event-loop code.
        "async def h():\n    def inner():\n        open('x')\n",
        # Non-file numpy stays usable in handlers.
        "import numpy as np\nasync def h(a):\n    return np.asarray(a)\n",
    ],
)
def test_rpr009_clean_async_patterns(source: str) -> None:
    assert codes(source, path=SERVE) == []


def test_rpr009_scoped_to_the_serve_package() -> None:
    source = "import time\nasync def h():\n    time.sleep(1)\n"
    assert codes(source, path=CORE) == []
    assert codes(source, path=OUTSIDE) == []


def test_rpr009_suppressible_inline() -> None:
    source = "async def h():\n    open('x')  # repolint: disable=RPR009\n"
    assert codes(source, path=SERVE) == []


# ---------------------------------------------------------------------------
# Findings, path handling, CLI
# ---------------------------------------------------------------------------


def test_finding_format_and_dict_round_trip() -> None:
    finding = Finding(path="a.py", line=3, col=7, rule="RPR001", message="boom")
    assert finding.format() == "a.py:3:7: RPR001 boom"
    assert finding.as_dict() == {
        "path": "a.py",
        "line": 3,
        "col": 7,
        "rule": "RPR001",
        "message": "boom",
    }


def test_lint_paths_walks_directories(tmp_path) -> None:
    package = tmp_path / "repro" / "core"
    package.mkdir(parents=True)
    (package / "bad.py").write_text("import numpy as np\nx = np.zeros(3)\n")
    (package / "good.py").write_text("import numpy as np\nx = np.zeros(3, dtype=np.float64)\n")
    findings, checked = lint_paths([tmp_path])
    assert checked == 2
    assert [f.rule for f in findings] == ["RPR003"]


def test_main_exit_codes(tmp_path, capsys) -> None:
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nrandom.seed(1)\n")

    assert main([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out
    assert main([str(dirty)]) == 1
    assert "RPR001" in capsys.readouterr().out
    assert main([]) == 2
    assert main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule in RULES:
        assert rule in listing


def test_main_json_reports_every_rule_id(tmp_path, capsys) -> None:
    """Acceptance check: one fixture file per rule, each id surfaces in --json."""
    core = tmp_path / "repro" / "core"
    algos = tmp_path / "repro" / "algorithms"
    core.mkdir(parents=True)
    algos.mkdir(parents=True)
    (core / "r1.py").write_text("import random\nrandom.seed(1)\n")
    (core / "r2.py").write_text(textwrap.dedent(PAIR_LOOP))
    (core / "r3.py").write_text("import numpy as np\nx = np.zeros(3)\n")
    (core / "r4.py").write_text("def f(items=[]):\n    return items\n")
    (algos / "r5.py").write_text("def sample(data, seed=0):\n    return data\n")
    (core / "r6.py").write_text("from multiprocessing import Pool\n")
    (core / "r7.py").write_text("from time import perf_counter\n")
    (algos / "r8.py").write_text("def f(instance):\n    return instance.X\n")
    serve = tmp_path / "repro" / "serve"
    serve.mkdir(parents=True)
    (serve / "r9.py").write_text("import time\nasync def h():\n    time.sleep(1)\n")

    exit_code = main(["--json", str(tmp_path)])
    report = json.loads(capsys.readouterr().out)

    assert exit_code == 1
    assert report["files_checked"] == 9
    seen = {finding["rule"] for finding in report["findings"]}
    assert seen == {
        "RPR001",
        "RPR002",
        "RPR003",
        "RPR004",
        "RPR005",
        "RPR006",
        "RPR007",
        "RPR008",
        "RPR009",
    }
    by_rule = {f["rule"]: f for f in report["findings"]}
    assert by_rule["RPR001"]["path"].endswith("r1.py")
    assert by_rule["RPR005"]["path"].endswith("r5.py")
    assert by_rule["RPR006"]["path"].endswith("r6.py")
    assert by_rule["RPR007"]["path"].endswith("r7.py")
    assert by_rule["RPR008"]["path"].endswith("r8.py")
    assert by_rule["RPR009"]["path"].endswith("r9.py")


def test_repository_is_lint_clean() -> None:
    """The shipped tree must satisfy its own linter (mirrors the CI gate)."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[1]
    findings, checked = lint_paths([root / "src", root / "tests"])
    assert checked > 0
    assert findings == [], "\n".join(f.format() for f in findings)


# ---------------------------------------------------------------------------
# RPR014: hand-rolled method dispatch outside repro.registry
# ---------------------------------------------------------------------------


def test_rpr014_flags_method_dispatch_dict() -> None:
    source = """\
    _METHODS = {"balls": balls, "furthest": furthest}
    """
    assert codes(source) == ["RPR014"]


def test_rpr014_flags_annotated_and_class_level_tables() -> None:
    annotated = 'SOLVERS: dict = {"a": solve_a, "b": lambda x: x}\n'
    assert codes(annotated) == ["RPR014"]
    class_level = """\
    class Runner:
        DISPATCH = {"a": run_a, "b": run_b}
    """
    assert codes(class_level) == ["RPR014"]


def test_rpr014_flags_method_elif_chain() -> None:
    source = """\
    def solve(method, instance):
        if method == "balls":
            return balls(instance)
        elif method == "furthest":
            return furthest(instance)
        elif method in ("agglomerative", "local-search"):
            return agglomerative(instance)
    """
    assert codes(source) == ["RPR014"]


def test_rpr014_flags_attribute_and_subscript_selectors() -> None:
    source = """\
    def route(args, spec):
        if args.method == "a":
            pass
        elif args.method == "b":
            pass
        elif args.method == "c":
            pass
    """
    assert codes(source) == ["RPR014"]
    subscript = """\
    def route(spec):
        if spec["method"] == "a":
            pass
        elif spec["method"] == "b":
            pass
        elif spec["method"] == "c":
            pass
    """
    assert codes(subscript) == ["RPR014"]


def test_rpr014_clean_patterns() -> None:
    # Tuples of accepted names are validation, not dispatch.
    assert codes('_METHODS = ("single", "complete", "average")\n') == []
    # Separate ifs (CLI parameter plumbing) are not an elif dispatch chain.
    assert (
        codes(
            """\
    def tune(args):
        if args.method == "balls":
            pass
        if args.method == "pivot":
            pass
        if args.method == "sampling":
            pass
    """
        )
        == []
    )
    # Two-branch chains stay under the threshold.
    assert (
        codes(
            """\
    def solve(method):
        if method == "a":
            return 1
        elif method == "b":
            return 2
    """
        )
        == []
    )
    # Dicts of data (not callables) under a METHOD name are fine.
    assert codes('_METHOD_DOCS = {"a": "doc a", "b": "doc b"}\n') == []
    # Function-local lookup tables are not module-level registries.
    assert (
        codes(
            """\
    def pick(name):
        methods = {"a": f, "b": g}
        return methods[name]
    """
        )
        == []
    )


def test_rpr014_scoped_to_library_outside_registry() -> None:
    table = '_METHODS = {"a": f, "b": g}\n'
    assert codes(table, path="src/repro/registry/store.py") == []
    assert codes(table, path=OUTSIDE) == []
    assert codes(table, path="src/repro/serve/app.py") == ["RPR014"]


def test_rpr014_suppressible() -> None:
    line = '_METHODS = {"a": f, "b": g}  # repolint: disable=RPR014\n'
    assert codes(line) == []
