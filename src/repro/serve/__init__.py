"""repro.serve — the async multi-tenant aggregation service.

The library's subsystems become a product surface here: an asyncio HTTP
service (stdlib only — no framework) hosting many named *streaming
sessions*, each wrapping a
:class:`~repro.stream.StreamingAggregator` with ``.npz`` checkpoint
persistence, plus a one-shot ``/aggregate`` endpoint routed to the
:func:`~repro.parallel.portfolio`.

Layers (bottom-up):

- :mod:`repro.serve.http` — a minimal HTTP/1.1 request/response layer on
  ``asyncio`` streams with a pattern router (``/sessions/{name}/observe``).
- :mod:`repro.serve.schemas` — strict JSON request validation mapping
  malformed input to 400s before anything touches an engine.
- :mod:`repro.serve.batching` — the per-session micro-batch queue:
  concurrent writes coalesce into one worker wake-up per window, with a
  bounded depth that surfaces as 429 backpressure.
- :mod:`repro.serve.sessions` — named sessions (one serialized writer
  task each, immutable published consensus snapshots, checkpoint
  restore/save) and the session table with its limits.
- :mod:`repro.serve.app` — routes, per-endpoint observability
  (:mod:`repro.obs` spans + counters + latency histograms at
  ``GET /metrics``), the aggregate concurrency semaphore, and graceful
  drain-then-checkpoint shutdown.

Run it with ``repro-aggregate serve`` (see the CLI) or embed it::

    from repro.serve import AggregationService, ServeConfig

    service = AggregationService(ServeConfig(port=0))
    await service.start()          # inside a running event loop
    ...
    await service.shutdown()       # drains queues, checkpoints sessions
"""

from .app import AggregationService, ServeConfig, run_server, run_service
from .batching import MicroBatchQueue, QueueClosed, QueueFull
from .http import HTTPError, HTTPServer, Request, Response, Router
from .sessions import ConsensusSnapshot, Session, SessionManager

__all__ = [
    "AggregationService",
    "ConsensusSnapshot",
    "HTTPError",
    "HTTPServer",
    "MicroBatchQueue",
    "QueueClosed",
    "QueueFull",
    "Request",
    "Response",
    "Router",
    "ServeConfig",
    "Session",
    "SessionManager",
    "run_server",
    "run_service",
]
