"""Per-session micro-batch queue: write coalescing with bounded depth.

Concurrent ``observe`` requests against one session all funnel through a
:class:`MicroBatchQueue`.  The session's single worker task pulls the
next *batch* — the first waiting item plus everything else that arrives
within the micro-batch ``window`` (capped at ``max_batch``) — so a burst
of concurrent writers costs one worker wake-up and one consensus publish
instead of one per request, while the strict FIFO order keeps results
bit-identical to serially observing the same arrival order.

Backpressure is synchronous and cheap: :meth:`MicroBatchQueue.submit`
raises :class:`QueueFull` the moment the bounded depth is reached
(the HTTP layer maps it to ``429 Retry-After``) — nothing is buffered
beyond the configured limit.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

__all__ = ["MicroBatchQueue", "Pending", "QueueClosed", "QueueFull"]


class QueueFull(Exception):
    """The bounded queue depth is exhausted (backpressure signal)."""


class QueueClosed(Exception):
    """The queue no longer accepts writes (session closing)."""


@dataclass
class Pending:
    """One queued write: its payload and the future its submitter awaits."""

    payload: Any
    future: "asyncio.Future[Any]"


#: Internal close marker; always the last item the consumer sees.
_CLOSE = object()


class MicroBatchQueue:
    """A bounded FIFO queue whose consumer drains micro-batches.

    Parameters
    ----------
    limit:
        Maximum number of waiting items; :meth:`submit` raises
        :class:`QueueFull` beyond it.
    window:
        Seconds the consumer lingers after the first item of a batch,
        coalescing later arrivals into the same batch.  ``0`` disables
        the wait (still drains whatever is immediately available).
    max_batch:
        Hard cap on items per batch.
    """

    def __init__(self, limit: int = 256, window: float = 0.002, max_batch: int = 64) -> None:
        if limit < 1:
            raise ValueError("queue limit must be positive")
        if window < 0:
            raise ValueError("batch window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self._limit = int(limit)
        self._window = float(window)
        self._max_batch = int(max_batch)
        # Unbounded internally — the depth limit is enforced in submit()
        # so the close marker can always be enqueued.
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._closed = False

    @property
    def depth(self) -> int:
        """Items currently waiting (including an in-flight close marker)."""
        return self._queue.qsize()

    @property
    def window(self) -> float:
        """The configured micro-batch window in seconds."""
        return self._window

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, payload: Any) -> "asyncio.Future[Any]":
        """Enqueue one write; returns the future resolved after it applies.

        Raises :class:`QueueFull` at the depth limit and
        :class:`QueueClosed` after :meth:`close` — both synchronously,
        so callers can answer 429/409 without buffering anything.
        """
        if self._closed:
            raise QueueClosed("queue is closed")
        if self._queue.qsize() >= self._limit:
            raise QueueFull(f"queue depth limit {self._limit} reached")
        future: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        self._queue.put_nowait(Pending(payload, future))
        return future

    def close(self) -> None:
        """Reject further writes; the consumer drains what is queued."""
        if not self._closed:
            self._closed = True
            self._queue.put_nowait(_CLOSE)

    async def next_batch(self) -> list[Pending] | None:
        """The next micro-batch in FIFO order, or ``None`` once drained.

        Blocks for the first item, then gathers immediately available
        items plus anything arriving within ``window`` seconds, up to
        ``max_batch``.  After :meth:`close`, every already-submitted item
        is still delivered (the close marker is FIFO-ordered behind
        them); only then does this return ``None``.
        """
        loop = asyncio.get_running_loop()
        first = await self._queue.get()
        if first is _CLOSE:
            return None
        batch: list[Pending] = [first]
        deadline = loop.time() + self._window if self._window > 0 else None
        while len(batch) < self._max_batch:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                if deadline is None:
                    break
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if item is _CLOSE:
                # Redeliver the marker so the next call returns None.
                self._queue.put_nowait(_CLOSE)
                break
            batch.append(item)
        return batch
