"""Named streaming sessions: serialized writers, immutable read snapshots.

A :class:`Session` owns one :class:`~repro.stream.StreamingAggregator`
and the *only* task allowed to mutate it — a worker coroutine that
drains the session's :class:`~repro.serve.batching.MicroBatchQueue` one
micro-batch at a time and applies the observes in strict FIFO order
(off the event loop, in the default executor).  After each batch it
publishes a fresh :class:`ConsensusSnapshot`: an immutable value object
(read-only label copy, cost, version) swapped in with a single
attribute assignment, so consensus reads never await an in-flight write.

The :class:`SessionManager` is the tenant table: named creation with
``max_sessions``/``max_n`` guards, ``.npz`` checkpoint restore on create
(config mismatches are rejected — see
:func:`repro.stream.checkpoint.load_checkpoint`), and the
drain-then-checkpoint shutdown path the service's graceful stop uses.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any

import numpy as np

from ..obs.metrics import inc, observe, set_gauge
from ..obs.trace import span
from ..stream import StreamingAggregator, load_checkpoint, save_checkpoint
from .batching import MicroBatchQueue, Pending, QueueClosed, QueueFull
from .http import HTTPError

__all__ = ["ConsensusSnapshot", "Session", "SessionManager"]


@dataclass(frozen=True)
class ConsensusSnapshot:
    """An immutable published consensus: what ``GET .../consensus`` returns.

    ``labels`` is a read-only copy — a snapshot held by one request can
    never be mutated by a later update; readers see the ``version`` the
    writer published and nothing in between.
    """

    version: int  #: publish counter (one per applied micro-batch)
    count: int  #: clusterings folded into the engine so far
    k: int  #: clusters in the consensus
    cost: float  #: correlation cost d(C)
    disagreements: float  #: effective-weight objective (m * d(C) at decay=1)
    labels: np.ndarray  #: read-only consensus label vector

    def to_dict(self, include_labels: bool = True) -> dict[str, Any]:
        """JSON-friendly form; ``include_labels=False`` for cheap polling."""
        payload: dict[str, Any] = {
            "version": self.version,
            "count": self.count,
            "k": self.k,
            "cost": self.cost,
            "disagreements": self.disagreements,
        }
        if include_labels:
            payload["labels"] = self.labels.tolist()
        return payload


class Session:
    """One named streaming tenant: engine + queue + single writer task."""

    def __init__(
        self,
        name: str,
        engine: StreamingAggregator,
        *,
        queue_limit: int = 256,
        batch_window: float = 0.002,
        max_batch: int = 64,
        checkpoint_path: Path | None = None,
    ) -> None:
        self.name = name
        self._engine = engine
        self._queue = MicroBatchQueue(
            limit=queue_limit, window=batch_window, max_batch=max_batch
        )
        self._checkpoint_path = checkpoint_path
        self._retry_after = max(0.05, 4.0 * batch_window)
        self._snapshot: ConsensusSnapshot | None = None
        self._version = 0
        self._task: "asyncio.Task[None] | None" = None
        self._closed = False
        # Maintenance gate: cleared by pause(), the worker stops applying
        # batches (writes queue up and backpressure engages) while reads
        # keep serving the last published snapshot.
        self._gate = asyncio.Event()
        self._gate.set()
        if engine.count > 0:  # restored from a checkpoint
            self._publish()

    # -- read side (never blocks on the writer) -------------------------

    @property
    def snapshot(self) -> ConsensusSnapshot | None:
        """The latest published consensus (None before the first update)."""
        return self._snapshot

    @property
    def n(self) -> int:
        return self._engine.n

    @property
    def count(self) -> int:
        return self._engine.count

    @property
    def queue_depth(self) -> int:
        return self._queue.depth

    @property
    def closed(self) -> bool:
        return self._closed

    def info(self) -> dict[str, Any]:
        """Session metadata for listings and ``GET /sessions/{name}``."""
        incremental = self._engine.incremental
        return {
            "name": self.name,
            "n": self._engine.n,
            "count": self._engine.count,
            "version": self._version,
            "queue_depth": self._queue.depth,
            "closed": self._closed,
            "p": incremental.p,
            "missing": incremental.missing,
            "decay": incremental.decay,
            "checkpoint": (
                None if self._checkpoint_path is None else str(self._checkpoint_path)
            ),
        }

    # -- write side -----------------------------------------------------

    def start(self) -> None:
        """Spawn the single writer task (call once, inside the loop)."""
        self._task = asyncio.get_running_loop().create_task(self._worker())

    def submit(self, column: np.ndarray) -> "asyncio.Future[dict[str, Any]]":
        """Enqueue one observe; the future resolves after its batch applies.

        Raises 429 (with a retry hint) at the queue depth limit and 409
        once the session is closing.
        """
        if self._closed:
            raise HTTPError(409, f"session {self.name!r} is closing")
        try:
            return self._queue.submit(column)
        except QueueFull:
            inc("serve.observe.rejected")
            raise HTTPError(
                429,
                f"session {self.name!r} write queue is full",
                retry_after=self._retry_after,
            ) from None
        except QueueClosed:
            raise HTTPError(409, f"session {self.name!r} is closing") from None

    def pause(self) -> None:
        """Stop applying batches (writes queue up; reads stay live)."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()

    async def drain(self) -> None:
        """Reject new writes, apply everything queued, stop the worker."""
        self._closed = True
        self._queue.close()
        self._gate.set()  # a paused session must still drain
        if self._task is not None:
            await self._task
            self._task = None

    async def checkpoint(self) -> Path | None:
        """Persist the engine to the session's ``.npz`` path (off-loop)."""
        if self._checkpoint_path is None or self._engine.count == 0:
            return None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, save_checkpoint, self._engine, self._checkpoint_path
        )
        inc("serve.checkpoints")
        return self._checkpoint_path

    # -- the single writer ----------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._queue.next_batch()
            if batch is None:
                break
            await self._gate.wait()  # honor pause before touching the engine
            with span("serve.session.batch", session=self.name, size=len(batch)):
                outcomes = await loop.run_in_executor(
                    None, self._apply, [pending.payload for pending in batch]
                )
            self._publish()
            observe("serve.batch.size", float(len(batch)))
            self._resolve(batch, outcomes)

    def _apply(
        self, columns: list[np.ndarray]
    ) -> list[tuple[dict[str, Any] | None, Exception | None]]:
        """Apply one micro-batch in FIFO order (runs in the executor).

        Each column is one full incremental update — identical to the
        serial ``StreamingAggregator.observe`` path, so batching cannot
        change results.  Failures are isolated per item: a bad column
        rejects its own future, the rest of the batch still applies.
        """
        outcomes: list[tuple[dict[str, Any] | None, Exception | None]] = []
        for column in columns:
            try:
                update = self._engine.observe(column)
            except Exception as error:
                outcomes.append((None, error))
            else:
                outcomes.append(
                    (
                        {
                            "session": self.name,
                            "index": update.index,
                            "cost": update.cost,
                            "disagreements": update.disagreements,
                            "k": update.k,
                            "used_sampling": update.used_sampling,
                        },
                        None,
                    )
                )
        return outcomes

    def _publish(self) -> None:
        """Swap in a fresh immutable snapshot (one per applied batch)."""
        engine = self._engine
        if engine.count == 0:
            return
        consensus = engine.consensus
        labels = consensus.labels.copy()
        labels.setflags(write=False)
        self._version += 1
        self._snapshot = ConsensusSnapshot(
            version=self._version,
            count=engine.count,
            k=consensus.k,
            cost=engine.cost(),
            disagreements=engine.disagreements(),
            labels=labels,
        )

    def _resolve(
        self,
        batch: list[Pending],
        outcomes: list[tuple[dict[str, Any] | None, Exception | None]],
    ) -> None:
        version = self._version
        size = len(batch)
        for pending, (result, error) in zip(batch, outcomes):
            if pending.future.cancelled():
                continue
            if error is not None:
                pending.future.set_exception(
                    error
                    if isinstance(error, HTTPError)
                    else HTTPError(500, f"observe failed: {error}")
                )
            else:
                assert result is not None
                pending.future.set_result({**result, "batched": size, "version": version})


class SessionManager:
    """The tenant table: bounded named sessions with checkpoint persistence."""

    def __init__(
        self,
        *,
        max_sessions: int = 64,
        queue_limit: int = 256,
        batch_window: float = 0.002,
        max_batch: int = 64,
        checkpoint_dir: Path | None = None,
    ) -> None:
        self._sessions: dict[str, Session] = {}
        self._creating: set[str] = set()
        self._max_sessions = int(max_sessions)
        self._queue_limit = int(queue_limit)
        self._batch_window = float(batch_window)
        self._max_batch = int(max_batch)
        self._checkpoint_dir = checkpoint_dir

    def __len__(self) -> int:
        return len(self._sessions)

    def names(self) -> list[str]:
        return sorted(self._sessions)

    def values(self) -> list[Session]:
        return [self._sessions[name] for name in self.names()]

    def get(self, name: str) -> Session:
        session = self._sessions.get(name)
        if session is None:
            raise HTTPError(404, f"unknown session {name!r}")
        return session

    def _checkpoint_path(self, name: str) -> Path | None:
        if self._checkpoint_dir is None:
            return None
        return self._checkpoint_dir / f"{name}.npz"

    async def create(self, config: dict[str, Any]) -> tuple[Session, bool]:
        """Create (or restore) a named session from a validated config.

        Returns ``(session, restored)``; ``restored`` is True when an
        existing checkpoint was adopted.  A checkpoint whose ``n``,
        ``p``, ``missing`` or ``decay`` disagrees with the requested
        config is a 409 — silently adopting inconsistent state would
        poison every later read.
        """
        name = config["name"]
        if name in self._sessions or name in self._creating:
            raise HTTPError(409, f"session {name!r} already exists")
        if len(self._sessions) + len(self._creating) >= self._max_sessions:
            raise HTTPError(
                503,
                f"session table is full (max_sessions={self._max_sessions})",
                retry_after=1.0,
            )
        self._creating.add(name)
        try:
            engine, restored = await self._build_engine(config)
            session = Session(
                name,
                engine,
                queue_limit=self._queue_limit,
                batch_window=self._batch_window,
                max_batch=self._max_batch,
                checkpoint_path=self._checkpoint_path(name),
            )
            session.start()
            self._sessions[name] = session
        finally:
            self._creating.discard(name)
        set_gauge("serve.sessions", float(len(self._sessions)))
        return session, restored

    async def _build_engine(
        self, config: dict[str, Any]
    ) -> tuple[StreamingAggregator, bool]:
        n = config["n"]
        engine_kwargs = config["engine"]
        path = self._checkpoint_path(config["name"])
        if path is not None and path.exists():
            loop = asyncio.get_running_loop()
            restore = partial(
                load_checkpoint,
                path,
                n=n,
                p=engine_kwargs["p"],
                missing=engine_kwargs["missing"],
                decay=engine_kwargs["decay"],
            )
            try:
                return await loop.run_in_executor(None, restore), True
            except ValueError as error:
                raise HTTPError(
                    409, f"checkpoint mismatch for session {config['name']!r}: {error}"
                ) from error
        return StreamingAggregator(n, **engine_kwargs), False

    async def remove(self, name: str) -> dict[str, Any]:
        """Drain, checkpoint, and drop one session; returns its final info."""
        session = self.get(name)
        del self._sessions[name]
        await session.drain()
        path = await session.checkpoint()
        set_gauge("serve.sessions", float(len(self._sessions)))
        info = session.info()
        info["checkpoint"] = None if path is None else str(path)
        return info

    async def shutdown(self) -> list[str]:
        """Drain every session, checkpoint each, empty the table.

        Returns the checkpoint paths written (sessions with no updates
        or no checkpoint dir write nothing).
        """
        sessions = self.values()
        self._sessions.clear()
        await asyncio.gather(*(session.drain() for session in sessions))
        paths = await asyncio.gather(*(session.checkpoint() for session in sessions))
        set_gauge("serve.sessions", 0.0)
        return [str(path) for path in paths if path is not None]
