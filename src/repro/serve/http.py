"""Minimal HTTP/1.1 layer on asyncio streams (no framework dependency).

Just enough HTTP for the aggregation service: request parsing
(request line, headers, ``Content-Length`` bodies), JSON responses,
keep-alive connections, and a small pattern router
(``/sessions/{name}/observe``).  Anything the parser does not support —
chunked transfer encoding, oversized bodies, malformed framing — maps to
a structured JSON error response with the right status code.

:class:`HTTPError` is the one error channel of the whole service: every
layer above (schemas, sessions, app) raises it with a status, a message,
and an optional ``Retry-After`` hint, and :func:`error_response` turns it
into the wire form.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HTTPError",
    "HTTPServer",
    "Request",
    "Response",
    "Route",
    "Router",
    "error_response",
]

#: Reason phrases for the statuses the service emits.
STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

#: Per-line read limit for request lines and headers (bytes).
_LINE_LIMIT = 16 * 1024

#: Maximum number of request headers accepted.
_MAX_HEADERS = 64


class HTTPError(Exception):
    """A structured service error: status code, message, optional retry hint.

    Raised anywhere between request parsing and the handlers;
    :func:`error_response` renders it as ``{"error": message}`` JSON with
    a ``Retry-After`` header when ``retry_after`` is set (429/503
    backpressure responses).
    """

    def __init__(self, status: int, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.retry_after = retry_after


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  #: header names lower-cased
    body: bytes

    def json(self) -> Any:
        """The body parsed as JSON; 400 on empty or malformed bodies."""
        if not self.body:
            raise HTTPError(400, "request body must be JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HTTPError(400, f"invalid JSON body: {error}") from error


@dataclass
class Response:
    """One HTTP response; ``payload`` is JSON-serialized at encode time."""

    status: int = 200
    payload: Any = None
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        """The full wire form (status line, headers, JSON body)."""
        body = b"" if self.payload is None else json.dumps(self.payload).encode("utf-8") + b"\n"
        phrase = STATUS_PHRASES.get(self.status, "Unknown")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            **self.headers,
        }
        head = [f"HTTP/1.1 {self.status} {phrase}"]
        head.extend(f"{name}: {value}" for name, value in headers.items())
        return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def error_response(error: HTTPError) -> Response:
    """Render an :class:`HTTPError` as a JSON error response."""
    headers: dict[str, str] = {}
    if error.retry_after is not None:
        headers["Retry-After"] = str(max(1, math.ceil(error.retry_after)))
    return Response(status=error.status, payload={"error": error.message}, headers=headers)


Handler = Callable[[Request, dict[str, str]], Awaitable[Response]]


@dataclass(frozen=True)
class Route:
    """One routable endpoint: a method, a segment pattern, and a handler.

    Pattern segments of the form ``{param}`` capture the corresponding
    path segment into the params dict passed to the handler.
    """

    method: str
    name: str
    segments: tuple[str, ...]
    handler: Handler

    def match(self, parts: tuple[str, ...]) -> dict[str, str] | None:
        """Params dict when ``parts`` matches this route's pattern, else None."""
        if len(parts) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for pattern, part in zip(self.segments, parts):
            if pattern.startswith("{") and pattern.endswith("}"):
                params[pattern[1:-1]] = part
            elif pattern != part:
                return None
        return params


class Router:
    """Order-preserving route table with 404/405 discrimination."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, method: str, pattern: str, name: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` + ``pattern``."""
        segments = tuple(segment for segment in pattern.strip("/").split("/") if segment)
        self._routes.append(
            Route(method=method.upper(), name=name, segments=segments, handler=handler)
        )

    def resolve(self, method: str, path: str) -> tuple[Route, dict[str, str]]:
        """The matching route and its path params; 404 or 405 otherwise."""
        stripped = path.strip("/")
        parts = tuple(unquote(part) for part in stripped.split("/")) if stripped else ()
        path_known = False
        for route in self._routes:
            params = route.match(parts)
            if params is None:
                continue
            if route.method == method.upper():
                return route, params
            path_known = True
        if path_known:
            raise HTTPError(405, f"method {method} not allowed for {path}")
        raise HTTPError(404, f"no route for {path}")


class HTTPServer:
    """An asyncio TCP server speaking just enough HTTP/1.1.

    ``dispatch`` is the single application callback: it receives every
    parsed :class:`Request` and returns a :class:`Response` (the app
    layer does routing, instrumentation, and error mapping there).
    Connections are keep-alive until the client half-closes or sends
    ``Connection: close``.
    """

    def __init__(
        self,
        dispatch: Callable[[Request], Awaitable[Response]],
        max_body_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        self._dispatch = dispatch
        self._max_body = int(max_body_bytes)
        self._server: asyncio.base_events.Server | None = None
        self._connections: "set[asyncio.Task[None]]" = set()

    async def start(self, host: str, port: int) -> None:
        """Bind and start accepting connections (port 0 picks a free port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, host, port, limit=_LINE_LIMIT
        )

    @property
    def port(self) -> int:
        """The actually bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    async def stop(self) -> None:
        """Stop accepting new connections and close established ones."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Keep-alive connections idle in readline() would otherwise
        # outlive the listener; responses already written have been
        # drained, so cancelling here loses nothing.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # -- connection handling -------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except HTTPError as error:
                    writer.write(error_response(error).encode())
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                writer.write(response.encode())
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Request | None:
        """Parse one request off the stream; None on a clean EOF."""
        try:
            line = await reader.readline()
        except ValueError as error:  # line longer than the stream limit
            raise HTTPError(400, "request line too long") from error
        if not line.strip():
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise HTTPError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]

        headers: dict[str, str] = {}
        while True:
            try:
                raw = await reader.readline()
            except ValueError as error:
                raise HTTPError(400, "request header too long") from error
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= _MAX_HEADERS:
                raise HTTPError(400, "too many request headers")
            name, separator, value = raw.decode("latin-1").partition(":")
            if not separator:
                raise HTTPError(400, "malformed request header")
            headers[name.strip().lower()] = value.strip()

        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise HTTPError(501, "chunked request bodies are not supported")
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError as error:
            raise HTTPError(400, "malformed Content-Length header") from error
        if length < 0:
            raise HTTPError(400, "malformed Content-Length header")
        if length > self._max_body:
            raise HTTPError(413, f"request body exceeds {self._max_body} bytes")
        body = await reader.readexactly(length) if length else b""

        split = urlsplit(target)
        query = dict(parse_qsl(split.query))
        return Request(
            method=method, path=split.path, query=query, headers=headers, body=body
        )
