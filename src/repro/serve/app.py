"""The aggregation service application: routes, limits, lifecycle.

:class:`AggregationService` wires the HTTP layer, schemas, and session
table into the endpoint surface:

====== ================================== ===================================
method path                               purpose
====== ================================== ===================================
GET    ``/healthz``                       liveness + session count
GET    ``/metrics``                       :mod:`repro.obs` registry snapshot
GET    ``/sessions``                      list sessions
POST   ``/sessions``                      create/restore a streaming session
GET    ``/sessions/{name}``               session info
DELETE ``/sessions/{name}``               drain + checkpoint + remove
POST   ``/sessions/{name}/observe``       fold one clustering in (batched)
GET    ``/sessions/{name}/consensus``     latest published snapshot (no wait)
POST   ``/aggregate``                     one-shot portfolio/heuristic run
====== ================================== ===================================

Every request is wrapped in a ``serve.<endpoint>`` span and recorded
into per-endpoint counters (``serve.<endpoint>.requests``, per-status
counts) and latency histograms (``serve.<endpoint>.seconds``), all
exported by ``GET /metrics``.  One-shot aggregates run in the executor
under a concurrency semaphore with a bounded waiting room (429 with
``Retry-After`` beyond it); heavy work — observes, aggregates,
checkpoint I/O — never runs on the event loop.  Graceful shutdown waits
for in-flight aggregates, drains every session queue, resolves the
in-flight observes, checkpoints every session, then closes the
listener.
"""

from __future__ import annotations

import asyncio
import signal
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any, Callable

from ..core.aggregate import aggregate
from ..registry import is_stochastic
from ..obs.metrics import enable_metrics, get_registry, inc, observe
from ..obs.trace import span
from ..parallel.portfolio import portfolio
from . import schemas
from .http import HTTPError, HTTPServer, Request, Response, Router, error_response
from .sessions import SessionManager

__all__ = ["AggregationService", "ServeConfig", "run_server", "run_service"]


@dataclass(frozen=True)
class ServeConfig:
    """Operational limits and tuning knobs of one service instance."""

    host: str = "127.0.0.1"
    port: int = 8765  #: 0 picks a free port (read it back from ``service.port``)
    checkpoint_dir: str | Path | None = None  #: sessions persist here when set
    max_sessions: int = 64
    max_n: int = 100_000  #: per-session/aggregate object-count guard (413 beyond)
    queue_limit: int = 256  #: per-session pending observes (429 beyond)
    batch_window: float = 0.002  #: micro-batch coalescing window, seconds
    max_batch: int = 64  #: observes per micro-batch
    aggregate_concurrency: int = 2  #: one-shot aggregates running at once
    aggregate_pending: int = 8  #: one-shot aggregates waiting (429 beyond)
    n_jobs: int | None = None  #: repro.parallel worker budget for /aggregate
    drain_timeout: float = 30.0  #: max seconds to wait for in-flight aggregates on drain
    max_body_bytes: int = 64 * 1024 * 1024


class AggregationService:
    """The multi-tenant aggregation service (embed or run via the CLI)."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self._config = config if config is not None else ServeConfig()
        checkpoint_dir = (
            None
            if self._config.checkpoint_dir is None
            else Path(self._config.checkpoint_dir)
        )
        self._sessions = SessionManager(
            max_sessions=self._config.max_sessions,
            queue_limit=self._config.queue_limit,
            batch_window=self._config.batch_window,
            max_batch=self._config.max_batch,
            checkpoint_dir=checkpoint_dir,
        )
        self._aggregate_semaphore = asyncio.Semaphore(
            max(1, self._config.aggregate_concurrency)
        )
        self._aggregate_waiting = 0
        self._aggregate_idle = asyncio.Event()
        self._aggregate_idle.set()
        self._draining = False
        self._http = HTTPServer(self._dispatch, max_body_bytes=self._config.max_body_bytes)
        self._router = Router()
        self._add_routes()

    def _add_routes(self) -> None:
        add = self._router.add
        add("GET", "/healthz", "healthz", self._healthz)
        add("GET", "/metrics", "metrics", self._metrics)
        add("GET", "/sessions", "sessions.list", self._list_sessions)
        add("POST", "/sessions", "sessions.create", self._create_session)
        add("GET", "/sessions/{name}", "sessions.info", self._session_info)
        add("DELETE", "/sessions/{name}", "sessions.delete", self._delete_session)
        add("POST", "/sessions/{name}/observe", "observe", self._observe)
        add("GET", "/sessions/{name}/consensus", "consensus", self._consensus)
        add("POST", "/aggregate", "aggregate", self._aggregate)

    # -- lifecycle ------------------------------------------------------

    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def sessions(self) -> SessionManager:
        return self._sessions

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`; differs from config at port 0)."""
        return self._http.port

    async def start(self) -> None:
        """Bind the listener and enable the metrics registry."""
        if self._config.checkpoint_dir is not None:
            Path(self._config.checkpoint_dir).mkdir(parents=True, exist_ok=True)
        enable_metrics()
        await self._http.start(self._config.host, self._config.port)

    async def shutdown(self) -> dict[str, Any]:
        """Graceful stop: drain queues, checkpoint sessions, close listener.

        New work is refused (503) the moment draining starts; observes
        already queued are applied and answered before their sessions
        checkpoint, and in-flight one-shot aggregates (sharded runs
        included) get to flush their responses before the listener — and
        with it every connection task — is torn down.  The aggregate
        wait is bounded by ``config.drain_timeout`` so a wedged executor
        job cannot hold the shutdown hostage.  Returns a drain summary
        for operator logs.
        """
        self._draining = True
        drained = len(self._sessions)
        try:
            await asyncio.wait_for(
                self._aggregate_idle.wait(), timeout=self._config.drain_timeout
            )
        except asyncio.TimeoutError:
            inc("serve.drain.aggregate_timeouts")
        checkpoints = await self._sessions.shutdown()
        await self._http.stop()
        return {"sessions": drained, "checkpoints": checkpoints}

    # -- dispatch with per-endpoint observability -----------------------

    async def _dispatch(self, request: Request) -> Response:
        try:
            route, params = self._router.resolve(request.method, request.path)
        except HTTPError as error:
            inc("serve.unrouted.requests")
            return error_response(error)
        if self._draining and route.name not in ("healthz", "metrics"):
            return error_response(
                HTTPError(503, "server is shutting down", retry_after=1.0)
            )
        with span(f"serve.{route.name}", method=request.method, path=request.path) as sp:
            try:
                response = await route.handler(request, params)
            except HTTPError as error:
                response = error_response(error)
            except Exception as error:
                inc("serve.internal_errors")
                response = Response(status=500, payload={"error": f"internal error: {error}"})
            sp.set(status=response.status)
        inc(f"serve.{route.name}.requests")
        inc(f"serve.{route.name}.status.{response.status}")
        observe(f"serve.{route.name}.seconds", sp.seconds)
        return response

    # -- handlers -------------------------------------------------------

    async def _healthz(self, request: Request, params: dict[str, str]) -> Response:
        return Response(
            payload={
                "status": "draining" if self._draining else "ok",
                "sessions": len(self._sessions),
            }
        )

    async def _metrics(self, request: Request, params: dict[str, str]) -> Response:
        snapshot = get_registry().snapshot()
        snapshot["sessions"] = {
            session.name: session.info() for session in self._sessions.values()
        }
        return Response(payload=snapshot)

    async def _list_sessions(self, request: Request, params: dict[str, str]) -> Response:
        return Response(
            payload={"sessions": [session.info() for session in self._sessions.values()]}
        )

    async def _create_session(self, request: Request, params: dict[str, str]) -> Response:
        config = schemas.session_config(request.json(), max_n=self._config.max_n)
        session, restored = await self._sessions.create(config)
        payload = session.info()
        payload["restored"] = restored
        return Response(status=201, payload=payload)

    async def _session_info(self, request: Request, params: dict[str, str]) -> Response:
        return Response(payload=self._sessions.get(params["name"]).info())

    async def _delete_session(self, request: Request, params: dict[str, str]) -> Response:
        return Response(payload=await self._sessions.remove(params["name"]))

    async def _observe(self, request: Request, params: dict[str, str]) -> Response:
        session = self._sessions.get(params["name"])
        column = schemas.observe_labels(request.json(), session.n)
        future = session.submit(column)
        return Response(payload=await future)

    async def _consensus(self, request: Request, params: dict[str, str]) -> Response:
        session = self._sessions.get(params["name"])
        snapshot = session.snapshot
        if snapshot is None:
            raise HTTPError(409, f"session {params['name']!r} has no consensus yet")
        include_labels = request.query.get("labels", "true").lower() != "false"
        return Response(payload=snapshot.to_dict(include_labels=include_labels))

    async def _aggregate(self, request: Request, params: dict[str, str]) -> Response:
        spec = schemas.aggregate_request(request.json(), max_n=self._config.max_n)
        if self._aggregate_waiting >= self._config.aggregate_pending:
            # Per-client backpressure, not server failure: 429 with a
            # Retry-After hint, matching the observe-queue convention.
            raise HTTPError(
                429,
                f"aggregate waiting room is full ({self._config.aggregate_pending})",
                retry_after=1.0,
            )
        loop = asyncio.get_running_loop()
        self._aggregate_waiting += 1
        self._aggregate_idle.clear()
        try:
            async with self._aggregate_semaphore:
                result = await loop.run_in_executor(
                    None, partial(self._run_aggregate, spec)
                )
        finally:
            self._aggregate_waiting -= 1
            if self._aggregate_waiting == 0:
                self._aggregate_idle.set()
        return Response(payload=result)

    def _run_aggregate(self, spec: dict[str, Any]) -> dict[str, Any]:
        """One-shot aggregation (runs in the executor, off the loop)."""
        matrix = spec["matrix"]
        if spec["method"] == "portfolio":
            result = portfolio(
                matrix, p=spec["p"], n_jobs=self._config.n_jobs, rng=spec["rng"]
            )
            payload = result.to_dict()
            payload["method"] = "portfolio"
            payload["labels"] = result.best.labels.tolist()
            return payload
        extra: dict[str, Any] = {}
        if is_stochastic(spec["method"]):
            extra["rng"] = spec["rng"]
        if spec["method"] == "sharded" and spec.get("n_shards") is not None:
            extra["n_shards"] = spec["n_shards"]
        outcome = aggregate(
            matrix,
            method=spec["method"],
            p=spec["p"],
            compute_lower_bound=False,
            n_jobs=self._config.n_jobs,
            **extra,
        )
        payload = {
            "method": outcome.method,
            "cost": outcome.cost,
            "disagreements": outcome.disagreements,
            "k": outcome.k,
            "elapsed_seconds": outcome.elapsed_seconds,
            "labels": outcome.clustering.labels.tolist(),
        }
        if "shard" in outcome.params:
            payload["shard"] = outcome.params["shard"]
        return payload


async def run_service(
    config: ServeConfig | None = None,
    *,
    ready: Callable[[AggregationService], None] | None = None,
    install_signal_handlers: bool = True,
) -> dict[str, Any]:
    """Start a service, run until SIGTERM/SIGINT, drain, and return a summary.

    ``ready`` is called once the listener is bound (the CLI prints its
    startup banner there — with the real port, so ``port=0`` works for
    scripted callers).
    """
    service = AggregationService(config)
    await service.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    if install_signal_handlers:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # non-main thread, Windows
                continue
            installed.append(signum)
    try:
        if ready is not None:
            ready(service)
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
    return await service.shutdown()


def run_server(
    config: ServeConfig | None = None,
    *,
    ready: Callable[[AggregationService], None] | None = None,
) -> dict[str, Any]:
    """Blocking entry point: run the service until a termination signal."""
    return asyncio.run(run_service(config, ready=ready))
