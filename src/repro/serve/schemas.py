"""Strict JSON request validation for the aggregation service.

Every request body is validated here *before* anything touches an
engine: wrong types, out-of-range values, unknown keys, and size-guard
violations all become :class:`~repro.serve.http.HTTPError` (400 for
malformed input, 413 for size guards) with messages naming the offending
field.  The validators return plain dicts / numpy arrays ready for the
session and aggregate layers, so the handlers stay declarative.

Label vectors are validated vectorized (no Python-level element loop):
a JSON array round-trips through ``np.asarray`` and anything that is not
integer-dtyped afterwards — floats, strings, nulls, booleans, nesting —
is rejected wholesale.
"""

from __future__ import annotations

import re
from typing import Any

import numpy as np

from ..core.aggregate import available_methods
from ..core.labels import MISSING
from .http import HTTPError

__all__ = [
    "aggregate_request",
    "observe_labels",
    "session_config",
]

#: Session names: filesystem- and URL-safe (they become checkpoint stems).
_SESSION_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_SESSION_KEYS = frozenset(
    {"name", "n", "p", "missing", "decay", "sampling_threshold", "sample_size", "seed"}
)

_AGGREGATE_KEYS = frozenset({"clusterings", "method", "n_shards", "p", "seed"})


def _require_object(payload: Any) -> dict[str, Any]:
    if not isinstance(payload, dict):
        raise HTTPError(400, "request body must be a JSON object")
    return payload


def _integer(payload: dict[str, Any], key: str, default: int | None) -> int | None:
    value = payload.get(key, default)
    if value is default:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        raise HTTPError(400, f"`{key}` must be an integer")
    return value


def _number(payload: dict[str, Any], key: str, default: float) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise HTTPError(400, f"`{key}` must be a number")
    return float(value)


def _reject_unknown(payload: dict[str, Any], allowed: frozenset[str], what: str) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise HTTPError(400, f"unknown {what} field(s): {', '.join(unknown)}")


def session_config(payload: Any, *, max_n: int) -> dict[str, Any]:
    """Validate a session-creation body.

    Returns ``{"name": str, "n": int, "engine": {kwargs for
    StreamingAggregator}}``; the engine kwargs include the ``rng`` seed
    so a restored or fresh engine is reproducible from the request.
    """
    payload = _require_object(payload)
    _reject_unknown(payload, _SESSION_KEYS, "session")
    name = payload.get("name")
    if not isinstance(name, str) or not _SESSION_NAME.match(name):
        raise HTTPError(
            400,
            "`name` must match [A-Za-z0-9][A-Za-z0-9._-]* and be at most 64 characters",
        )
    n = _integer(payload, "n", None)
    if n is None or n < 1:
        raise HTTPError(400, "`n` (number of objects) must be a positive integer")
    if n > max_n:
        raise HTTPError(413, f"n={n} exceeds the server limit max_n={max_n}")
    p = _number(payload, "p", 0.5)
    if not 0.0 <= p <= 1.0:
        raise HTTPError(400, "`p` must lie in [0, 1]")
    missing = payload.get("missing", "coin-flip")
    if missing not in ("coin-flip", "average"):
        raise HTTPError(400, "`missing` must be 'coin-flip' or 'average'")
    decay = _number(payload, "decay", 1.0)
    if not 0.0 < decay <= 1.0:
        raise HTTPError(400, "`decay` must lie in (0, 1]")
    sampling_threshold = _integer(payload, "sampling_threshold", 5000)
    if sampling_threshold is None or sampling_threshold < 1:
        raise HTTPError(400, "`sampling_threshold` must be a positive integer")
    sample_size = _integer(payload, "sample_size", None)
    if sample_size is not None and sample_size < 1:
        raise HTTPError(400, "`sample_size` must be a positive integer")
    rng_seed = _integer(payload, "seed", 0)
    return {
        "name": name,
        "n": n,
        "engine": {
            "p": p,
            "missing": missing,
            "decay": decay,
            "sampling_threshold": sampling_threshold,
            "sample_size": sample_size,
            "rng": rng_seed,
        },
    }


def _label_vector(raw: Any, n: int | None, what: str) -> np.ndarray:
    """One length-``n`` integer label vector (``-1`` = missing), or 400."""
    if not isinstance(raw, list):
        raise HTTPError(400, f"{what} must be a JSON array of integers")
    column = np.asarray(raw)
    if column.ndim != 1 or not np.issubdtype(column.dtype, np.integer):
        raise HTTPError(400, f"{what} must be a flat array of integers")
    if n is not None and column.shape[0] != n:
        raise HTTPError(400, f"{what} must cover all {n} objects, got {column.shape[0]}")
    if np.any(column < MISSING):
        raise HTTPError(400, f"{what} entries must be >= -1 (-1 marks a missing value)")
    if np.all(column == MISSING):
        raise HTTPError(400, f"{what} is entirely missing and carries no information")
    return column.astype(np.int64, copy=False)


def observe_labels(payload: Any, n: int) -> np.ndarray:
    """Validate an observe body: ``{"labels": [...]}`` of length ``n``."""
    payload = _require_object(payload)
    _reject_unknown(payload, frozenset({"labels"}), "observe")
    return _label_vector(payload.get("labels"), n, "`labels`")


def aggregate_request(payload: Any, *, max_n: int) -> dict[str, Any]:
    """Validate a one-shot aggregate body.

    ``{"clusterings": [[...], ...], "method"?, "n_shards"?, "p"?,
    "seed"?}`` — the clusterings are ``m`` label vectors over the same
    ``n`` objects; ``n_shards`` is only valid with ``method="sharded"``.
    Returns ``{"matrix": (n, m) int64 array, "method", "p", "rng",
    "n_shards"}``.
    """
    payload = _require_object(payload)
    _reject_unknown(payload, _AGGREGATE_KEYS, "aggregate")
    clusterings = payload.get("clusterings")
    if not isinstance(clusterings, list) or not clusterings:
        raise HTTPError(400, "`clusterings` must be a non-empty list of label arrays")
    first = _label_vector(clusterings[0], None, "`clusterings[0]`")
    n = first.shape[0]
    if n > max_n:
        raise HTTPError(413, f"n={n} exceeds the server limit max_n={max_n}")
    columns = [first]
    for j, raw in enumerate(clusterings[1:], start=1):
        columns.append(_label_vector(raw, n, f"`clusterings[{j}]`"))
    method = payload.get("method", "portfolio")
    if method not in available_methods():
        raise HTTPError(
            400, f"unknown method {method!r}; one of {', '.join(available_methods())}"
        )
    p = _number(payload, "p", 0.5)
    if not 0.0 <= p <= 1.0:
        raise HTTPError(400, "`p` must lie in [0, 1]")
    rng_seed = _integer(payload, "seed", 0)
    n_shards = _integer(payload, "n_shards", None)
    if n_shards is not None:
        if method != "sharded":
            raise HTTPError(400, "`n_shards` is only valid with method 'sharded'")
        if n_shards < 1:
            raise HTTPError(400, "`n_shards` must be a positive integer")
    return {
        "matrix": np.column_stack(columns),
        "method": method,
        "p": p,
        "rng": rng_seed,
        "n_shards": n_shards,
    }
