"""Sharded divide-and-merge aggregation.

The paper's SAMPLING argument (§6) bounds instance size by clustering a
sample and attaching the rest; sharding bounds it by *decomposition*:
cut the ``(n, m)`` label matrix into shards, aggregate every shard
independently (each worker sees only its own ``O((n/s)^2)`` problem),
then merge the shard consensus clusterings through the weighted-atom
instance of :mod:`repro.shard.merge`.  No step ever materializes a
global quadratic object, so the memory high-water mark is set by the
largest shard rather than by ``n`` — the first path in the library where
instance size is bounded per shard.

Execution mirrors the portfolio runner: the label matrix is placed in a
:class:`~repro.parallel.shm.SharedNDArray` once, forked workers attach a
zero-copy view and solve their shard, and results (labels, cost, spans)
ride back on the pool's result channel.  Determinism: one child
generator is spawned per shard *position* (plus one for the partition
shuffle) before anything runs, and every in-shard solve is pinned to
``n_jobs=1``, so the consensus is bit-identical for any worker count —
the in-process serial path included.

Quality: on the paper-style categorical datasets the sharded consensus
stays within :data:`QUALITY_ENVELOPE` of single-shot SAMPLING's
objective (measured by ``benchmarks/bench_shard.py``; asserted by the
differential tests).  The merge itself never loses to the raw shard
union — see :func:`repro.shard.merge.merge_shards`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..algorithms.sampling import sampling
from ..core.distance import total_disagreement
from ..core.instance import CorrelationInstance
from ..core.labels import as_label_matrix, validate_label_matrix
from ..core.partition import Clustering
from ..obs.metrics import inc, observe, set_gauge
from ..obs.profile import export_spans, merge_spans, worker_tracing
from ..obs.trace import span
from ..parallel.build import pool
from ..parallel.shm import SharedNDArray, resolve_jobs
from ..registry import (
    SolveContext,
    is_stochastic,
    register_method,
    resolve_instance_method,
)
from .merge import DEFAULT_MAX_EXACT_ATOMS, merge_shards
from .partition import plan_shards

__all__ = ["QUALITY_ENVELOPE", "ShardResult", "ShardRun", "shard_aggregate"]

#: Documented quality envelope vs single-shot SAMPLING: on the paper's
#: categorical datasets the sharded objective is at most this multiple of
#: the single-shot SAMPLING objective for the same seed budget (measured
#: in ``reports/BENCH_shard.json``, enforced by the differential tests).
QUALITY_ENVELOPE = 1.15

#: Per-worker state installed by the pool initializer (set in workers only).
_WORKER: dict[str, Any] = {}


@dataclass(frozen=True)
class ShardRun:
    """Observability record for one solved shard."""

    index: int
    size: int
    k: int
    cost: float
    elapsed_seconds: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (CLI ``--json`` output)."""
        return {
            "index": self.index,
            "size": self.size,
            "k": self.k,
            "cost": self.cost,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one :func:`shard_aggregate` call.

    ``shards`` preserves shard order regardless of completion order;
    ``merge_method`` is the strategy the merge layer actually used
    (``"exact"``, ``"local-search"``, or ``"trivial"``); ``atom_cost``
    is the merged clustering's weighted atom-instance objective.
    """

    clustering: Clustering
    shards: tuple[ShardRun, ...]
    partition: str
    merge_method: str
    n_atoms: int
    atom_cost: float
    jobs: int
    elapsed_seconds: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (clustering reported as ``k``)."""
        return {
            "n_shards": len(self.shards),
            "partition": self.partition,
            "merge_method": self.merge_method,
            "n_atoms": self.n_atoms,
            "atom_cost": self.atom_cost,
            "k": self.clustering.k,
            "jobs": self.jobs,
            "elapsed_seconds": self.elapsed_seconds,
            "shards": [run.to_dict() for run in self.shards],
        }

    def summary(self) -> str:
        """One-line human-readable report."""
        sizes = "/".join(str(run.size) for run in self.shards)
        return (
            f"sharded shards={len(self.shards)} ({sizes})  atoms={self.n_atoms}  "
            f"merge={self.merge_method}  k={self.clustering.k}"
        )


def _solve_shard(
    matrix: np.ndarray,
    indices: np.ndarray,
    config: dict[str, Any],
    child_rng: np.random.Generator,
    position: int,
) -> tuple[np.ndarray, float, int, float]:
    """Aggregate one shard; shared by the serial and worker paths.

    Returns ``(labels, cost, k, seconds)`` with ``cost`` the shard's own
    ``d(C)`` (diagnostic only — the merge layer recomputes everything it
    needs from the labels).  In-shard solves are pinned to ``n_jobs=1``:
    parallelism lives at the shard level, and nested pools would both
    oversubscribe and tie results to the worker topology.
    """
    method = config["shard_method"]
    p = config["p"]
    weights = config["weights"]
    sub = matrix[indices]
    sub_weights = None if weights is None else weights[indices]
    with span(f"shard:{position}", rows=int(indices.size), method=method) as shard_span:
        kwargs = dict(config["params"])
        if method == "sampling":
            if kwargs.get("sample_size") is not None:
                # The caller's sample size is a global notion; per shard it
                # cannot exceed the shard itself.
                kwargs["sample_size"] = min(int(kwargs["sample_size"]), int(indices.size))
            clustering = sampling(
                sub,
                resolve_instance_method(config["inner"]),
                p=p,
                rng=child_rng,
                weights=sub_weights,
                n_jobs=1,
                **kwargs,
            )
            if sub_weights is None:
                cost = total_disagreement(sub, clustering, p=p) / sub.shape[1]
            else:
                lazy = CorrelationInstance.lazy_from_label_matrix(
                    sub, p=p, weights=sub_weights
                )
                cost = lazy.cost(clustering)
        else:
            instance = CorrelationInstance.from_label_matrix(
                sub, p=p, weights=sub_weights, n_jobs=1, backend=config["backend"]
            )
            if is_stochastic(method):
                kwargs["rng"] = child_rng
            clustering = resolve_instance_method(method)(instance, **kwargs)
            cost = instance.cost(clustering)
        shard_span.set(cost=cost, k=clustering.k)
    observe("shard.member.cost", cost)
    observe("shard.member.seconds", shard_span.seconds)
    return (
        clustering.labels.astype(np.int64),
        float(cost),
        int(clustering.k),
        shard_span.seconds,
    )


def _init_shard_worker(
    descriptor: tuple[str, tuple[int, ...], str],
    shards: list[np.ndarray],
    children: list[np.random.Generator],
    config: dict[str, Any],
) -> None:
    shared = SharedNDArray.attach(descriptor)
    _WORKER["shared"] = shared  # keep the mapping alive for the pool's lifetime
    _WORKER["matrix"] = shared.array
    _WORKER["shards"] = shards
    _WORKER["children"] = children
    _WORKER["config"] = config


def _run_shard(index: int) -> tuple[int, np.ndarray, float, int, float, list[dict[str, Any]]]:
    # Spans recorded in a forked worker die with the process, so each
    # shard profiles into a local trace and ships it back on the result
    # channel for the parent to graft under `shard.solve`.
    with worker_tracing() as trace:
        labels, cost, k, elapsed = _solve_shard(
            _WORKER["matrix"],
            _WORKER["shards"][index],
            _WORKER["config"],
            _WORKER["children"][index],
            index,
        )
    return (index, labels, cost, k, elapsed, export_spans(trace))


def _solve_sharded(ctx: SolveContext) -> Clustering:
    # Relocated verbatim from aggregate()'s old "sharded" branch: shard and
    # merge records land in ctx.params["shard"] for the result report.
    matrix = ctx.require_matrix("sharded")
    if ctx.atoms is not None:
        shard_result = shard_aggregate(
            ctx.atoms.matrix,
            p=ctx.p,
            weights=ctx.atoms.weights.astype(np.float64),
            n_jobs=ctx.n_jobs,
            backend=ctx.backend,
            **ctx.params,
        )
        clustering = ctx.atoms.expand(shard_result.clustering)
    else:
        shard_result = shard_aggregate(
            matrix, p=ctx.p, n_jobs=ctx.n_jobs, backend=ctx.backend, **ctx.params
        )
        clustering = shard_result.clustering
    ctx.params["shard"] = shard_result.to_dict()
    return clustering


@register_method(
    "sharded",
    kind="matrix",
    stochastic=True,
    supports_weights=True,
    exclude=("p", "weights", "n_jobs", "backend"),
    solver=_solve_sharded,
)
def shard_aggregate(
    inputs: Sequence[Clustering] | np.ndarray,
    n_shards: int = 4,
    partition: str = "contiguous",
    shard_method: str = "sampling",
    inner: str = "agglomerative",
    merge: str = "auto",
    max_exact_atoms: int = DEFAULT_MAX_EXACT_ATOMS,
    p: float = 0.5,
    rng: np.random.Generator | int | None = None,
    weights: np.ndarray | None = None,
    n_jobs: int | None = None,
    backend: str = "auto",
    **params: Any,
) -> ShardResult:
    """Aggregate by sharding the objects, solving shards, merging atoms.

    Parameters
    ----------
    inputs:
        Input clusterings or an ``(n, m)`` label matrix (``-1`` marks
        missing entries).  Raw correlation instances are not accepted —
        sharding exists precisely to avoid global quadratic objects.
    n_shards:
        Number of shards (clamped to ``n`` so shards are never empty).
    partition:
        ``"contiguous"`` or ``"random"`` (seeded permutation); see
        :func:`repro.shard.partition.plan_shards`.
    shard_method:
        Per-shard aggregation algorithm: ``"sampling"`` (default,
        keeps shard memory at ``O(sample^2)``) or any instance method
        (``"agglomerative"``, ``"local-search"``, ...).
    inner:
        SAMPLING's inner algorithm (``shard_method="sampling"`` only).
    merge:
        Merge strategy (``"auto"``, ``"exact"``, ``"local-search"``);
        see :func:`repro.shard.merge.merge_shards`.
    max_exact_atoms:
        ``merge="auto"`` switches from exact branch-and-bound to
        LOCALSEARCH above this many atoms.
    p:
        Missing-value coin-flip probability (§2).
    rng:
        Root seed or generator.  One child generator is spawned per
        shard position (plus one for the partition shuffle) before
        anything runs, so results are bit-identical for every
        ``n_jobs``.
    weights:
        Optional per-row multiplicities (>= 1) — lets sharding compose
        with duplicate collapsing (``aggregate(collapse=True)``).
    n_jobs:
        Shard-level worker count; ``None`` consults ``REPRO_JOBS``
        (see :func:`repro.parallel.resolve_jobs`).
    backend:
        Pair-distance backend for instance-consuming shard methods.
    **params:
        Extra kwargs for the per-shard solver (e.g. ``sample_size=1000``,
        clamped to the shard size).
    """
    matrix = inputs if isinstance(inputs, np.ndarray) else as_label_matrix(inputs)
    validate_label_matrix(matrix)
    n = matrix.shape[0]
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError("weights must give one multiplicity per row")
        if np.any(weights < 1):
            raise ValueError("weights must be >= 1 (duplicate multiplicities)")
    if shard_method != "sampling":
        resolve_instance_method(shard_method)  # raises early on unknown names
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    shards = min(int(n_shards), n)

    # One independent child per shard *position*, plus one leading stream
    # for the partition shuffle — spawned before any execution, and spawned
    # identically in contiguous mode (where the shuffle stream goes unused)
    # so the per-shard seeds do not depend on the partition mode.
    if isinstance(rng, np.random.Generator):
        streams = list(rng.spawn(shards + 1))
    else:
        streams = [
            np.random.default_rng(s) for s in np.random.SeedSequence(rng).spawn(shards + 1)
        ]
    config = {
        "shard_method": shard_method,
        "inner": inner,
        "p": p,
        "weights": weights,
        "backend": backend,
        "params": dict(params),
    }

    with span("shard", n=n, shards=shards, method=shard_method) as root:
        with span("shard.partition", n=n, shards=shards, mode=partition):
            plan = plan_shards(n, shards, mode=partition, rng=streams[0])
        children = streams[1:]
        jobs = min(resolve_jobs(n_jobs), len(plan))

        with span("shard.solve", shards=len(plan), jobs=jobs) as solve_span:
            if jobs <= 1:
                outcomes = [
                    (i, *_solve_shard(matrix, indices, config, children[i], i))
                    for i, indices in enumerate(plan)
                ]
            else:
                with SharedNDArray.create(matrix.shape, matrix.dtype) as shared:
                    shared.array[...] = matrix
                    workers = pool(
                        jobs,
                        initializer=_init_shard_worker,
                        initargs=(shared.descriptor, plan, children, config),
                    )
                    try:
                        worker_outcomes = workers.map(_run_shard, range(len(plan)))
                    finally:
                        workers.close()
                        workers.join()
                outcomes = []
                for index, labels, cost, k, elapsed, spans in worker_outcomes:
                    merge_spans(spans)
                    outcomes.append((index, labels, cost, k, elapsed))
            outcomes.sort(key=lambda outcome: outcome[0])
            solve_span.set(busy_seconds=sum(outcome[4] for outcome in outcomes))

        # Shard cluster c of shard i becomes atom offset_i + c; canonical
        # shard labels make the offsets a simple running sum.
        atom_of = np.empty(n, dtype=np.int64)
        offset = 0
        for (_, labels, _, _, _), indices in zip(outcomes, plan):
            atom_of[indices] = offset + labels
            offset += int(labels.max()) + 1

        with span("shard.merge", atoms=offset, merge=merge) as merge_span:
            merged = merge_shards(
                matrix,
                atom_of,
                p=p,
                weights=weights,
                merge=merge,
                max_exact_atoms=max_exact_atoms,
            )
            merge_span.set(method=merged.method, cost=merged.atom_cost, k=merged.clustering.k)
        root.set(atoms=merged.n_atoms, merge=merged.method, k=merged.clustering.k)
    inc("shard.runs")
    set_gauge("shard.jobs", jobs)

    runs = tuple(
        ShardRun(
            index=i,
            size=int(plan[i].size),
            k=k,
            cost=cost,
            elapsed_seconds=elapsed,
        )
        for i, _, cost, k, elapsed in outcomes
    )
    return ShardResult(
        clustering=merged.clustering,
        shards=runs,
        partition=partition,
        merge_method=merged.method,
        n_atoms=merged.n_atoms,
        atom_cost=merged.atom_cost,
        jobs=jobs,
        elapsed_seconds=root.seconds,
    )
