"""Merge shard consensus clusterings by weighted-atom re-aggregation.

Every cluster produced inside a shard becomes an *atom*: a unit the
merged consensus keeps whole.  Treating atoms as weighted super-objects
is exact in the same sense as duplicate collapsing
(:mod:`repro.core.atoms`): for any clustering ``C`` of the atoms, the
cost of its expansion over the original objects decomposes as

    d(expand(C)) = d_atoms(C) + constant,

where the constant is the (clustering-independent) cost of the pairs
*inside* each atom and ``d_atoms`` is the objective of a small weighted
instance whose atom-pair distance is the weighted mean of the underlying
object-pair distances:

    X_atoms[A, B] = sum_{u in A, v in B} w_u w_v X[u, v] / (W_A W_B),

with ``W_A = sum_{u in A} w_u``.  Minimizing over the atom instance is
therefore minimizing the true objective over all consensus clusterings
that respect the shard clusters.

The atom distances are built without ever materializing the ``(n, n)``
matrix: per label column the weighted per-atom label histogram ``C``
gives the separated mass in ``O(K^2)`` —

    sep_j(A, B) = (conc_A conc_B - (C C^T)[A, B])
                  + (1 - p) (W_A W_B - conc_A conc_B)

where ``conc_A`` is atom ``A``'s concrete (non-missing) weight in column
``j`` and the ``(1 - p)`` term is the §2 coin-flip expectation for pairs
with a missing endpoint.  Total work is ``O(m (n + K^2))``.

The atom instance is then re-aggregated exactly (branch-and-bound, when
the atom count permits) or with agglomerative-seeded LOCALSEARCH.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.agglomerative import agglomerative
from ..algorithms.exact import _MAX_EXACT_N, exact_optimum
from ..algorithms.local_search import local_search
from ..core.instance import CorrelationInstance
from ..core.labels import MISSING, validate_label_matrix
from ..core.partition import Clustering

__all__ = [
    "DEFAULT_MAX_EXACT_ATOMS",
    "MERGE_METHODS",
    "MergeResult",
    "atom_distances",
    "merge_shards",
]

#: Accepted ``merge=`` strategies (``"auto"`` picks exact when small).
MERGE_METHODS = ("auto", "exact", "local-search")

#: ``merge="auto"`` re-aggregates exactly up to this many atoms.  Kept
#: below the solver's hard cap so auto never risks a pathological search;
#: raise it (up to 18) when shards produce few, well-separated clusters.
DEFAULT_MAX_EXACT_ATOMS = 14


@dataclass(frozen=True)
class MergeResult:
    """Outcome of one :func:`merge_shards` call.

    ``clustering`` covers the original objects; ``atom_clustering`` is
    the same partition expressed over the atoms.  ``method`` is the
    resolved strategy actually used (``"exact"``, ``"local-search"``, or
    ``"trivial"`` when there was nothing to merge), and ``atom_cost`` is
    the weighted atom-instance objective of the merged clustering (the
    true objective minus the constant intra-atom cost).
    """

    clustering: Clustering
    atom_clustering: Clustering
    n_atoms: int
    method: str
    atom_cost: float


def atom_distances(
    matrix: np.ndarray,
    atom_of: np.ndarray,
    p: float = 0.5,
    weights: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted mean pair distances between atoms, straight from labels.

    Parameters
    ----------
    matrix:
        ``(n, m)`` label matrix (``-1`` marks missing entries).
    atom_of:
        ``(n,)`` map from object to its atom, with contiguous atom ids
        ``0..K-1`` and every atom non-empty.
    p:
        Coin-flip probability for missing entries (§2).
    weights:
        Optional ``(n,)`` per-object multiplicities (compose with
        duplicate collapsing); default 1.

    Returns ``(X_atoms, atom_weights)`` — the ``(K, K)`` float64 distance
    matrix (zero diagonal, exactly symmetric) and the ``(K,)`` summed
    atom weights.
    """
    validate_label_matrix(matrix)
    n, m = matrix.shape
    atom_of = np.asarray(atom_of, dtype=np.int64)
    if atom_of.shape != (n,):
        raise ValueError(f"atom_of must map all {n} rows, got shape {atom_of.shape}")
    if n and (atom_of.min() < 0):
        raise ValueError("atom_of entries must be non-negative atom ids")
    n_atoms = int(atom_of.max()) + 1 if n else 0
    if weights is None:
        w = np.ones(n, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError("weights must give one multiplicity per row")
    atom_w = np.bincount(atom_of, weights=w, minlength=n_atoms)
    if not np.all(atom_w > 0.0):
        raise ValueError("atom ids must be contiguous 0..K-1 with every atom non-empty")

    total_mass = np.outer(atom_w, atom_w)
    separated = np.zeros((n_atoms, n_atoms), dtype=np.float64)
    one_minus_p = 1.0 - p
    for j in range(m):
        column = matrix[:, j]
        concrete = np.flatnonzero(column != MISSING)
        if concrete.size == 0:
            separated += one_minus_p * total_mass
            continue
        # Weighted per-atom histogram over the column's compacted labels.
        uniq, inverse = np.unique(column[concrete], return_inverse=True)
        inverse = inverse.reshape(-1)  # numpy 2.0.x returns (c, 1)
        counts = np.bincount(
            atom_of[concrete] * uniq.size + inverse,
            weights=w[concrete],
            minlength=n_atoms * uniq.size,
        ).reshape(n_atoms, uniq.size)
        concrete_w = counts.sum(axis=1)
        concrete_mass = np.outer(concrete_w, concrete_w)
        agree = counts @ counts.T
        separated += (concrete_mass - agree) + one_minus_p * (total_mass - concrete_mass)
    distances = separated / (m * total_mass)
    # The column kernels are symmetric in exact arithmetic; BLAS products
    # are not bitwise so, and the intra-atom diagonal is by definition not
    # a pair distance — force both before the contracts see the matrix.
    distances = 0.5 * (distances + distances.T)
    np.clip(distances, 0.0, 1.0, out=distances)
    np.fill_diagonal(distances, 0.0)
    return distances, atom_w


def merge_shards(
    matrix: np.ndarray,
    atom_of: np.ndarray,
    p: float = 0.5,
    weights: np.ndarray | None = None,
    merge: str = "auto",
    max_exact_atoms: int = DEFAULT_MAX_EXACT_ATOMS,
) -> MergeResult:
    """Re-aggregate shard clusters (atoms) into one consensus clustering.

    ``merge`` selects the strategy: ``"exact"`` branch-and-bounds the
    weighted atom instance (``ValueError`` beyond the solver cap),
    ``"local-search"`` polishes an agglomerative start, and ``"auto"``
    (default) uses exact up to ``max_exact_atoms`` atoms.  Either way the
    result is never worse than leaving the shard clusters as they are:
    agglomerative only performs cost-reducing merges from the atom
    singletons, local search only improves its start, and exact is
    optimal outright.
    """
    if merge not in MERGE_METHODS:
        raise ValueError(f"unknown merge strategy {merge!r}; choose from {MERGE_METHODS}")
    if not 1 <= max_exact_atoms <= _MAX_EXACT_N:
        raise ValueError(
            f"max_exact_atoms must lie in [1, {_MAX_EXACT_N}], got {max_exact_atoms}"
        )
    distances, atom_w = atom_distances(matrix, atom_of, p=p, weights=weights)
    n_atoms = atom_w.shape[0]
    if n_atoms == 1:
        atom_clustering = Clustering.single_cluster(1)
        return MergeResult(
            clustering=Clustering(atom_clustering.labels[atom_of]),
            atom_clustering=atom_clustering,
            n_atoms=1,
            method="trivial",
            atom_cost=0.0,
        )
    instance = CorrelationInstance(distances, m=matrix.shape[1], weights=atom_w)
    method = merge
    if method == "auto":
        method = "exact" if n_atoms <= max_exact_atoms else "local-search"
    if method == "exact":
        if n_atoms > _MAX_EXACT_N:
            raise ValueError(
                f"merge='exact' handles at most {_MAX_EXACT_N} atoms, got {n_atoms}; "
                "use merge='local-search' (or merge='auto') for larger shard fan-in"
            )
        atom_clustering, atom_cost = exact_optimum(instance)
    else:
        atom_clustering = local_search(instance, initial=agglomerative(instance))
        atom_cost = instance.cost(atom_clustering)
    return MergeResult(
        clustering=Clustering(atom_clustering.labels[atom_of]),
        atom_clustering=atom_clustering,
        n_atoms=n_atoms,
        method=method,
        atom_cost=float(atom_cost),
    )
