"""Sharded divide-and-merge aggregation (bounded per-shard instances).

Partition the objects into shards (:mod:`repro.shard.partition`), solve
each shard independently — in forked workers against a shared label
matrix — and merge the shard consensus clusterings by re-aggregating a
small weighted-atom instance (:mod:`repro.shard.merge`), exactly when
the atom count permits.  :func:`shard_aggregate` is the entry point;
``aggregate(method="sharded")`` and the ``repro shard`` CLI subcommand
route here.
"""

from .engine import QUALITY_ENVELOPE, ShardResult, ShardRun, shard_aggregate
from .merge import (
    DEFAULT_MAX_EXACT_ATOMS,
    MERGE_METHODS,
    MergeResult,
    atom_distances,
    merge_shards,
)
from .partition import PARTITION_MODES, plan_shards

__all__ = [
    "DEFAULT_MAX_EXACT_ATOMS",
    "MERGE_METHODS",
    "MergeResult",
    "PARTITION_MODES",
    "QUALITY_ENVELOPE",
    "ShardResult",
    "ShardRun",
    "atom_distances",
    "merge_shards",
    "plan_shards",
    "shard_aggregate",
]
