"""Shard planning: split the object set for divide-and-merge aggregation.

A shard plan is a list of disjoint, sorted index arrays covering
``0..n-1`` — one per shard, each non-empty, sizes differing by at most
one.  Two modes:

``contiguous``
    Rows ``0..n-1`` in order, cut into equal pieces.  Deterministic with
    no randomness at all; the right choice when the row order is already
    arbitrary (and the mode the metamorphic tests exploit, since shard
    boundaries can be aligned with known structure).
``random``
    A seeded permutation is cut into equal pieces.  Defends against
    adversarial row order (e.g. inputs sorted by class, which would give
    every shard a biased view of the clusterings).

Indices inside each shard are returned sorted so the shard's sub-matrix
preserves the global row order — sub-instance builds and costs are then
independent of the partition mode's internal shuffle.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PARTITION_MODES", "plan_shards"]

#: Accepted ``partition=`` modes for :func:`plan_shards`.
PARTITION_MODES = ("contiguous", "random")


def plan_shards(
    n: int,
    n_shards: int,
    mode: str = "contiguous",
    rng: np.random.Generator | int | None = None,
) -> list[np.ndarray]:
    """Split ``n`` objects into (at most) ``n_shards`` index arrays.

    ``n_shards`` is clamped to ``n`` so every shard is non-empty.  The
    ``rng`` only matters in ``"random"`` mode, where it seeds the
    permutation; ``"contiguous"`` never draws from it, so a caller may
    pass the same generator for either mode and downstream draws stay
    aligned.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if mode not in PARTITION_MODES:
        raise ValueError(f"unknown partition mode {mode!r}; choose from {PARTITION_MODES}")
    shards = min(int(n_shards), int(n))
    if mode == "random":
        generator = np.random.default_rng(rng)
        order = generator.permutation(n).astype(np.int64)
    else:
        order = np.arange(n, dtype=np.int64)
    return [np.sort(piece) for piece in np.array_split(order, shards)]
