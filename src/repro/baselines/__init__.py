"""Categorical-clustering baselines the paper compares against (§5.2)."""

from .limbo import limbo
from .rock import rock, rock_goodness_exponent

__all__ = ["limbo", "rock", "rock_goodness_exponent"]
