"""LIMBO (Andritsos, Tsaparas, Miller, Sevcik) — information-bottleneck baseline.

The paper compares against LIMBO on all three categorical datasets
(Tables 2 and 3 and the Census paragraph), citing its φ parameter with the
values the LIMBO paper suggests (φ=0.0 for Votes, 0.3 for Mushrooms,
1.0 for Census).

LIMBO views each tuple ``t`` as a distribution ``p(a | t)`` over the
attribute-value items it contains, and clusters tuples so that little
mutual information ``I(A; C)`` is lost.  The information loss of merging
two clusters is

    ΔI(c1, c2) = (p1 + p2) * JS_{π1,π2}(q1, q2)
               = (p1 + p2) H(mix) - p1 H(q1) - p2 H(q2)

with ``pi`` the cluster weights, ``qi = p(a | ci)``, and ``mix`` their
weighted average.  The algorithm has three phases:

1. **Summarization** — stream tuples into at most ``max_leaves``
   micro-clusters, merging a tuple into its closest micro-cluster when the
   information loss is below a φ-controlled threshold (our DCF tree is
   flat: a plain leaf list; the original's B-tree internals only matter
   for disk-resident data).  φ = 0 disables summarization up to the leaf
   budget; larger φ accepts lossier summaries sooner.
2. **Agglomerative IB** — greedy minimum-ΔI merging of the micro-clusters
   down to ``k`` clusters.
3. **Assignment** — each original tuple joins the final cluster whose
   merge would lose the least information.

This is a faithful single-machine reduction of LIMBO; the simplification
(flat leaf list, running-average φ threshold) is recorded in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from ..core.labels import MISSING
from ..core.partition import Clustering

__all__ = ["limbo"]


def _item_distributions(data: np.ndarray) -> np.ndarray:
    """Rows as distributions over (attribute, value) items: ``(n, D)`` dense.

    Item space: attribute ``j`` contributes ``arity_j`` coordinates; a row
    puts mass ``1 / present_j`` on each of its present values.
    """
    n, m = data.shape
    arities = [int(data[:, j].max()) + 1 if data[:, j].max() >= 0 else 1 for j in range(m)]
    offsets = np.concatenate([[0], np.cumsum(arities)])
    D = int(offsets[-1])
    distributions = np.zeros((n, D), dtype=np.float64)
    present_counts = (data != MISSING).sum(axis=1)
    present_counts[present_counts == 0] = 1
    for j in range(m):
        present = data[:, j] != MISSING
        rows = np.flatnonzero(present)
        columns = offsets[j] + data[rows, j]
        distributions[rows, columns] = 1.0
    distributions /= present_counts[:, None]
    return distributions


def _entropy_rows(distributions: np.ndarray) -> np.ndarray:
    """Shannon entropy of each row distribution (natural log)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(distributions > 0, distributions * np.log(distributions), 0.0)
    return -terms.sum(axis=1)


def _delta_information(
    weight_a: float,
    dist_a: np.ndarray,
    entropy_a: float,
    weights_b: np.ndarray,
    dists_b: np.ndarray,
    entropies_b: np.ndarray,
) -> np.ndarray:
    """ΔI of merging ``a`` with each of the ``b`` clusters (vectorized)."""
    total = weight_a + weights_b
    mix = (weight_a * dist_a[None, :] + weights_b[:, None] * dists_b) / total[:, None]
    return total * _entropy_rows(mix) - weight_a * entropy_a - weights_b * entropies_b


class _Leaves:
    """A flat, growable set of weighted micro-cluster distributions."""

    def __init__(self, dimension: int, capacity: int):
        self.weights = np.zeros(capacity, dtype=np.float64)
        self.dists = np.zeros((capacity, dimension), dtype=np.float64)
        self.entropies = np.zeros(capacity, dtype=np.float64)
        self.count = 0

    def view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        c = self.count
        return self.weights[:c], self.dists[:c], self.entropies[:c]

    def add(self, weight: float, dist: np.ndarray) -> None:
        i = self.count
        self.weights[i] = weight
        self.dists[i] = dist
        self.entropies[i] = _entropy_rows(dist[None, :])[0]
        self.count += 1

    def merge_into(self, target: int, weight: float, dist: np.ndarray) -> None:
        total = self.weights[target] + weight
        self.dists[target] = (
            self.weights[target] * self.dists[target] + weight * dist
        ) / total
        self.weights[target] = total
        self.entropies[target] = _entropy_rows(self.dists[target][None, :])[0]

    def merge_pair(self, i: int, j: int) -> None:
        """Merge leaf j into leaf i and swap the last leaf into j's slot."""
        self.merge_into(i, float(self.weights[j]), self.dists[j])
        last = self.count - 1
        if j != last:
            self.weights[j] = self.weights[last]
            self.dists[j] = self.dists[last]
            self.entropies[j] = self.entropies[last]
        self.count = last


def _summarize(
    distributions: np.ndarray, phi: float, max_leaves: int
) -> _Leaves:
    """Phase 1: stream rows into at most ``max_leaves`` micro-clusters."""
    n, dimension = distributions.shape
    capacity = min(n, max_leaves) + 1
    leaves = _Leaves(dimension, capacity)
    row_weight = 1.0 / n
    threshold = 0.0
    observed: list[float] = []
    for i in range(n):
        dist = distributions[i]
        if leaves.count == 0:
            leaves.add(row_weight, dist)
            continue
        weights, dists, entropies = leaves.view()
        entropy_row = _entropy_rows(dist[None, :])[0]
        deltas = _delta_information(
            row_weight, dist, entropy_row, weights, dists, entropies
        )
        best = int(np.argmin(deltas))
        observed.append(float(deltas[best]))
        if len(observed) == 32 and phi > 0.0:
            threshold = phi * float(np.mean(observed))
        if deltas[best] <= threshold:
            leaves.merge_into(best, row_weight, dist)
        elif leaves.count < max_leaves:
            leaves.add(row_weight, dist)
        else:
            # Leaf budget exhausted: absorb into the closest leaf anyway
            # (the lossy regime the φ parameter is meant to control).
            leaves.merge_into(best, row_weight, dist)
    return leaves


def _delta_row(leaves: _Leaves, i: int) -> np.ndarray:
    """ΔI of merging leaf ``i`` with every current leaf (inf at ``i``)."""
    weights, dists, entropies = leaves.view()
    row = _delta_information(
        float(weights[i]), dists[i], float(entropies[i]), weights, dists, entropies
    )
    row[i] = np.inf
    return row


def _agglomerate(leaves: _Leaves, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Phase 2: greedy minimum-ΔI merging down to ``k`` clusters.

    A best-partner cache (value and index per leaf) avoids rescanning all
    pairs on every merge: only rows touching the merged pair are repaired,
    so the phase costs ``O(B^2 D)`` overall instead of ``O(B^3 D)``.
    Returns the final ``(weights, distributions)`` of the ``k`` clusters.
    """
    if leaves.count <= k:
        weights, dists, _ = leaves.view()
        return weights.copy(), dists.copy()

    best_idx = np.empty(leaves.count, dtype=np.int64)
    best_val = np.empty(leaves.count, dtype=np.float64)
    for i in range(leaves.count):
        row = _delta_row(leaves, i)
        best_idx[i] = int(np.argmin(row))
        best_val[i] = row[best_idx[i]]

    while leaves.count > k:
        a = int(np.argmin(best_val[: leaves.count]))
        b = int(best_idx[a])
        i, j = (a, b) if a < b else (b, a)  # i survives, j's slot is recycled
        last = leaves.count - 1
        # Rows whose cached partner was i or j are stale (content changed);
        # collect them against the *old* pointers, before any remapping.
        stale = set(np.flatnonzero((best_idx[:last] == i) | (best_idx[:last] == j)).tolist())
        stale.add(i)
        leaves.merge_pair(i, j)  # merge j into i; the old last leaf moves to slot j
        count = leaves.count
        best_idx = best_idx[:count]
        best_val = best_val[:count]
        if j < count:
            # Pointers to the moved slot keep their values, only the index moves.
            best_idx[best_idx == last] = j
            stale.add(j)  # its own cached partner may have been i or j
        for r in sorted(stale):
            if r >= count:
                continue
            row = _delta_row(leaves, int(r))
            best_idx[r] = int(np.argmin(row))
            best_val[r] = row[best_idx[r]]
        # Every other row can only have *improved* toward the merged cluster.
        row_i = _delta_row(leaves, i)
        improved = row_i < best_val
        improved[i] = False
        best_val[improved] = row_i[improved]
        best_idx[improved] = i
    weights, dists, _ = leaves.view()
    return weights.copy(), dists.copy()


def limbo(
    data: np.ndarray,
    k: int,
    phi: float = 0.0,
    max_leaves: int = 512,
) -> Clustering:
    """Cluster categorical rows with LIMBO.

    Parameters
    ----------
    data:
        ``(n, m)`` integer-coded categorical matrix (``-1`` = missing).
    k:
        Target number of clusters (like ROCK, LIMBO needs it up front).
    phi:
        Summarization aggressiveness; 0 keeps micro-clusters exact up to
        ``max_leaves``.
    max_leaves:
        Micro-cluster budget of the summarization phase.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D categorical matrix")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}")
    if phi < 0:
        raise ValueError("phi must be non-negative")

    distributions = _item_distributions(data)
    leaves = _summarize(distributions, phi, max_leaves)
    weights, cluster_dists = _agglomerate(leaves, k)

    # Phase 3: every tuple joins the cluster losing the least information.
    cluster_entropies = _entropy_rows(cluster_dists)
    row_entropies = _entropy_rows(distributions)
    labels = np.empty(n, dtype=np.int64)
    row_weight = 1.0 / n
    block = 512
    for start in range(0, n, block):
        stop = min(start + block, n)
        rows = distributions[start:stop]  # (b, D)
        total = row_weight + weights  # (k,)
        # Mixtures for every (row, cluster) pair: (b, k, D).
        mix = (
            row_weight * rows[:, None, :] + (weights[:, None] * cluster_dists)[None, :, :]
        ) / total[None, :, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(mix > 0, mix * np.log(mix), 0.0)
        mix_entropy = -terms.sum(axis=2)  # (b, k)
        deltas = (
            total[None, :] * mix_entropy
            - row_weight * row_entropies[start:stop, None]
            - (weights * cluster_entropies)[None, :]
        )
        labels[start:stop] = np.argmin(deltas, axis=1)
    return Clustering(labels)
