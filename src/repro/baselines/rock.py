"""ROCK (Guha, Rastogi, Shim) — the link-based categorical baseline.

The paper compares its aggregation algorithms against ROCK on the Votes
and Mushrooms datasets (Tables 2 and 3), with the θ values the original
ROCK paper suggests (0.73 for Votes, 0.8 for Mushrooms).

ROCK in brief: two rows are *neighbours* when their Jaccard similarity
(over attribute-value items) is at least θ; ``link(u, v)`` counts their
common neighbours; clusters are merged greedily by the goodness measure

    g(Ci, Cj) = links(Ci, Cj) / ((ni + nj)^e - ni^e - nj^e),
    e = 1 + 2 f(θ),   f(θ) = (1 - θ) / (1 + θ)

(the denominator is the expected number of cross links), until ``k``
clusters remain or no cross-linked pair is left — leftover unlinked
clusters are ROCK's outliers.  Complexity is cubic in the worst case; the
paper notes ROCK "does not scale" to Census-sized data, which this
implementation reproduces honestly (an optional uniform sample plus a
link-based assignment phase, as in the original paper, handles larger
inputs).
"""

from __future__ import annotations

import numpy as np

from ..cluster.distances import jaccard_similarity_matrix
from ..core.partition import Clustering

__all__ = ["rock", "rock_goodness_exponent"]


def rock_goodness_exponent(theta: float) -> float:
    """The exponent ``1 + 2 f(θ)`` of ROCK's expected-links normalizer."""
    if not 0.0 <= theta < 1.0:
        raise ValueError(f"theta must be in [0, 1), got {theta}")
    f = (1.0 - theta) / (1.0 + theta)
    return 1.0 + 2.0 * f


def _link_matrix(rows: np.ndarray, theta: float) -> np.ndarray:
    """links[u, v] = number of common neighbours of rows u and v.

    The boolean matmul runs in float32 (BLAS-accelerated; counts below
    2^24 are exact) and is rounded back to integers.
    """
    similarity = jaccard_similarity_matrix(rows)
    adjacency = similarity >= theta
    np.fill_diagonal(adjacency, False)
    dense = adjacency.astype(np.float32)
    return np.rint(dense @ dense.T).astype(np.int64)


def _merge_to_k(links: np.ndarray, k: int, exponent: float) -> np.ndarray:
    """Greedy goodness-maximizing merging; returns final labels.

    Keeps a best-partner cache per cluster (analogous to a nearest-
    neighbour cache) so each merge costs O(n) plus repairs.
    """
    n = links.shape[0]
    links = links.astype(np.float64, copy=True)
    np.fill_diagonal(links, 0.0)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    labels = np.arange(n, dtype=np.int64)

    def repair_rows(rows: np.ndarray) -> None:
        """Recompute the best partner of each given row, vectorized."""
        if rows.size == 0:
            return
        columns = np.flatnonzero(active)
        sub_links = links[np.ix_(rows, columns)]
        row_pow = sizes[rows][:, None].astype(np.float64) ** exponent
        col_pow = sizes[columns][None, :].astype(np.float64) ** exponent
        joint = (sizes[rows][:, None] + sizes[columns][None, :]).astype(np.float64)
        denominator = joint ** exponent - row_pow - col_pow
        with np.errstate(invalid="ignore", divide="ignore"):
            goodness = sub_links / denominator
        goodness[sub_links <= 0] = -np.inf
        goodness[rows[:, None] == columns[None, :]] = -np.inf
        positions = np.argmax(goodness, axis=1)
        best_idx[rows] = columns[positions]
        best_val[rows] = goodness[np.arange(rows.size), positions]

    best_idx = np.full(n, -1, dtype=np.int64)
    best_val = np.full(n, -np.inf, dtype=np.float64)
    repair_rows(np.arange(n))

    remaining = n
    while remaining > k:
        candidates = np.flatnonzero(active)
        pos = int(np.argmax(best_val[candidates]))
        i = int(candidates[pos])
        if not np.isfinite(best_val[i]):
            break  # no cross-linked pair left: remaining clusters are outliers
        j = int(best_idx[i])

        links[i] += links[j]
        links[:, i] = links[i]
        links[i, i] = 0.0
        links[j, :] = 0.0
        links[:, j] = 0.0
        sizes[i] += sizes[j]
        active[j] = False
        labels[labels == j] = i
        remaining -= 1
        if remaining <= k:
            break

        # Repair the best-partner cache: sizes[i] changed, so every pair
        # involving i has a new goodness; rows pointing at i or j are stale.
        stale = np.flatnonzero(active & ((best_idx == i) | (best_idx == j)))
        repair_rows(np.union1d(stale, np.array([i])))
        # Pairs (r, i) may have improved for rows not previously pointing
        # at i; membership in the cache is only a lower bound, so check.
        others = np.flatnonzero(active)
        others = others[(others != i)]
        if others.size:
            denominator = (
                (sizes[others] + sizes[i]).astype(np.float64) ** exponent
                - sizes[others].astype(np.float64) ** exponent
                - float(sizes[i]) ** exponent
            )
            with np.errstate(invalid="ignore", divide="ignore"):
                towards_i = links[others, i] / denominator
            towards_i[links[others, i] <= 0] = -np.inf
            improved = towards_i > best_val[others]
            rows = others[improved]
            best_val[rows] = towards_i[improved]
            best_idx[rows] = i
    return labels


def rock(
    data: np.ndarray,
    k: int,
    theta: float = 0.73,
    sample_size: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> Clustering:
    """Cluster categorical rows with ROCK.

    Parameters
    ----------
    data:
        ``(n, m)`` integer-coded categorical matrix (``-1`` = missing).
    k:
        Target number of clusters (ROCK requires it, unlike the paper's
        aggregation algorithms — a point the paper emphasizes).
    theta:
        Jaccard neighbour threshold.
    sample_size:
        If given, run the cubic merging on a uniform sample and assign the
        remaining rows to the cluster with the highest normalized
        neighbour count (the original paper's scaling strategy).
    rng:
        Seed or generator for the sample.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D categorical matrix")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}")
    exponent = rock_goodness_exponent(theta)

    if sample_size is None or sample_size >= n:
        links = _link_matrix(data, theta)
        labels = _merge_to_k(links, k, exponent)
        return Clustering(labels)

    generator = np.random.default_rng(rng)
    sample = np.sort(generator.choice(n, size=sample_size, replace=False))
    links = _link_matrix(data[sample], theta)
    sample_labels = Clustering(_merge_to_k(links, k, exponent)).labels

    # Assignment phase: neighbours of each leftover row among the sample,
    # normalized by the expected neighbour count of the target cluster.
    similarity_threshold = theta
    labels = np.full(n, -1, dtype=np.int64)
    labels[sample] = sample_labels
    cluster_count = int(sample_labels.max()) + 1
    cluster_sizes = np.bincount(sample_labels, minlength=cluster_count)
    rest = np.setdiff1d(np.arange(n), sample, assume_unique=True)
    if rest.size:
        from ..cluster.distances import jaccard_cross_similarity

        block = 2048
        power = (cluster_sizes + 1.0) ** exponent - cluster_sizes ** exponent - 1.0
        power[power <= 0] = 1.0
        for start in range(0, rest.size, block):
            chunk = rest[start : start + block]
            sims = jaccard_cross_similarity(data[chunk], data[sample])
            neighbours = sims >= similarity_threshold
            counts = np.zeros((chunk.size, cluster_count), dtype=np.float64)
            for cluster in range(cluster_count):
                counts[:, cluster] = neighbours[:, sample_labels == cluster].sum(axis=1)
            scores = counts / power[None, :]
            best = np.argmax(scores, axis=1)
            chosen = best.astype(np.int64)
            chosen[counts[np.arange(chunk.size), best] == 0] = -1
            labels[chunk] = chosen
    # Unassigned rows (no neighbours at all) become their own singletons.
    unassigned = np.flatnonzero(labels < 0)
    labels[unassigned] = cluster_count + np.arange(unassigned.size)
    return Clustering(labels)
