"""repro — Clustering Aggregation (Gionis, Mannila, Tsaparas, ICDE 2005).

A complete, from-scratch reproduction of the paper's system:

* the clustering-aggregation / correlation-clustering framework
  (:mod:`repro.core`),
* the BESTCLUSTERING, BALLS, AGGLOMERATIVE, FURTHEST, LOCALSEARCH and
  SAMPLING algorithms, plus the near-linear CC-PIVOT and CMSY rounding
  from the later correlation-clustering literature
  (:mod:`repro.algorithms`),
* the vanilla clustering substrate the paper's experiments feed into the
  aggregator — k-means and hierarchical linkages (:mod:`repro.cluster`),
* the ROCK and LIMBO categorical-clustering baselines
  (:mod:`repro.baselines`),
* dataset generators mirroring the paper's synthetic and UCI workloads
  (:mod:`repro.datasets`), and
* the evaluation metrics of Section 5 (:mod:`repro.metrics`).

Quickstart::

    from repro import Clustering, aggregate

    inputs = [Clustering([0, 0, 1, 1, 2, 2]),
              Clustering([0, 1, 0, 1, 2, 3]),
              Clustering([0, 1, 0, 1, 2, 2])]
    result = aggregate(inputs, method="agglomerative")
    print(result.clustering, result.disagreements)
"""

from .core import (
    AggregationResult,
    Clustering,
    CorrelationInstance,
    aggregate,
    available_methods,
    clustering_distance,
    total_disagreement,
)
from .stream import IncrementalCorrelationInstance, StreamingAggregator

__version__ = "1.0.0"

__all__ = [
    "AggregationResult",
    "Clustering",
    "CorrelationInstance",
    "IncrementalCorrelationInstance",
    "StreamingAggregator",
    "aggregate",
    "available_methods",
    "clustering_distance",
    "total_disagreement",
    "__version__",
]
