"""Census — a schema-faithful synthetic stand-in for UCI Census/Adult.

The real extract has 32,561 people, 8 categorical attributes (workclass,
education, marital status, occupation, ...), 6 numerical attributes the
paper does not use for the categorical experiment, and a binary salary
class (>50K / <=50K).  The paper reports that clustering aggregation finds
50–60 clusters ("distinct social groups": male Eskimos in farming-fishing,
married Asian-Pacific islander females, ...) with classification error
around 24%, and that the dataset is big enough to *require* the SAMPLING
algorithm.

This generator reproduces that regime: 55 latent socio-demographic
subgroups with Zipf-distributed sizes, subgroup-conditional attribute
distributions over the real arities, and a salary class whose
subgroup-conditional probability is drawn so that even a perfect subgroup
recovery leaves ≈24% classification error (most social groups mix salary
brackets).
"""

from __future__ import annotations

import numpy as np

from .categorical import CategoricalDataset

__all__ = ["generate_census"]

#: The 8 categorical attributes of the real Adult extract, with their
#: published value names (used only for human-readable cluster profiles).
_VALUE_NAMES: dict[str, list[str]] = {
    "workclass": [
        "Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov", "Local-gov",
        "State-gov", "Without-pay", "Never-worked", "Unknown",
    ],
    "education": [
        "Bachelors", "Some-college", "11th", "HS-grad", "Prof-school", "Assoc-acdm",
        "Assoc-voc", "9th", "7th-8th", "12th", "Masters", "1st-4th", "10th",
        "Doctorate", "5th-6th", "Preschool",
    ],
    "marital-status": [
        "Married-civ-spouse", "Divorced", "Never-married", "Separated", "Widowed",
        "Married-spouse-absent", "Married-AF-spouse",
    ],
    "occupation": [
        "Tech-support", "Craft-repair", "Other-service", "Sales", "Exec-managerial",
        "Prof-specialty", "Handlers-cleaners", "Machine-op-inspct", "Adm-clerical",
        "Farming-fishing", "Transport-moving", "Priv-house-serv", "Protective-serv",
        "Armed-Forces", "Unknown",
    ],
    "relationship": [
        "Wife", "Own-child", "Husband", "Not-in-family", "Other-relative", "Unmarried",
    ],
    "race": ["White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black"],
    "sex": ["Female", "Male"],
    "native-country": [
        "United-States", "Cambodia", "England", "Puerto-Rico", "Canada", "Germany",
        "Outlying-US", "India", "Japan", "Greece", "South", "China", "Cuba", "Iran",
        "Honduras", "Philippines", "Italy", "Poland", "Jamaica", "Vietnam", "Mexico",
        "Portugal", "Ireland", "France", "Dominican-Republic", "Laos", "Ecuador",
        "Taiwan", "Haiti", "Columbia", "Hungary", "Guatemala", "Nicaragua", "Scotland",
        "Thailand", "Yugoslavia", "El-Salvador", "Trinadad-Tobago", "Peru", "Hong",
        "Holand-Netherlands", "Unknown",
    ],
}

_ATTRIBUTES: tuple[tuple[str, int], ...] = tuple(
    (name, len(values)) for name, values in _VALUE_NAMES.items()
)

_TOTAL = 32561
_GROUPS = 55
_MODAL_WEIGHT = 0.82


def generate_census(
    n: int | None = None,
    n_groups: int = _GROUPS,
    rng: np.random.Generator | int | None = 0,
) -> CategoricalDataset:
    """Generate the Census dataset.

    Parameters
    ----------
    n:
        Total rows (default 32,561, the real extract's size).
    n_groups:
        Number of latent socio-demographic subgroups (default 55, the
        middle of the paper's reported 50–60 consensus clusters).
    rng:
        Seed or generator.
    """
    generator = np.random.default_rng(rng)
    total = _TOTAL if n is None else int(n)
    if total < n_groups:
        raise ValueError(f"need at least {n_groups} rows, got {total}")

    # Zipf-ish subgroup sizes: a few big social groups, a long tail.
    raw = 1.0 / np.arange(1, n_groups + 1) ** 0.85
    sizes = np.maximum(1, np.round(raw / raw.sum() * total)).astype(np.int64)
    sizes[0] += total - int(sizes.sum())
    groups = np.repeat(np.arange(n_groups), sizes)

    # Salary probability per subgroup: Beta(1.2, 3) keeps most groups mixed,
    # so even perfect subgroup recovery leaves E_C ≈ 24%.
    salary_probability = generator.beta(1.2, 3.0, size=n_groups)
    classes = (generator.random(total) < salary_probability[groups]).astype(np.int64)

    m = len(_ATTRIBUTES)
    data = np.empty((total, m), dtype=np.int32)
    for j, (_, arity) in enumerate(_ATTRIBUTES):
        modal = generator.integers(0, arity, size=n_groups)
        # A background distribution shared by all groups (e.g. most people
        # of every group are from the same native country), plus a modal
        # spike per group.
        background = generator.dirichlet(np.full(arity, 0.8))
        for g in range(n_groups):
            weights = (1.0 - _MODAL_WEIGHT) * background
            weights[modal[g]] += _MODAL_WEIGHT
            weights /= weights.sum()
            rows = groups == g
            data[rows, j] = generator.choice(arity, size=int(rows.sum()), p=weights)

    order = generator.permutation(total)
    return CategoricalDataset(
        name="census",
        data=data[order],
        attribute_names=[name for name, _ in _ATTRIBUTES],
        classes=classes[order],
        class_names=["<=50K", ">50K"],
        value_names=[list(_VALUE_NAMES[name]) for name, _ in _ATTRIBUTES],
    )
