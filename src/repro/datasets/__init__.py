"""Dataset generators mirroring the paper's synthetic and UCI workloads.

The UCI datasets themselves (Votes, Mushrooms, Census/Adult) are not
available offline; each generator reproduces the published schema, size,
missing-value count and latent structure so that every experiment
exercises the same code paths.  See DESIGN.md §2.5 for the substitution
rationale.
"""

from .categorical import CategoricalDataset
from .census import generate_census
from .movies import generate_movies
from .mushrooms import generate_mushrooms
from .synthetic2d import Points2D, gaussian_with_noise, seven_groups
from .votes import generate_votes

__all__ = [
    "CategoricalDataset",
    "generate_census",
    "generate_movies",
    "generate_mushrooms",
    "Points2D",
    "gaussian_with_noise",
    "seven_groups",
    "generate_votes",
]
