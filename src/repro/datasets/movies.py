"""Movies — the paper's introductory categorical scenario (§2).

"Consider a Movie database.  Each tuple corresponds to a movie defined
over attributes such as Director, Actor, Actress, Genre, Year ... each of
the categorical attributes defines naturally a clustering."  The paper
also uses it for outlier intuition: "a horror movie featuring actress
Julia.Roberts and directed by the 'independent' director Lars.vonTrier"
participates in big clusters of *different* attributes that never agree,
so aggregation singles it out.

This generator builds exactly that world: a handful of production
"scenes" (e.g. a director who always works with the same actors in the
same genre), movies drawn from a scene with attribute noise, plus a few
deliberately *incoherent* movies whose attribute values are sampled from
different scenes — the planted outliers the aggregation should isolate.
"""

from __future__ import annotations

import numpy as np

from .categorical import CategoricalDataset

__all__ = ["generate_movies"]

_ATTRIBUTES = ("director", "actor", "actress", "genre", "decade")

#: Values per attribute per scene are drawn from disjoint pools so scenes
#: are identifiable; pools per attribute:
_POOL_SIZES = {"director": 3, "actor": 4, "actress": 4, "genre": 2, "decade": 2}

_SCENE_COHESION = 0.92  # probability a movie uses one of its scene's values
#: Within a scene's pool, the first value dominates (every scene has *the*
#: director/lead/genre it is known for) — this is what makes attribute
#: values into meaningful clusterings of the movies.
_DOMINANT_WEIGHT = 0.85


def generate_movies(
    n: int | None = 400,
    n_scenes: int = 6,
    n_outliers: int = 8,
    rng: np.random.Generator | int | None = 0,
) -> CategoricalDataset:
    """Generate the Movies dataset.

    Parameters
    ----------
    n:
        Total movies, including the outliers.
    n_scenes:
        Number of coherent production scenes (the "true" clusters;
        stored as the evaluation classes, outliers labelled last).
    n_outliers:
        Movies whose every attribute is sampled from a *different*
        random scene — cross-scene chimeras with no consensus home.
    rng:
        Seed or generator.
    """
    if n is None:
        n = 400
    if n_outliers >= n:
        raise ValueError("need more movies than outliers")
    if n_scenes < 2:
        raise ValueError("need at least two scenes")
    generator = np.random.default_rng(rng)
    regular = n - n_outliers
    scene_of = generator.integers(0, n_scenes, size=regular)

    m = len(_ATTRIBUTES)
    data = np.empty((n, m), dtype=np.int32)
    arities = []
    for j, attribute in enumerate(_ATTRIBUTES):
        pool = _POOL_SIZES[attribute]
        arity = pool * n_scenes
        arities.append(arity)
        # Regular movies: a value from their scene's pool — dominated by
        # the scene's signature value — with high probability, any value
        # otherwise.
        weights = np.full(pool, (1.0 - _DOMINANT_WEIGHT) / max(pool - 1, 1))
        weights[0] = _DOMINANT_WEIGHT if pool > 1 else 1.0
        in_pool = generator.choice(pool, size=regular, p=weights)
        scene_pick = in_pool + scene_of * pool
        anywhere = generator.integers(0, arity, size=regular)
        coherent = generator.random(regular) < _SCENE_COHESION
        data[:regular, j] = np.where(coherent, scene_pick, anywhere)
        # Outliers: each attribute from an independently random scene's
        # signature value (big clusters that never agree — the paper's
        # Julia Roberts / Lars von Trier horror movie).
        outlier_scenes = generator.integers(0, n_scenes, size=n_outliers)
        data[regular:, j] = outlier_scenes * pool

    classes = np.concatenate(
        [scene_of, np.full(n_outliers, n_scenes, dtype=np.int64)]
    )
    order = generator.permutation(n)
    value_names = [
        [f"{attribute}-{v}" for v in range(arity)]
        for attribute, arity in zip(_ATTRIBUTES, arities)
    ]
    return CategoricalDataset(
        name="movies",
        data=data[order],
        attribute_names=list(_ATTRIBUTES),
        classes=classes[order],
        class_names=[f"scene-{s}" for s in range(n_scenes)] + ["outlier"],
        value_names=value_names,
    )
