"""Categorical datasets and the categorical → clusterings mapping (§2).

The paper's key observation for categorical data: every categorical
attribute *is* a clustering — one cluster per distinct value — so a table
with ``m`` categorical attributes is an aggregation problem with ``m``
input clusterings.  :class:`CategoricalDataset` stores integer-coded
columns (``-1`` = missing), optional per-row class labels used only for
evaluation, and human-readable names; :meth:`CategoricalDataset.label_matrix`
is the bridge into :func:`repro.aggregate`.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.labels import MISSING, validate_label_matrix

__all__ = ["CategoricalDataset"]


@dataclass
class CategoricalDataset:
    """An integer-coded categorical table with optional class labels.

    Attributes
    ----------
    name:
        Dataset identifier (used in reports).
    data:
        ``(n, m)`` int array; column ``j`` holds codes ``0..arity_j - 1``
        with ``-1`` marking missing entries.
    attribute_names:
        One name per column.
    classes:
        Optional per-row class codes (never fed to the algorithms; used
        for the classification-error metric only).
    class_names:
        Names of the class codes.
    value_names:
        Optional per-column lists naming each code.
    """

    name: str
    data: np.ndarray
    attribute_names: list[str]
    classes: np.ndarray | None = None
    class_names: list[str] | None = None
    value_names: list[list[str]] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        validate_label_matrix(self.data)
        if len(self.attribute_names) != self.data.shape[1]:
            raise ValueError("one attribute name per column required")
        if self.classes is not None:
            self.classes = np.asarray(self.classes)
            if self.classes.shape != (self.data.shape[0],):
                raise ValueError("classes must align with the rows")

    # ------------------------------------------------------------------
    # Shape & stats
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of rows (objects)."""
        return int(self.data.shape[0])

    @property
    def m(self) -> int:
        """Number of categorical attributes (input clusterings)."""
        return int(self.data.shape[1])

    def arities(self) -> np.ndarray:
        """Number of distinct (non-missing) values per attribute."""
        return np.array(
            [np.unique(col[col != MISSING]).size for col in self.data.T], dtype=np.int64
        )

    def missing_count(self) -> int:
        """Total number of missing entries."""
        return int(np.count_nonzero(self.data == MISSING))

    # ------------------------------------------------------------------
    # The categorical -> clustering-aggregation bridge
    # ------------------------------------------------------------------

    def label_matrix(self) -> np.ndarray:
        """The attributes viewed as input clusterings (the §2 mapping)."""
        return self.data

    def subset(self, rows: np.ndarray) -> "CategoricalDataset":
        """The dataset restricted to the given row indices."""
        rows = np.asarray(rows)
        return CategoricalDataset(
            name=self.name,
            data=self.data[rows],
            attribute_names=list(self.attribute_names),
            classes=None if self.classes is None else self.classes[rows],
            class_names=self.class_names,
            value_names=self.value_names,
        )

    # ------------------------------------------------------------------
    # CSV round-trip
    # ------------------------------------------------------------------

    def to_csv(self, path: str | Path) -> None:
        """Write rows as CSV with a header; missing entries become '?'.

        The class column (when present) is written last under the header
        ``class``; value names are used when available, raw codes otherwise.
        """
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            header = list(self.attribute_names)
            if self.classes is not None:
                header.append("class")
            writer.writerow(header)
            for i in range(self.n):
                row: list[str] = []
                for j in range(self.m):
                    code = int(self.data[i, j])
                    if code == MISSING:
                        row.append("?")
                    elif self.value_names is not None:
                        row.append(self.value_names[j][code])
                    else:
                        row.append(str(code))
                if self.classes is not None:
                    code = int(self.classes[i])
                    if self.class_names is not None:
                        row.append(self.class_names[code])
                    else:
                        row.append(str(code))
                writer.writerow(row)

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        name: str | None = None,
        class_column: str | None = "class",
        missing_token: str = "?",
    ) -> "CategoricalDataset":
        """Load a CSV with a header row, encoding values to integer codes.

        ``class_column`` (if present in the header) becomes the evaluation
        labels; pass ``None`` to treat every column as an attribute.
        """
        path = Path(path)
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            rows = [row for row in reader if row]
        if not rows:
            raise ValueError(f"{path} contains no data rows")
        columns = list(zip(*rows))
        class_values: tuple[str, ...] | None = None
        if class_column is not None and class_column in header:
            position = header.index(class_column)
            class_values = columns.pop(position)
            header = header[:position] + header[position + 1 :]

        n = len(rows)
        data = np.full((n, len(columns)), MISSING, dtype=np.int32)
        value_names: list[list[str]] = []
        for j, column in enumerate(columns):
            names: list[str] = []
            codebook: dict[str, int] = {}
            for i, token in enumerate(column):
                if token == missing_token:
                    continue
                if token not in codebook:
                    codebook[token] = len(names)
                    names.append(token)
                data[i, j] = codebook[token]
            value_names.append(names)

        classes = None
        class_names = None
        if class_values is not None:
            class_names = sorted(set(class_values))
            lookup = {label: code for code, label in enumerate(class_names)}
            classes = np.array([lookup[value] for value in class_values], dtype=np.int64)

        return cls(
            name=name or path.stem,
            data=data,
            attribute_names=header,
            classes=classes,
            class_names=class_names,
            value_names=value_names,
        )
