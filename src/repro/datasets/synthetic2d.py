"""Two-dimensional synthetic datasets of the paper's Section 5.1 and 5.3.

Two generators:

* :func:`seven_groups` — the Figure 3 dataset: seven perceptually distinct
  groups engineered to break the vanilla algorithms in different ways
  (narrow bridges between clusters defeat single linkage, uneven cluster
  sizes defeat k-means, an elongated cluster defeats complete linkage).
* :func:`gaussian_with_noise` — the Figure 4 / Figure 5 dataset family:
  ``k*`` Gaussian clusters around uniform-random centers in the unit
  square plus a fraction of uniform background noise, at any total size
  (up to the 1M points of Figure 5 right).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Points2D", "seven_groups", "gaussian_with_noise"]

#: Truth label given to uniform background-noise points.
NOISE_LABEL = -1


@dataclass
class Points2D:
    """A 2-D point set with ground-truth group labels.

    ``truth`` holds group ids ``0..k-1`` and ``-1`` for background noise
    (Figure 4); it is used for evaluation only, never by the algorithms.
    """

    points: np.ndarray
    truth: np.ndarray
    name: str

    @property
    def n(self) -> int:
        return int(self.points.shape[0])

    def ascii_plot(self, labels: np.ndarray | None = None, width: int = 72, height: int = 24) -> str:
        """Render the points as ASCII art, coloured by ``labels`` (or truth).

        Clusters are drawn with distinct characters; useful for examples in
        a plotting-free environment.
        """
        marks = labels if labels is not None else self.truth
        glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
        canvas = [[" "] * width for _ in range(height)]
        xs, ys = self.points[:, 0], self.points[:, 1]
        x_lo, x_hi = float(xs.min()), float(xs.max())
        y_lo, y_hi = float(ys.min()), float(ys.max())
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0
        for (x, y), mark in zip(self.points, marks):
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            glyph = "." if mark < 0 else glyphs[int(mark) % len(glyphs)]
            canvas[row][col] = glyph
        return "\n".join("".join(line) for line in canvas)


def _blob(
    rng: np.random.Generator, center: tuple[float, float], std: float, count: int
) -> np.ndarray:
    return rng.normal(loc=center, scale=std, size=(count, 2))


def _bridge(
    rng: np.random.Generator,
    start: tuple[float, float],
    end: tuple[float, float],
    count: int,
    jitter: float = 0.12,
) -> np.ndarray:
    t = np.linspace(0.15, 0.85, count)[:, None]
    line = np.asarray(start) * (1.0 - t) + np.asarray(end) * t
    return line + rng.normal(scale=jitter, size=(count, 2))


def seven_groups(rng: np.random.Generator | int | None = 0) -> Points2D:
    """The Figure 3 dataset: seven groups with algorithm-breaking features.

    Roughly 790 points.  Groups 0 and 1 are joined by a narrow bridge of
    points (single linkage chains them together); group 3 is elongated
    (complete linkage splits it); sizes range from 35 to ~165 (k-means
    balances them incorrectly).  Bridge points carry the truth label of
    their nearer endpoint group.
    """
    generator = np.random.default_rng(rng)
    groups: list[np.ndarray] = []
    labels: list[np.ndarray] = []

    def add(points: np.ndarray, label: int) -> None:
        groups.append(points)
        labels.append(np.full(points.shape[0], label, dtype=np.int64))

    # Group 0: large round blob.
    add(_blob(generator, (5.0, 12.0), 1.3, 165), 0)
    # Group 1: second blob, connected to group 0 by a narrow bridge.
    add(_blob(generator, (9.5, 12.0), 0.9, 110), 1)
    bridge_01 = _bridge(generator, (5.0, 12.0), (9.5, 12.0), 16)
    halves = bridge_01[:, 0] < 7.25
    add(bridge_01[halves], 0)
    add(bridge_01[~halves], 1)
    # Group 2: small tight blob.
    add(_blob(generator, (14.0, 14.5), 0.45, 40), 2)
    # Group 3: long elongated horizontal cluster.
    count = 150
    xs = generator.uniform(0.5, 10.5, count)
    ys = 3.8 + generator.normal(scale=0.3, size=count)
    add(np.column_stack([xs, ys]), 3)
    # Groups 4 and 5: two blobs joined by a second bridge.
    add(_blob(generator, (13.2, 5.2), 0.85, 95), 4)
    add(_blob(generator, (16.4, 8.2), 0.7, 85), 5)
    bridge_45 = _bridge(generator, (13.2, 5.2), (16.4, 8.2), 12)
    halves = bridge_45[:, 1] < 6.7
    add(bridge_45[halves], 4)
    add(bridge_45[~halves], 5)
    # Group 6: small sparse blob far from everything.
    add(_blob(generator, (2.0, 17.5), 0.55, 30), 6)

    points = np.vstack(groups)
    truth = np.concatenate(labels)
    return Points2D(points=points, truth=truth, name="seven-groups")


def gaussian_with_noise(
    k: int,
    points_per_cluster: int = 100,
    noise_fraction: float = 0.2,
    cluster_std: float = 0.045,
    rng: np.random.Generator | int | None = 0,
) -> Points2D:
    """``k`` Gaussian clusters in the unit square plus uniform noise (Fig. 4).

    ``k`` cluster centers are drawn uniformly at random in the unit square,
    ``points_per_cluster`` points are sampled normally around each, and an
    extra ``noise_fraction`` of the total cluster points are added
    uniformly (truth label ``-1``), matching the paper's construction.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if not 0.0 <= noise_fraction < 1.0:
        raise ValueError("noise_fraction must be in [0, 1)")
    generator = np.random.default_rng(rng)
    # Keep centers away from the border and from each other so the "correct"
    # clusters of Figure 4 are perceptually distinct.
    centers = _spread_centers(generator, k)
    cluster_points = np.vstack(
        [_blob(generator, tuple(center), cluster_std, points_per_cluster) for center in centers]
    )
    truth = np.repeat(np.arange(k, dtype=np.int64), points_per_cluster)
    noise_count = int(round(noise_fraction * cluster_points.shape[0]))
    noise = generator.uniform(0.0, 1.0, size=(noise_count, 2))
    points = np.vstack([cluster_points, noise])
    truth = np.concatenate([truth, np.full(noise_count, NOISE_LABEL, dtype=np.int64)])
    order = generator.permutation(points.shape[0])
    return Points2D(points=points[order], truth=truth[order], name=f"gaussian-{k}")


def _spread_centers(
    generator: np.random.Generator, k: int, minimum_gap: float = 0.28, attempts: int = 2000
) -> np.ndarray:
    """Rejection-sample ``k`` centers in [0.12, 0.88]^2 with pairwise spacing."""
    centers: list[np.ndarray] = []
    gap = minimum_gap
    for _ in range(attempts):
        candidate = generator.uniform(0.12, 0.88, size=2)
        if all(np.linalg.norm(candidate - existing) >= gap for existing in centers):
            centers.append(candidate)
            if len(centers) == k:
                return np.array(centers)
    # Relax the gap if the square got crowded (large k).
    while len(centers) < k:
        gap *= 0.85
        for _ in range(attempts):
            candidate = generator.uniform(0.12, 0.88, size=2)
            if all(np.linalg.norm(candidate - existing) >= gap for existing in centers):
                centers.append(candidate)
                if len(centers) == k:
                    break
    return np.array(centers)
