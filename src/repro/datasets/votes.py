"""Votes — a schema-faithful synthetic stand-in for UCI Congressional Votes.

The real dataset (435 congresspersons, 16 yes/no issues, 288 missing
votes, republican/democrat class labels) is not redistributable offline,
so this generator reproduces its statistical shape: the published class
split (267 democrats / 168 republicans), sixteen issues with the
polarization profile of the real roll calls (a mix of party-line votes
like physician-fee-freeze and bipartisan ones like water-project), and
exactly 288 missing entries.  Members vote per-issue according to their
party's yes-probability, independently — the same generative story the
paper's analysis relies on ("most people vote according to the official
position of their political parties, so having two clusters is natural").

What carries over to the experiments: two dominant consensus clusters,
classification error in the low teens, and missing values exercised
through the coin-flip model.  Absolute E_D values differ from the paper's
(recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from ..core.labels import MISSING
from .categorical import CategoricalDataset

__all__ = ["generate_votes", "VOTE_ISSUES"]

#: (issue name, P(yes | democrat), P(yes | republican)) — approximating the
#: class-conditional yes rates of the real 1984 roll calls.
VOTE_ISSUES: tuple[tuple[str, float, float], ...] = (
    ("handicapped-infants", 0.60, 0.19),
    ("water-project-cost-sharing", 0.50, 0.50),
    ("adoption-of-the-budget-resolution", 0.89, 0.13),
    ("physician-fee-freeze", 0.05, 0.99),
    ("el-salvador-aid", 0.22, 0.95),
    ("religious-groups-in-schools", 0.48, 0.90),
    ("anti-satellite-test-ban", 0.77, 0.24),
    ("aid-to-nicaraguan-contras", 0.83, 0.15),
    ("mx-missile", 0.76, 0.12),
    ("immigration", 0.47, 0.56),
    ("synfuels-corporation-cutback", 0.51, 0.13),
    ("education-spending", 0.14, 0.87),
    ("superfund-right-to-sue", 0.29, 0.86),
    ("crime", 0.35, 0.98),
    ("duty-free-exports", 0.64, 0.09),
    ("export-administration-act-south-africa", 0.94, 0.66),
)

#: Class sizes of the real dataset.
_DEMOCRATS = 267
_REPUBLICANS = 168
_MISSING_ENTRIES = 288

#: Fraction of "crossover" members whose votes lean toward the other party
#: (conservative democrats / liberal republicans in the real 1984 house).
#: They are what keeps the consensus clustering's classification error in
#: the paper's low-teens range rather than near zero.
_CROSSOVER_FRACTION = 0.14
#: Party-line weight ranges for loyal and crossover members.
_LOYAL_WEIGHT = (0.92, 1.0)
_CROSSOVER_WEIGHT = (0.15, 0.45)
#: Sharpening exponent pushing the published yes-rates toward 0/1; the raw
#: rates are marginal (averaged over member ideology), so using them per
#: member under-separates the parties relative to the real roll calls.
_SHARPEN = 2.5


def generate_votes(
    n: int | None = None,
    missing: int | None = None,
    rng: np.random.Generator | int | None = 0,
) -> CategoricalDataset:
    """Generate the Votes dataset.

    Parameters
    ----------
    n:
        Total rows; ``None`` uses the real dataset's 435 (267 democrats,
        168 republicans).  Other sizes keep the same class proportions.
    missing:
        Number of missing entries (default 288, as in the real data),
        placed uniformly at random.
    rng:
        Seed or generator.
    """
    generator = np.random.default_rng(rng)
    if n is None:
        democrats, republicans = _DEMOCRATS, _REPUBLICANS
    else:
        if n < 2:
            raise ValueError("need at least two rows")
        democrats = max(1, round(n * _DEMOCRATS / (_DEMOCRATS + _REPUBLICANS)))
        republicans = max(1, n - democrats)
    total = democrats + republicans
    if missing is None:
        missing = round(_MISSING_ENTRIES * total / (_DEMOCRATS + _REPUBLICANS))

    classes = np.concatenate(
        [np.zeros(democrats, dtype=np.int64), np.ones(republicans, dtype=np.int64)]
    )
    generator.shuffle(classes)

    m = len(VOTE_ISSUES)
    yes_probability = np.empty((2, m), dtype=np.float64)
    for j, (_, p_dem, p_rep) in enumerate(VOTE_ISSUES):
        yes_probability[0, j] = p_dem
        yes_probability[1, j] = p_rep
    # Sharpen toward 0/1 (odds raised to _SHARPEN) to restore the per-member
    # polarization the marginal rates average away.
    odds = (yes_probability / (1.0 - yes_probability)) ** _SHARPEN
    yes_probability = odds / (1.0 + odds)
    # Per-member party-line weight: loyal members vote their party's
    # probabilities, crossover members blend heavily toward the other party.
    crossover = generator.random(total) < _CROSSOVER_FRACTION
    weight = generator.uniform(*_LOYAL_WEIGHT, size=total)
    weight[crossover] = generator.uniform(*_CROSSOVER_WEIGHT, size=int(crossover.sum()))
    own = yes_probability[classes]
    other = yes_probability[1 - classes]
    member_probability = weight[:, None] * own + (1.0 - weight)[:, None] * other
    draws = generator.random((total, m))
    data = (draws < member_probability).astype(np.int32)  # 1 = yes, 0 = no

    if missing:
        if missing > total * m:
            raise ValueError("more missing entries than cells")
        flat = generator.choice(total * m, size=missing, replace=False)
        data.ravel()[flat] = MISSING

    return CategoricalDataset(
        name="votes",
        data=data,
        attribute_names=[name for name, _, _ in VOTE_ISSUES],
        classes=classes,
        class_names=["democrat", "republican"],
        value_names=[["no", "yes"] for _ in range(m)],
    )
