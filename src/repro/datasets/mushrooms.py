"""Mushrooms — a schema-faithful synthetic stand-in for UCI Mushrooms.

The real dataset has 8124 mushrooms over 22 categorical attributes, 2480
missing entries (all in the stalk-root attribute), and a poisonous/edible
class label.  The paper's central finding on it (Tables 1 and 3) is that
although there are two *classes*, the data holds roughly seven natural
*clusters*, mostly but not perfectly class-pure — the AGGLOMERATIVE
confusion matrix of Table 1 shows seven clusters whose poisonous/edible
mixtures give an 11.1% classification error.

This generator builds exactly that structure: seven latent species groups
with the sizes and class mixtures of Table 1, group-conditional attribute
distributions over the real attribute arities (including the arity-1
``veil-type`` column, which carries no information, and all missing
entries concentrated in ``stalk-root``).  A consensus algorithm that
recovers the seven groups therefore reproduces Table 1's confusion matrix
shape and E_C ≈ 11% — the paper's headline number for this dataset.
"""

from __future__ import annotations

import numpy as np

from ..core.labels import MISSING
from .categorical import CategoricalDataset

__all__ = ["generate_mushrooms", "GROUP_SIZES", "GROUP_POISONOUS"]

#: The 22 attribute names and arities of the real dataset.
_ATTRIBUTES: tuple[tuple[str, int], ...] = (
    ("cap-shape", 6),
    ("cap-surface", 4),
    ("cap-color", 10),
    ("bruises", 2),
    ("odor", 9),
    ("gill-attachment", 2),
    ("gill-spacing", 2),
    ("gill-size", 2),
    ("gill-color", 12),
    ("stalk-shape", 2),
    ("stalk-root", 5),
    ("stalk-surface-above-ring", 4),
    ("stalk-surface-below-ring", 4),
    ("stalk-color-above-ring", 9),
    ("stalk-color-below-ring", 9),
    ("veil-type", 1),
    ("veil-color", 4),
    ("ring-number", 3),
    ("ring-type", 5),
    ("spore-print-color", 9),
    ("population", 6),
    ("habitat", 7),
)

_STALK_ROOT_COLUMN = 10  # all real missing values live here
_TOTAL = 8124
_MISSING_ENTRIES = 2480

#: Cluster sizes of the paper's Table 1 (columns c1..c7).
GROUP_SIZES: tuple[int, ...] = (3672, 1056, 1296, 1864, 192, 36, 8)
#: Poisonous counts per cluster in Table 1 (the rest of each group is edible).
GROUP_POISONOUS: tuple[int, ...] = (808, 0, 1296, 1768, 0, 36, 8)

#: Probability mass a group's modal value gets in an informative attribute.
_MODAL_WEIGHT = 0.86
#: Fraction of attributes that are noise (shared distribution across groups),
#: so groups are separable but not trivially so — BALLS and BESTCLUSTERING
#: should do visibly worse than AGGLOMERATIVE/LOCALSEARCH as in Table 3.
_NOISE_ATTRIBUTES = 6
#: Attributes whose modal value depends on the class *within* each group.
#: In the real data odor and spore-print-color almost determine the class;
#: this weak extra signal is what lets a finer clustering (LIMBO at k=9,
#: or aggregation splitting a mixed group) beat the 7-group purity floor,
#: as in Table 3.
_CLASS_SIGNAL_ATTRIBUTES = (4, 19)  # odor, spore-print-color


def generate_mushrooms(
    n: int | None = None,
    rng: np.random.Generator | int | None = 0,
) -> CategoricalDataset:
    """Generate the Mushrooms dataset.

    Parameters
    ----------
    n:
        Total rows; ``None`` gives the full 8124.  Smaller values scale
        the seven group sizes (and the missing-entry count)
        proportionally, preserving the structure for quick runs.
    rng:
        Seed or generator.
    """
    generator = np.random.default_rng(rng)
    sizes, poisonous_counts, missing_entries = _scaled_sizes(n)
    total = int(sum(sizes))
    groups = np.repeat(np.arange(len(sizes)), sizes)

    classes = np.zeros(total, dtype=np.int64)  # 0 = edible, 1 = poisonous
    offset = 0
    for size, poisonous in zip(sizes, poisonous_counts):
        poisoned = generator.choice(size, size=poisonous, replace=False)
        classes[offset + poisoned] = 1
        offset += size

    m = len(_ATTRIBUTES)
    data = np.empty((total, m), dtype=np.int32)
    noise_columns = set(
        generator.choice(
            [j for j in range(m) if _ATTRIBUTES[j][1] >= 2],
            size=_NOISE_ATTRIBUTES,
            replace=False,
        ).tolist()
    )
    for j, (_, arity) in enumerate(_ATTRIBUTES):
        if arity == 1:
            data[:, j] = 0
            continue
        if j in noise_columns:
            # Same skewed distribution for every group: no signal.
            weights = generator.dirichlet(np.full(arity, 1.2))
            data[:, j] = generator.choice(arity, size=total, p=weights)
            continue
        # Informative attribute: each group votes for its own modal value
        # (collisions between groups are natural for small arities).
        modal = generator.integers(0, arity, size=len(sizes))
        class_modal = generator.integers(0, arity, size=(len(sizes), 2))
        for g, size in enumerate(sizes):
            rows = groups == g
            if j in _CLASS_SIGNAL_ATTRIBUTES and arity >= 4:
                # Within-group class signal: poisonous and edible members of
                # the same group favour different values.
                for cls in (0, 1):
                    weights = np.full(arity, (1.0 - _MODAL_WEIGHT) / max(arity - 1, 1))
                    weights[class_modal[g, cls]] = _MODAL_WEIGHT
                    members = rows & (classes == cls)
                    data[members, j] = generator.choice(
                        arity, size=int(members.sum()), p=weights
                    )
                continue
            weights = np.full(arity, (1.0 - _MODAL_WEIGHT) / max(arity - 1, 1))
            weights[modal[g]] = _MODAL_WEIGHT
            data[rows, j] = generator.choice(arity, size=int(size), p=weights)

    if missing_entries:
        rows = generator.choice(total, size=min(missing_entries, total), replace=False)
        data[rows, _STALK_ROOT_COLUMN] = MISSING

    order = generator.permutation(total)
    return CategoricalDataset(
        name="mushrooms",
        data=data[order],
        attribute_names=[name for name, _ in _ATTRIBUTES],
        classes=classes[order],
        class_names=["edible", "poisonous"],
    )


def _scaled_sizes(n: int | None) -> tuple[list[int], list[int], int]:
    """Scale Table 1's group sizes (and missing count) to ``n`` rows."""
    if n is None or n == _TOTAL:
        return list(GROUP_SIZES), list(GROUP_POISONOUS), _MISSING_ENTRIES
    if n < len(GROUP_SIZES):
        raise ValueError(f"need at least {len(GROUP_SIZES)} rows, got {n}")
    scale = n / _TOTAL
    sizes = [max(1, round(size * scale)) for size in GROUP_SIZES]
    # Absorb rounding drift in the largest group.
    sizes[0] += n - sum(sizes)
    poisonous = [
        min(size, round(count * scale))
        for size, count in zip(sizes, GROUP_POISONOUS)
    ]
    missing = round(_MISSING_ENTRIES * scale)
    return sizes, poisonous, missing
