"""Incremental objective bookkeeping for move-based algorithms.

Two pieces of machinery live here:

* :class:`MoveEvaluator` — given a :class:`~repro.core.instance.CorrelationInstance`,
  maintains for every object ``v`` and cluster ``C_i`` the mass
  ``M(v, C_i) = sum_{u in C_i} X_vu`` (Section 4, LOCALSEARCH).  With it,
  the cost of placing ``v`` into ``C_i`` is

      d(v, C_i) = M(v, C_i) + sum_{j != i} (|C_j| - M(v, C_j))

  and the cost of opening a singleton is ``sum_j (|C_j| - M(v, C_j))``, so
  each candidate move is evaluated in O(1) after O(n) maintenance per move.

* :class:`ClusterCountTables` — the same quantities computed from a raw
  label matrix through per-cluster attribute-value counts, *without ever
  materializing X*.  This powers the linear-time assignment phase of the
  SAMPLING algorithm on datasets far too large for an explicit distance
  matrix.
"""

from __future__ import annotations

import numpy as np

from .instance import CorrelationInstance
from .labels import MISSING, validate_label_matrix
from .partition import Clustering

__all__ = ["MoveEvaluator", "ClusterCountTables"]


class MoveEvaluator:
    """Mutable clustering state with O(1) single-node move evaluation.

    The evaluator keeps cluster membership in *slots* (columns of the mass
    matrix); empty slots are recycled when clusters vanish and new slots are
    appended when singletons are opened.  Use :meth:`clustering` to read the
    current partition back out.
    """

    _GROWTH = 8  # extra slots allocated when the mass matrix is enlarged

    def __init__(self, instance: CorrelationInstance, initial: Clustering | np.ndarray) -> None:
        labels = initial.labels if isinstance(initial, Clustering) else np.asarray(initial)
        if labels.shape != (instance.n,):
            raise ValueError("initial labels must cover every object of the instance")
        self._instance = instance
        backend = instance.backend
        # Dense instances keep the historical float64 alias of X (the
        # streaming engine refreshes that buffer in place); lazy instances
        # fetch rows through the backend on demand.
        self._X: np.ndarray | None = (
            np.asarray(backend.dense(), dtype=np.float64) if backend.name == "dense" else None
        )
        self._node_weights = instance.effective_weights()
        n = instance.n
        k = int(labels.max()) + 1
        self._labels = labels.astype(np.int64).copy()
        # "Sizes" are total multiplicities; masses are weighted column sums,
        # so all score formulas below hold verbatim on atom instances.
        self._sizes = np.zeros(k, dtype=np.float64)
        np.add.at(self._sizes, self._labels, self._node_weights)
        self._mass = np.zeros((n, k), dtype=np.float64)
        singleton_start = k == n and np.array_equal(self._labels, np.arange(n))
        if self._X is not None:
            if instance.weights is None:
                weighted_X = self._X
            else:
                weighted_X = self._X * self._node_weights[None, :]
            if singleton_start:
                # All singletons in index order (the cold-start clustering):
                # M(v, {u}) = w_u · X[v, u], i.e. the mass matrix IS weighted_X.
                np.copyto(self._mass, weighted_X)
            else:
                for slot in range(k):
                    members = np.flatnonzero(self._labels == slot)
                    if members.size:
                        self._mass[:, slot] = weighted_X[:, members].sum(axis=1)
        else:
            # Lazy backend: same formulas, one row block at a time.  The
            # per-row axis-1 reductions are independent of the row tiling,
            # so the masses are bitwise identical to the dense init.
            members_by_slot = (
                None
                if singleton_start
                else [np.flatnonzero(self._labels == slot) for slot in range(k)]
            )
            for start, stop in backend.blocks():
                rows = backend.row_block(start, stop).astype(np.float64, copy=False)
                if instance.weights is not None:
                    rows = rows * self._node_weights[None, :]
                if members_by_slot is None:
                    self._mass[start:stop] = rows
                else:
                    for slot, members in enumerate(members_by_slot):
                        if members.size:
                            self._mass[start:stop, slot] = rows[:, members].sum(axis=1)
        self._free_slots = [slot for slot in range(k) if self._sizes[slot] == 0]

    def _row(self, v: int) -> np.ndarray:
        """Row ``v`` of X in float64 (do not mutate)."""
        if self._X is not None:
            return self._X[v]
        return self._instance.backend.row(v).astype(np.float64, copy=False)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return int(self._labels.size)

    def slot_of(self, v: int) -> int:
        """Current slot (cluster column) of object ``v``; -1 if detached."""
        return int(self._labels[v])

    def active_slots(self) -> np.ndarray:
        return np.flatnonzero(self._sizes > 0)

    def current_labels(self) -> np.ndarray:
        """A copy of the raw slot labels (``-1`` for a detached object)."""
        return self._labels.copy()

    def clustering(self) -> Clustering:
        """The current partition (all objects must be attached)."""
        if np.any(self._labels < 0):
            raise RuntimeError("cannot export a clustering while an object is detached")
        return Clustering(self._labels)

    def total_cost(self) -> float:
        """Correlation cost of the current partition (recomputed from scratch)."""
        return self._instance.cost(self.clustering())

    def total_cost_fast(self) -> float:
        """Cost of the current partition read off the maintained masses.

        ``d(C) = T - S_all + Σ_v M(v, own) - P_within`` — O(n) work beyond
        one pass to sum X, since the within-cluster distance sum is half of
        ``Σ_v M(v, own cluster)``.  Equals :meth:`total_cost` up to float
        rounding (the masses are maintained incrementally).  Weighted
        instances fall back to the from-scratch computation; requires
        every object attached.
        """
        if self._instance.weights is not None:
            return self.total_cost()
        if np.any(self._labels < 0):
            raise RuntimeError("cannot evaluate the cost while an object is detached")
        n = self.n
        total_pairs = n * (n - 1) / 2.0
        if self._X is not None:
            sum_all = float(self._X.sum(dtype=np.float64)) / 2.0
        else:
            sum_all = self._instance.backend.total_mass() / 2.0
        within_mass = float(self._mass[np.arange(n), self._labels].sum(dtype=np.float64))
        sizes = self._sizes
        pairs_within = float((sizes * (sizes - 1.0)).sum()) / 2.0
        return total_pairs - sum_all + within_mass - pairs_within

    def compact(self) -> None:
        """Renumber clusters to ``0..k-1`` by first appearance; shrink state.

        Slot ids are stable across moves, so a long-lived evaluator (the
        streaming engine keeps one across updates) can end up with a mass
        matrix far wider than its active cluster count — e.g. ``n`` slots
        after a cold start from singletons — making every O(n·k) operation
        silently O(n²).  Compaction uses :class:`Clustering`'s canonical
        first-appearance numbering, so a compacted evaluator is
        slot-for-slot identical (tie-breaking included) to one freshly
        built from the exported clustering.  Requires every object
        attached.
        """
        if np.any(self._labels < 0):
            raise RuntimeError("cannot compact while an object is detached")
        old_slots, first_index, inverse = np.unique(
            self._labels, return_index=True, return_inverse=True
        )
        order = np.argsort(np.argsort(first_index))
        k = old_slots.size
        sizes = np.empty(k, dtype=np.float64)
        sizes[order] = self._sizes[old_slots]
        mass = np.empty((self.n, k), dtype=np.float64)
        mass[:, order] = self._mass[:, old_slots]
        self._labels = order[inverse].astype(np.int64)
        self._sizes = sizes
        self._mass = mass
        self._free_slots = []

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------

    def detach(self, v: int) -> int:
        """Remove ``v`` from its cluster; returns the slot it came from."""
        slot = int(self._labels[v])
        if slot < 0:
            raise RuntimeError(f"object {v} is already detached")
        weight = self._node_weights[v]
        self._labels[v] = -1
        self._sizes[slot] -= weight
        # X is symmetric, so the contiguous row stands in for the strided column.
        self._mass[:, slot] -= weight * self._row(v)
        if self._sizes[slot] <= 1e-9:
            self._sizes[slot] = 0.0
            self._mass[:, slot] = 0.0
            self._free_slots.append(slot)
        return slot

    def attach(self, v: int, slot: int) -> None:
        """Place detached object ``v`` into the cluster at ``slot``."""
        if self._labels[v] >= 0:
            raise RuntimeError(f"object {v} is already attached")
        if slot < 0 or slot >= self._sizes.size or self._sizes[slot] == 0:
            raise ValueError(f"slot {slot} is not an active cluster")
        weight = self._node_weights[v]
        self._labels[v] = slot
        self._sizes[slot] += weight
        self._mass[:, slot] += weight * self._row(v)

    def attach_singleton(self, v: int) -> int:
        """Open a new singleton cluster for detached ``v``; returns its slot."""
        if self._labels[v] >= 0:
            raise RuntimeError(f"object {v} is already attached")
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            slot = self._sizes.size
            extra = self._GROWTH
            self._sizes = np.concatenate([self._sizes, np.zeros(extra, dtype=np.float64)])
            self._mass = np.concatenate(
                [self._mass, np.zeros((self.n, extra), dtype=np.float64)], axis=1
            )
            self._free_slots.extend(range(slot + 1, slot + extra))
        weight = self._node_weights[v]
        self._labels[v] = slot
        self._sizes[slot] = weight
        self._mass[:, slot] = weight * self._row(v)
        return slot

    # ------------------------------------------------------------------
    # Cost queries (for a detached object)
    # ------------------------------------------------------------------

    def placement_scores(self, v: int) -> tuple[np.ndarray, np.ndarray, float]:
        """Relative placement costs of detached ``v``.

        Returns ``(slots, scores, singleton_score)`` where ``scores[i]`` is
        the cost of attaching ``v`` to ``slots[i]`` *minus the common term*
        shared by every choice, and ``singleton_score`` is the score of
        opening a singleton (always 0 by construction):

            d(v, C_i) - common = 2 * M(v, C_i) - |C_i|

        Lower is better; comparisons between choices are exact, and on
        weighted (atom) instances scores are scaled by the object's
        multiplicity so differences equal true cost deltas.
        """
        if self._labels[v] >= 0:
            raise RuntimeError(f"object {v} must be detached before evaluating moves")
        slots = self.active_slots()
        weight = self._node_weights[v]
        scores = weight * (2.0 * self._mass[v, slots] - self._sizes[slots])
        return slots, scores, 0.0

    def score_of(self, v: int, slot: int) -> float:
        """Relative cost of attaching detached ``v`` to the active ``slot``."""
        if slot < 0 or slot >= self._sizes.size or self._sizes[slot] == 0:
            raise ValueError(f"slot {slot} is not an active cluster")
        weight = self._node_weights[v]
        return float(weight * (2.0 * self._mass[v, slot] - self._sizes[slot]))

    def is_active(self, slot: int) -> bool:
        """Whether ``slot`` currently holds a non-empty cluster."""
        return 0 <= slot < self._sizes.size and bool(self._sizes[slot] > 0)

    def best_placement(self, v: int) -> tuple[int, float]:
        """Best destination for detached ``v``.

        Returns ``(slot, score)``; ``slot == -1`` means a singleton is
        (weakly) best.  Ties between a cluster and the singleton go to the
        cluster (merging never loses, and it keeps results deterministic).
        """
        slots, scores, singleton = self.placement_scores(v)
        if slots.size == 0:
            return -1, singleton
        best = int(np.argmin(scores))
        if scores[best] <= singleton:
            return int(slots[best]), float(scores[best])
        return -1, singleton

    def move_to_best(self, v: int) -> bool:
        """Detach ``v``, re-attach at the best destination; True if it moved."""
        origin = self.detach(v)
        origin_was_singleton = self._sizes[origin] == 0
        slot, _ = self.best_placement(v)
        if slot == -1:
            self.attach_singleton(v)
            # Re-opening a singleton for a node that already was one is not a move.
            return not origin_was_singleton
        self.attach(v, slot)
        return slot != origin

    def candidate_movers(self, eps: float = 0.0) -> np.ndarray:
        """Indices of attached nodes whose best move currently improves.

        One vectorized O(n·k) scan with the *current* masses: a node is a
        candidate when some other cluster (or a fresh singleton) scores
        strictly below staying put.  Scores go stale as moves are applied,
        so callers re-verify each candidate with :meth:`relocate_if_better`
        — the scan only prunes the sweep from O(n) relocation attempts to
        the handful of plausible movers.  Requires every object attached.
        """
        if np.any(self._labels < 0):
            raise RuntimeError("candidate scan requires every object attached")
        slots = self.active_slots()
        weights = self._node_weights
        scores = weights[:, None] * (2.0 * self._mass[:, slots] - self._sizes[slots])
        # Column position of each node's own cluster within the slot list.
        position = np.empty(self._sizes.size, dtype=np.int64)
        position[slots] = np.arange(slots.size)
        own_pos = position[self._labels]
        rows = np.arange(self.n)
        stay = scores[rows, own_pos] + weights * weights
        scores[rows, own_pos] = np.inf
        best_other = scores.min(axis=1) if slots.size > 1 else np.full(self.n, np.inf, dtype=np.float64)
        alone = self._sizes[self._labels] == weights
        singleton = np.where(alone, np.inf, 0.0)
        return np.flatnonzero(np.minimum(best_other, singleton) < stay - eps)

    def relocate_if_better(self, v: int, eps: float = 0.0) -> bool:
        """Move attached ``v`` to its best destination only if it strictly wins.

        Evaluates every candidate *without* detaching: since ``X[v, v] = 0``
        the masses ``M(v, ·)`` are unchanged by removing ``v``, so the score
        of staying put is ``w·(2·M(v, own) - (|own| - w))`` — the usual
        formula with the origin shrunk by ``v``'s own weight — while every
        other cluster scores the standard ``w·(2·M(v, C_i) - |C_i|)``.  A
        node that stays costs O(k) instead of the O(n) detach/attach pair,
        which makes warm-started LOCALSEARCH sweeps (few movers) linear in
        practice.  Returns True iff ``v`` moved; decisions are identical to
        the detach/score/re-attach sequence.
        """
        own = int(self._labels[v])
        if own < 0:
            raise RuntimeError(f"object {v} must be attached to relocate in place")
        weight = float(self._node_weights[v])
        slots = self.active_slots()
        scores = weight * (2.0 * self._mass[v, slots] - self._sizes[slots])
        own_pos = int(np.searchsorted(slots, own))  # active_slots() is sorted
        stay_score = float(scores[own_pos]) + weight * weight
        alone = self._sizes[own] == self._node_weights[v]
        # A fresh singleton scores 0 — but for a node already alone it is the
        # same partition as staying, not a move.
        best_slot, best_score = (own, stay_score) if alone else (-1, 0.0)
        scores[own_pos] = np.inf
        if slots.size > 1:
            pos = int(np.argmin(scores))
            if scores[pos] < best_score:
                best_slot, best_score = int(slots[pos]), float(scores[pos])
        if best_score >= stay_score - eps:
            return False
        self.detach(v)
        if best_slot == -1:
            self.attach_singleton(v)
        else:
            self.attach(v, best_slot)
        return True

    def apply_stream_update(
        self, column: np.ndarray, p: float, scale: float, factor: float
    ) -> None:
        """Follow a streaming coin-flip update of ``X`` without a rebuild.

        The streaming engine updates its distance matrix affinely:
        ``X ← scale·X + factor·sep(column)`` with ``sep`` the §2 coin-flip
        separation terms of one arriving clustering.  Masses are linear in
        ``X``, so they follow as ``M ← scale·M + factor·contrib`` where
        ``contrib[v, c] = Σ_{u∈c} sep(column; v, u)`` comes from per-cluster
        label counts in O(n·k) — no O(n²·k) mass rebuild.  The caller must
        have refreshed the evaluator's (aliased) ``X`` buffer already.
        Requires unit node weights, every object attached, and the
        coin-flip missing model (the "average" model's per-pair
        denominators make the X update non-affine).
        """
        if self._instance.weights is not None:
            raise RuntimeError("streaming mass updates require unit node weights")
        if np.any(self._labels < 0):
            raise RuntimeError("streaming mass updates require every object attached")
        labels = self._labels
        k = self._sizes.size
        present = column != MISSING
        one_minus_p = 1.0 - p
        sizes = np.bincount(labels, minlength=k).astype(np.float64)
        contrib = np.empty((self.n, k), dtype=np.float64)
        if present.any():
            values = column[present]
            arity = int(values.max()) + 1
            counts = np.zeros((k, arity), dtype=np.float64)
            np.add.at(counts, (labels[present], values), 1.0)
            concrete = counts.sum(axis=1)
            # Concrete v vs cluster c: one per concretely-differing member,
            # a coin flip per member missing at this clustering.
            contrib[present] = (concrete[None, :] - counts[:, values].T) + one_minus_p * (
                sizes - concrete
            )[None, :]
        contrib[~present] = one_minus_p * sizes
        # X's diagonal is pinned to 0, so v contributes nothing to its own
        # cluster's mass; the concrete case already counts sep(v, v) = 0,
        # but a missing v must not pay the coin flip against itself.
        missing_rows = np.flatnonzero(~present)
        contrib[missing_rows, labels[missing_rows]] -= one_minus_p
        self._mass *= scale
        self._mass += factor * contrib


class ClusterCountTables:
    """Assignment costs against fixed clusters, from a raw label matrix.

    Given a label matrix (columns = input clusterings, ``-1`` = missing) and
    a partition of a *subset* of the rows into ``k`` clusters, the tables
    answer, for any other row ``v``, the masses ``M(v, C_l)`` needed for the
    SAMPLING assignment phase — in ``O(m * k)`` per row and without an
    explicit distance matrix.

    Parameters
    ----------
    matrix:
        Full ``(n, m)`` label matrix.
    member_rows:
        Row indices (into ``matrix``) of the clustered subset.
    member_labels:
        Cluster labels (``0..k-1``) aligned with ``member_rows``.
    p:
        Coin-flip probability of the missing-value model.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        member_rows: np.ndarray,
        member_labels: np.ndarray,
        p: float = 0.5,
        member_weights: np.ndarray | None = None,
    ) -> None:
        validate_label_matrix(matrix)
        member_rows = np.asarray(member_rows, dtype=np.int64)
        member_labels = np.asarray(member_labels, dtype=np.int64)
        if member_rows.shape != member_labels.shape or member_rows.ndim != 1:
            raise ValueError("member_rows and member_labels must be 1-D and aligned")
        if member_rows.size == 0:
            raise ValueError("cluster tables need at least one member row")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be a probability, got {p}")
        if member_weights is None:
            weights = np.ones(member_rows.size, dtype=np.float64)
        else:
            weights = np.asarray(member_weights, dtype=np.float64)
            if weights.shape != member_rows.shape:
                raise ValueError("member_weights must align with member_rows")
            if np.any(weights < 1):
                raise ValueError("member_weights must be >= 1")
        self._matrix = matrix
        self._m = matrix.shape[1]
        self._p = p
        self._k = int(member_labels.max()) + 1
        self._sizes = np.zeros(self._k, dtype=np.float64)
        np.add.at(self._sizes, member_labels, weights)
        if np.any(self._sizes == 0):
            raise ValueError("member_labels must use every label in 0..k-1")
        # counts[j][l, val] = total multiplicity of cluster l's members with
        # concrete value `val` in column j; concrete[j][l] = multiplicity of
        # cluster l's members concrete at j.
        self._counts: list[np.ndarray] = []
        self._concrete = np.zeros((self._m, self._k), dtype=np.float64)
        sub = matrix[member_rows]
        for j in range(self._m):
            column = sub[:, j]
            present = column != MISSING
            arity = int(matrix[:, j].max()) + 1 if matrix[:, j].max() >= 0 else 1
            table = np.zeros((self._k, arity), dtype=np.float64)
            if present.any():
                flat = member_labels[present] * arity + column[present]
                np.add.at(table.ravel(), flat, weights[present])
            self._counts.append(table)
            self._concrete[j] = table.sum(axis=1)

    @property
    def k(self) -> int:
        return self._k

    @property
    def sizes(self) -> np.ndarray:
        return self._sizes

    def masses(self, rows: np.ndarray) -> np.ndarray:
        """``M(v, C_l)`` for each row ``v`` in ``rows``: an ``(len(rows), k)`` array."""
        rows = np.asarray(rows, dtype=np.int64)
        block = self._matrix[rows]  # (b, m)
        b = rows.size
        one_minus_p = 1.0 - self._p
        total = np.zeros((b, self._k), dtype=np.float64)
        for j in range(self._m):
            values = block[:, j]
            present = values != MISSING
            table = self._counts[j]
            concrete = self._concrete[j]  # (k,)
            # Missing-involved contribution: every member pair is a coin flip
            # when v is missing; otherwise only the members missing at j are.
            contribution = np.empty((b, self._k), dtype=np.float64)
            contribution[~present] = one_minus_p * self._sizes
            if present.any():
                vals = values[present]
                matches = table[:, vals].T  # (b_present, k)
                contribution[present] = (concrete - matches) + one_minus_p * (
                    self._sizes - concrete
                )
            total += contribution
        total /= self._m
        return total

    def placement_scores(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Relative placement costs for each row, as in :class:`MoveEvaluator`.

        Returns ``(scores, singleton_scores)``: ``scores[i, l]`` is the cost
        of putting row ``i`` into cluster ``l`` minus the common term, i.e.
        ``2 * M(v, C_l) - |C_l|``; the singleton score is identically 0.
        """
        mass = self.masses(rows)
        scores = 2.0 * mass - self._sizes[None, :]
        return scores, np.zeros(len(scores), dtype=np.float64)

    def assign(self, rows: np.ndarray) -> np.ndarray:
        """Cheapest placement for each row: cluster label, or -1 for singleton."""
        scores, singleton = self.placement_scores(rows)
        best = np.argmin(scores, axis=1)
        best_scores = scores[np.arange(len(best)), best]
        out = best.astype(np.int64)
        out[best_scores > singleton] = -1
        return out
