"""Duplicate-row collapsing: solve the aggregation problem on *atoms*.

Two objects with identical label-matrix rows are never separated by any
input clustering, so their pairwise distance is 0 and some optimal
aggregate keeps them together (splitting them can only add cost).  The
categorical application makes such duplicates common — limited attribute
combinations mean census-like tables collapse 2x or more — so the
quadratic algorithms can run on the distinct rows ("atoms") with
multiplicities, then expand the answer.

The weighted problem is *exactly equivalent*: give atom ``a`` weight
``w_a`` (its duplicate count); every inter-atom pair contributes
``w_a * w_b`` object pairs and intra-atom pairs contribute 0 whenever the
atom stays whole.  :class:`~repro.core.instance.CorrelationInstance`
accepts the weights and the instance-based algorithms honour them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .labels import validate_label_matrix
from .partition import Clustering

__all__ = ["AtomCollapse", "collapse_duplicates"]


@dataclass
class AtomCollapse:
    """The result of collapsing duplicate rows of a label matrix.

    Attributes
    ----------
    matrix:
        ``(a, m)`` reduced label matrix with one row per distinct input row.
    weights:
        ``(a,)`` duplicate counts.
    inverse:
        ``(n,)`` map from original row index to its atom index.
    """

    matrix: np.ndarray
    weights: np.ndarray
    inverse: np.ndarray

    @property
    def n_atoms(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def n_objects(self) -> int:
        return int(self.inverse.shape[0])

    def expand(self, atom_clustering: Clustering) -> Clustering:
        """Lift a clustering of the atoms back to the original objects."""
        if atom_clustering.n != self.n_atoms:
            raise ValueError(
                f"clustering covers {atom_clustering.n} atoms, expected {self.n_atoms}"
            )
        return Clustering(atom_clustering.labels[self.inverse])


def collapse_duplicates(matrix: np.ndarray) -> AtomCollapse:
    """Group identical rows of a label matrix into weighted atoms."""
    validate_label_matrix(matrix)
    unique, inverse, counts = np.unique(
        matrix, axis=0, return_inverse=True, return_counts=True
    )
    # numpy 2.0.x returns the axis-0 inverse shaped (n, 1) (reverted to
    # (n,) in 2.1); a 2-D inverse silently broadcasts expand() into an
    # (n, n) label matrix, so flatten unconditionally.
    inverse = inverse.reshape(-1)
    return AtomCollapse(
        matrix=np.ascontiguousarray(unique),
        weights=counts.astype(np.int64),
        inverse=inverse.astype(np.int64),
    )
