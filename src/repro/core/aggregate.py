"""The top-level clustering-aggregation API.

:func:`aggregate` is the one-call entry point of the library: give it the
input clusterings (as :class:`Clustering` objects or a label matrix) and an
algorithm name, get back an :class:`AggregationResult` carrying the
consensus clustering together with its objective value, the pairwise lower
bound, and timing.

    >>> from repro import aggregate, Clustering
    >>> inputs = [Clustering([0, 0, 1, 1, 2, 2]),
    ...           Clustering([0, 1, 0, 1, 2, 3]),
    ...           Clustering([0, 1, 0, 1, 2, 2])]
    >>> result = aggregate(inputs, method="agglomerative")
    >>> result.clustering.k
    3
    >>> result.disagreements
    5.0

(The doctest above is the paper's Figure 1 / Figure 2 running example —
five disagreements is optimal.)
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..obs.trace import span
from ..registry import SolveContext, aggregate_method_names, get_method
from ..registry import resolve_instance_method as _resolve_instance_method
from ..registry import stochastic_method_names
from .distance import total_disagreement
from .instance import CorrelationInstance
from .labels import as_label_matrix, validate_label_matrix
from .partition import Clustering

__all__ = [
    "aggregate",
    "AggregationResult",
    "available_methods",
    "resolve_inner",
    "STOCHASTIC_METHODS",
]


def available_methods() -> tuple[str, ...]:
    """Names accepted by :func:`aggregate`'s ``method`` parameter.

    Derived from :mod:`repro.registry` — the CLI, the serve schema
    validation, and the error messages below all read the same source,
    so a new registration can never drift out of any of them.
    """
    return aggregate_method_names()


def resolve_inner(inner: str | Callable[..., Clustering]) -> Callable[[CorrelationInstance], Clustering]:
    """Resolve SAMPLING's inner algorithm from a name or callable.

    Back-compat alias for :func:`repro.registry.resolve_instance_method`.
    """
    return _resolve_instance_method(inner)


def __getattr__(name: str) -> Any:
    # STOCHASTIC_METHODS is derived from the registry, which loads its
    # built-in modules lazily; computing it at import time would recurse
    # into this package mid-initialization, so it is a PEP 562 attribute.
    if name == "STOCHASTIC_METHODS":
        return stochastic_method_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class AggregationResult:
    """Outcome of one :func:`aggregate` call.

    Attributes
    ----------
    clustering:
        The consensus clustering.
    method:
        Algorithm name that produced it.
    disagreements:
        The aggregation objective ``D(C)`` (expected value under the
        coin-flip model when inputs have missing entries); ``None`` when
        the inputs were a raw correlation instance of unknown origin.
    cost:
        The correlation-clustering cost ``d(C)`` (``disagreements / m``).
    lower_bound:
        Pairwise lower bound on ``d(C)`` — only computed when the full
        distance matrix was materialized (``None`` on the sampling path).
    disagreement_lower_bound:
        Same bound on the ``D(C)`` scale, when ``m`` is known.
    elapsed_seconds:
        Wall-clock time of the algorithm itself (instance construction is
        reported separately in ``build_seconds``).
    """

    clustering: Clustering
    method: str
    disagreements: float | None
    cost: float | None
    lower_bound: float | None
    disagreement_lower_bound: float | None
    elapsed_seconds: float
    build_seconds: float
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Number of clusters in the consensus."""
        return self.clustering.k

    def summary(self) -> str:
        """One-line human-readable report."""
        parts = [f"method={self.method}", f"k={self.k}"]
        if self.disagreements is not None:
            parts.append(f"D(C)={self.disagreements:.1f}")
        if self.disagreement_lower_bound is not None:
            parts.append(f"LB={self.disagreement_lower_bound:.1f}")
        parts.append(f"time={self.elapsed_seconds:.3f}s")
        return "  ".join(parts)


def aggregate(
    inputs: Sequence[Clustering] | np.ndarray | CorrelationInstance,
    method: str = "agglomerative",
    p: float = 0.5,
    compute_lower_bound: bool = True,
    collapse: bool = False,
    n_jobs: int | None = 1,
    backend: str = "auto",
    **params: Any,
) -> AggregationResult:
    """Aggregate input clusterings into a consensus clustering.

    Parameters
    ----------
    inputs:
        A sequence of :class:`Clustering` objects, an ``(n, m)`` label
        matrix (``-1`` marks missing entries), or a prebuilt
        :class:`CorrelationInstance` (for raw correlation clustering).
    method:
        One of :func:`available_methods`: ``"best"``, ``"balls"``,
        ``"agglomerative"``, ``"furthest"``, ``"local-search"``,
        ``"annealing"`` (Filkov-Skiena simulated annealing, §6),
        ``"genetic"`` (Cristofor-Simovici GA, §6), ``"pivot"``
        (CC-PIVOT/QwickCluster, expected 3-approx straight off the label
        matrix — no ``(n, n)`` structure on the label path), ``"cmsy"``
        (the 2.06-approx LP rounding, pivot-tier above
        :data:`repro.algorithms.pivot.DEFAULT_LP_THRESHOLD` objects),
        ``"sampling"``,
        ``"streaming"`` (replay the columns through a
        :class:`~repro.stream.engine.StreamingAggregator`),
        ``"portfolio"`` (run several algorithms concurrently and keep the
        argmin cost — :func:`repro.parallel.portfolio`; per-member
        records land in ``result.params["portfolio"]``), ``"sharded"``
        (divide-and-merge over object shards —
        :func:`repro.shard.shard_aggregate`, accepting ``n_shards=``,
        ``partition=``, ``merge=`` etc.; the per-shard and merge records
        land in ``result.params["shard"]``), or ``"exact"``.
    p:
        Missing-value coin-flip probability (Section 2 of the paper).
    compute_lower_bound:
        Whether to evaluate the pairwise lower bound (quadratic; skipped
        automatically when no distance matrix is materialized).
    collapse:
        Collapse duplicate label-matrix rows into weighted atoms before
        clustering (exact for the objective — some optimal solution keeps
        duplicates together), then expand the consensus back.  A large
        speedup on categorical data with repeated rows; supported by all
        methods except ``"best"`` (which needs no speedup).
    n_jobs:
        Worker count for the shared-memory parallel backend
        (:mod:`repro.parallel`): the instance build, SAMPLING's
        sub-builds and assignment loop, and portfolio members all honour
        it.  ``None`` consults ``REPRO_JOBS``; every value is
        bit-identical to the serial run.
    backend:
        Pair-distance storage for instances built here: ``"dense"``
        materializes the ``(n, n)`` matrix, ``"lazy"`` computes row
        blocks on demand from the label matrix (O(n * m) memory, bitwise
        identical results), and ``"auto"`` (default) picks lazy above
        :func:`repro.core.backend.lazy_threshold` objects
        (``REPRO_LAZY_THRESHOLD``, default 10000).  Ignored when
        ``inputs`` is already a :class:`CorrelationInstance`.
    **params:
        Forwarded to the algorithm (e.g. ``alpha=0.4`` for BALLS,
        ``inner="furthest"`` and ``sample_size=1000`` for SAMPLING,
        ``initial=...`` for LOCALSEARCH).
    """
    spec = get_method(method)  # raises the canonical "unknown method" ValueError
    spec.validate_params(params)

    matrix: np.ndarray | None = None
    instance: CorrelationInstance | None = None
    label_matrix_method = getattr(inputs, "label_matrix", None)
    if isinstance(inputs, CorrelationInstance):
        instance = inputs
    elif isinstance(inputs, np.ndarray):
        validate_label_matrix(inputs)
        matrix = inputs
    elif callable(label_matrix_method):
        # Duck-typed CategoricalDataset: its attributes are the clusterings.
        matrix = label_matrix_method()
        validate_label_matrix(matrix)
    else:
        matrix = as_label_matrix(inputs)

    atoms = None
    with span("aggregate.build", method=method) as build_span:
        if collapse:
            if matrix is None or not spec.supports_collapse:
                raise ValueError(
                    "collapse=True needs a label matrix and is not meaningful for "
                    f"method {method!r}"
                )
            from .atoms import collapse_duplicates

            atoms = collapse_duplicates(matrix)
            build_span.set(atoms=atoms.n_atoms, objects=atoms.n_objects)
        if instance is None and (spec.kind == "instance" or spec.needs_instance):
            if atoms is not None:
                instance = CorrelationInstance.from_label_matrix(
                    atoms.matrix, p=p, weights=atoms.weights, n_jobs=n_jobs, backend=backend
                )
            else:
                instance = CorrelationInstance.from_label_matrix(
                    matrix, p=p, n_jobs=n_jobs, backend=backend
                )
    build_seconds = build_span.seconds

    with span("aggregate.solve", method=method) as solve_span:
        if spec.kind == "label-fast" and instance is None:
            # Backend-free fast path: pivot/cmsy consume the label matrix
            # directly, so nothing quadratic in n is ever allocated.
            if atoms is not None:
                clustering = atoms.expand(
                    spec.func(
                        atoms.matrix, p=p, weights=atoms.weights.astype(np.float64), **params
                    )
                )
            else:
                clustering = spec.func(matrix, p=p, **params)
        elif spec.kind in ("instance", "label-fast"):
            if instance is None:
                raise ValueError(f"method {method!r} requires a distance matrix")
            clustering = spec.func(instance, **params)
            if atoms is not None:
                clustering = atoms.expand(clustering)
        else:
            # Matrix-kind methods own their whole solve through the solver
            # adapter registered next to the algorithm (sampling, best,
            # portfolio, sharded, streaming).  The adapter may write report
            # entries (e.g. params["shard"]) back into the shared dict.
            solver = spec.solver
            if solver is None:
                raise ValueError(f"method {method!r} has no registered solver")
            context = SolveContext(
                matrix=matrix,
                instance=instance,
                atoms=atoms,
                p=p,
                n_jobs=n_jobs,
                backend=backend,
                params=params,
            )
            clustering = solver(context)
        solve_span.set(k=clustering.k)
    elapsed = solve_span.seconds

    disagreements: float | None = None
    cost: float | None = None
    if matrix is not None:
        disagreements = total_disagreement(matrix, clustering, p=p)
        cost = disagreements / matrix.shape[1]
    elif instance is not None:
        cost = instance.cost(clustering)
        if instance.m is not None:
            disagreements = instance.m * cost

    lower_bound: float | None = None
    disagreement_lb: float | None = None
    if compute_lower_bound and instance is not None:
        lower_bound = instance.lower_bound()
        m = instance.m if instance.m is not None else (matrix.shape[1] if matrix is not None else None)
        if m is not None:
            disagreement_lb = m * lower_bound

    return AggregationResult(
        clustering=clustering,
        method=method,
        disagreements=disagreements,
        cost=cost,
        lower_bound=lower_bound,
        disagreement_lower_bound=disagreement_lb,
        elapsed_seconds=elapsed,
        build_seconds=build_seconds,
        params=dict(params),
    )
