"""The top-level clustering-aggregation API.

:func:`aggregate` is the one-call entry point of the library: give it the
input clusterings (as :class:`Clustering` objects or a label matrix) and an
algorithm name, get back an :class:`AggregationResult` carrying the
consensus clustering together with its objective value, the pairwise lower
bound, and timing.

    >>> from repro import aggregate, Clustering
    >>> inputs = [Clustering([0, 0, 1, 1, 2, 2]),
    ...           Clustering([0, 1, 0, 1, 2, 3]),
    ...           Clustering([0, 1, 0, 1, 2, 2])]
    >>> result = aggregate(inputs, method="agglomerative")
    >>> result.clustering.k
    3
    >>> result.disagreements
    5.0

(The doctest above is the paper's Figure 1 / Figure 2 running example —
five disagreements is optimal.)
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..algorithms.agglomerative import agglomerative
from ..algorithms.annealing import simulated_annealing
from ..algorithms.balls import balls
from ..algorithms.best_clustering import best_clustering
from ..algorithms.exact import exact_optimum
from ..algorithms.furthest import furthest
from ..algorithms.local_search import local_search
from ..algorithms.pivot import cmsy, pivot
from ..algorithms.sampling import sampling
from ..consensus.genetic import genetic_consensus
from ..obs.trace import span
from .distance import total_disagreement
from .instance import CorrelationInstance
from .labels import as_label_matrix, validate_label_matrix
from .partition import Clustering

__all__ = [
    "aggregate",
    "AggregationResult",
    "available_methods",
    "resolve_inner",
    "STOCHASTIC_METHODS",
]

#: Algorithms that consume a CorrelationInstance and return a Clustering.
_INSTANCE_METHODS: dict[str, Callable[..., Clustering]] = {
    "balls": balls,
    "agglomerative": agglomerative,
    "furthest": furthest,
    "local-search": local_search,
    "annealing": simulated_annealing,
    "genetic": genetic_consensus,
    "pivot": pivot,
    "cmsy": cmsy,
    "exact": lambda instance, **kw: exact_optimum(instance, **kw)[0],
}

#: Instance methods that also accept the raw ``(n, m)`` label matrix and
#: prefer it: :func:`aggregate` skips the instance build for these, so no
#: ``(n, n)`` structure — dense or lazy — is ever created on their path.
_LABEL_FAST_METHODS = ("cmsy", "pivot")

#: Algorithms that consume the label matrix directly (or, for
#: ``"portfolio"``, dispatch a set of instance methods themselves).
_MATRIX_METHODS = ("best", "portfolio", "sampling", "sharded", "streaming")

#: Methods whose output depends on an ``rng`` seed (CLI ``--seed`` plumbing).
STOCHASTIC_METHODS = (
    "annealing",
    "cmsy",
    "genetic",
    "local-search",
    "pivot",
    "portfolio",
    "sampling",
    "sharded",
    "streaming",
)


def available_methods() -> tuple[str, ...]:
    """Names accepted by :func:`aggregate`'s ``method`` parameter."""
    return tuple(sorted((*_INSTANCE_METHODS, *_MATRIX_METHODS)))


def resolve_inner(inner: str | Callable[..., Clustering]) -> Callable[[CorrelationInstance], Clustering]:
    """Resolve SAMPLING's inner algorithm from a name or callable."""
    if callable(inner):
        return inner
    if inner in _INSTANCE_METHODS:
        return _INSTANCE_METHODS[inner]
    raise ValueError(
        f"unknown inner algorithm {inner!r}; choose from {sorted(_INSTANCE_METHODS)}"
    )


@dataclass
class AggregationResult:
    """Outcome of one :func:`aggregate` call.

    Attributes
    ----------
    clustering:
        The consensus clustering.
    method:
        Algorithm name that produced it.
    disagreements:
        The aggregation objective ``D(C)`` (expected value under the
        coin-flip model when inputs have missing entries); ``None`` when
        the inputs were a raw correlation instance of unknown origin.
    cost:
        The correlation-clustering cost ``d(C)`` (``disagreements / m``).
    lower_bound:
        Pairwise lower bound on ``d(C)`` — only computed when the full
        distance matrix was materialized (``None`` on the sampling path).
    disagreement_lower_bound:
        Same bound on the ``D(C)`` scale, when ``m`` is known.
    elapsed_seconds:
        Wall-clock time of the algorithm itself (instance construction is
        reported separately in ``build_seconds``).
    """

    clustering: Clustering
    method: str
    disagreements: float | None
    cost: float | None
    lower_bound: float | None
    disagreement_lower_bound: float | None
    elapsed_seconds: float
    build_seconds: float
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Number of clusters in the consensus."""
        return self.clustering.k

    def summary(self) -> str:
        """One-line human-readable report."""
        parts = [f"method={self.method}", f"k={self.k}"]
        if self.disagreements is not None:
            parts.append(f"D(C)={self.disagreements:.1f}")
        if self.disagreement_lower_bound is not None:
            parts.append(f"LB={self.disagreement_lower_bound:.1f}")
        parts.append(f"time={self.elapsed_seconds:.3f}s")
        return "  ".join(parts)


def aggregate(
    inputs: Sequence[Clustering] | np.ndarray | CorrelationInstance,
    method: str = "agglomerative",
    p: float = 0.5,
    compute_lower_bound: bool = True,
    collapse: bool = False,
    n_jobs: int | None = 1,
    backend: str = "auto",
    **params: Any,
) -> AggregationResult:
    """Aggregate input clusterings into a consensus clustering.

    Parameters
    ----------
    inputs:
        A sequence of :class:`Clustering` objects, an ``(n, m)`` label
        matrix (``-1`` marks missing entries), or a prebuilt
        :class:`CorrelationInstance` (for raw correlation clustering).
    method:
        One of :func:`available_methods`: ``"best"``, ``"balls"``,
        ``"agglomerative"``, ``"furthest"``, ``"local-search"``,
        ``"annealing"`` (Filkov-Skiena simulated annealing, §6),
        ``"genetic"`` (Cristofor-Simovici GA, §6), ``"pivot"``
        (CC-PIVOT/QwickCluster, expected 3-approx straight off the label
        matrix — no ``(n, n)`` structure on the label path), ``"cmsy"``
        (the 2.06-approx LP rounding, pivot-tier above
        :data:`repro.algorithms.pivot.DEFAULT_LP_THRESHOLD` objects),
        ``"sampling"``,
        ``"streaming"`` (replay the columns through a
        :class:`~repro.stream.engine.StreamingAggregator`),
        ``"portfolio"`` (run several algorithms concurrently and keep the
        argmin cost — :func:`repro.parallel.portfolio`; per-member
        records land in ``result.params["portfolio"]``), ``"sharded"``
        (divide-and-merge over object shards —
        :func:`repro.shard.shard_aggregate`, accepting ``n_shards=``,
        ``partition=``, ``merge=`` etc.; the per-shard and merge records
        land in ``result.params["shard"]``), or ``"exact"``.
    p:
        Missing-value coin-flip probability (Section 2 of the paper).
    compute_lower_bound:
        Whether to evaluate the pairwise lower bound (quadratic; skipped
        automatically when no distance matrix is materialized).
    collapse:
        Collapse duplicate label-matrix rows into weighted atoms before
        clustering (exact for the objective — some optimal solution keeps
        duplicates together), then expand the consensus back.  A large
        speedup on categorical data with repeated rows; supported by all
        methods except ``"best"`` (which needs no speedup).
    n_jobs:
        Worker count for the shared-memory parallel backend
        (:mod:`repro.parallel`): the instance build, SAMPLING's
        sub-builds and assignment loop, and portfolio members all honour
        it.  ``None`` consults ``REPRO_JOBS``; every value is
        bit-identical to the serial run.
    backend:
        Pair-distance storage for instances built here: ``"dense"``
        materializes the ``(n, n)`` matrix, ``"lazy"`` computes row
        blocks on demand from the label matrix (O(n * m) memory, bitwise
        identical results), and ``"auto"`` (default) picks lazy above
        :func:`repro.core.backend.lazy_threshold` objects
        (``REPRO_LAZY_THRESHOLD``, default 10000).  Ignored when
        ``inputs`` is already a :class:`CorrelationInstance`.
    **params:
        Forwarded to the algorithm (e.g. ``alpha=0.4`` for BALLS,
        ``inner="furthest"`` and ``sample_size=1000`` for SAMPLING,
        ``initial=...`` for LOCALSEARCH).
    """
    matrix: np.ndarray | None = None
    instance: CorrelationInstance | None = None
    label_matrix_method = getattr(inputs, "label_matrix", None)
    if isinstance(inputs, CorrelationInstance):
        instance = inputs
    elif isinstance(inputs, np.ndarray):
        validate_label_matrix(inputs)
        matrix = inputs
    elif callable(label_matrix_method):
        # Duck-typed CategoricalDataset: its attributes are the clusterings.
        matrix = label_matrix_method()
        validate_label_matrix(matrix)
    else:
        matrix = as_label_matrix(inputs)

    atoms = None
    with span("aggregate.build", method=method) as build_span:
        if collapse:
            if matrix is None or method in ("best", "streaming"):
                raise ValueError(
                    "collapse=True needs a label matrix and is not meaningful for "
                    f"method {method!r}"
                )
            from .atoms import collapse_duplicates

            atoms = collapse_duplicates(matrix)
            build_span.set(atoms=atoms.n_atoms, objects=atoms.n_objects)
        if (
            instance is None
            and method not in _LABEL_FAST_METHODS
            and (method in _INSTANCE_METHODS or method == "portfolio")
        ):
            if atoms is not None:
                instance = CorrelationInstance.from_label_matrix(
                    atoms.matrix, p=p, weights=atoms.weights, n_jobs=n_jobs, backend=backend
                )
            else:
                instance = CorrelationInstance.from_label_matrix(
                    matrix, p=p, n_jobs=n_jobs, backend=backend
                )
    build_seconds = build_span.seconds

    with span("aggregate.solve", method=method) as solve_span:
        if method in _LABEL_FAST_METHODS and instance is None:
            # Backend-free fast path: pivot/cmsy consume the label matrix
            # directly, so nothing quadratic in n is ever allocated.
            algorithm = _INSTANCE_METHODS[method]
            if atoms is not None:
                clustering = atoms.expand(
                    algorithm(
                        atoms.matrix, p=p, weights=atoms.weights.astype(np.float64), **params
                    )
                )
            else:
                clustering = algorithm(matrix, p=p, **params)
        elif method in _INSTANCE_METHODS:
            if instance is None:
                raise ValueError(f"method {method!r} requires a distance matrix")
            clustering = _INSTANCE_METHODS[method](instance, **params)
            if atoms is not None:
                clustering = atoms.expand(clustering)
        elif method == "best":
            if matrix is None:
                raise ValueError("method 'best' needs the input clusterings, not a raw instance")
            clustering = best_clustering(matrix, p=p, **params)
        elif method == "portfolio":
            from ..parallel.portfolio import portfolio

            portfolio_result = portfolio(instance, n_jobs=n_jobs, **params)
            clustering = portfolio_result.best
            if atoms is not None:
                clustering = atoms.expand(clustering)
            params["portfolio"] = portfolio_result.to_dict()
        elif method == "sampling":
            inner = resolve_inner(params.pop("inner", "agglomerative"))
            if atoms is not None:
                if params.get("sample_size") is not None:
                    # The caller sized the sample against the original n;
                    # collapsing may leave fewer atoms than that, which
                    # simply means "sample every atom".
                    params["sample_size"] = min(
                        int(params["sample_size"]), atoms.n_atoms
                    )
                clustering = atoms.expand(
                    sampling(
                        atoms.matrix,
                        inner,
                        p=p,
                        weights=atoms.weights.astype(np.float64),
                        n_jobs=n_jobs,
                        **params,
                    )
                )
            else:
                data = matrix if matrix is not None else instance
                if data is None:  # unreachable: inputs is always one of the three forms
                    raise ValueError("method 'sampling' needs clusterings or an instance")
                clustering = sampling(data, inner, p=p, n_jobs=n_jobs, **params)
        elif method == "sharded":
            if matrix is None:
                raise ValueError(
                    "method 'sharded' needs the input clusterings, not a raw instance"
                )
            from ..shard.engine import shard_aggregate

            if atoms is not None:
                shard_result = shard_aggregate(
                    atoms.matrix,
                    p=p,
                    weights=atoms.weights.astype(np.float64),
                    n_jobs=n_jobs,
                    backend=backend,
                    **params,
                )
                clustering = atoms.expand(shard_result.clustering)
            else:
                shard_result = shard_aggregate(
                    matrix, p=p, n_jobs=n_jobs, backend=backend, **params
                )
                clustering = shard_result.clustering
            params["shard"] = shard_result.to_dict()
        elif method == "streaming":
            if matrix is None:
                raise ValueError(
                    "method 'streaming' needs the input clusterings, not a raw instance"
                )
            from ..stream.engine import StreamingAggregator

            engine = StreamingAggregator(matrix.shape[0], p=p, **params)
            engine.observe_many(matrix)
            clustering = engine.consensus
        else:
            raise ValueError(f"unknown method {method!r}; choose from {available_methods()}")
        solve_span.set(k=clustering.k)
    elapsed = solve_span.seconds

    disagreements: float | None = None
    cost: float | None = None
    if matrix is not None:
        disagreements = total_disagreement(matrix, clustering, p=p)
        cost = disagreements / matrix.shape[1]
    elif instance is not None:
        cost = instance.cost(clustering)
        if instance.m is not None:
            disagreements = instance.m * cost

    lower_bound: float | None = None
    disagreement_lb: float | None = None
    if compute_lower_bound and instance is not None:
        lower_bound = instance.lower_bound()
        m = instance.m if instance.m is not None else (matrix.shape[1] if matrix is not None else None)
        if m is not None:
            disagreement_lb = m * lower_bound

    return AggregationResult(
        clustering=clustering,
        method=method,
        disagreements=disagreements,
        cost=cost,
        lower_bound=lower_bound,
        disagreement_lower_bound=disagreement_lb,
        elapsed_seconds=elapsed,
        build_seconds=build_seconds,
        params=dict(params),
    )
