"""Core framework: partitions, distances, correlation instances, aggregation API."""

from typing import Any

from .aggregate import AggregationResult, aggregate, available_methods
from .atoms import AtomCollapse, collapse_duplicates
from .backend import (
    DenseBackend,
    LazyLabelBackend,
    PairDistanceBackend,
    lazy_threshold,
    resolve_backend,
)
from .distance import clustering_distance, normalized_distance, total_disagreement
from .instance import CorrelationInstance, disagreement_fractions, pair_separation_block
from .labels import MISSING, as_label_matrix, columns_as_clusterings, contingency_table
from .objective import ClusterCountTables, MoveEvaluator
from .partition import Clustering

__all__ = [
    "AggregationResult",
    "aggregate",
    "available_methods",
    "STOCHASTIC_METHODS",
    "AtomCollapse",
    "collapse_duplicates",
    "clustering_distance",
    "normalized_distance",
    "total_disagreement",
    "CorrelationInstance",
    "DenseBackend",
    "LazyLabelBackend",
    "PairDistanceBackend",
    "lazy_threshold",
    "resolve_backend",
    "disagreement_fractions",
    "pair_separation_block",
    "MISSING",
    "as_label_matrix",
    "columns_as_clusterings",
    "contingency_table",
    "ClusterCountTables",
    "MoveEvaluator",
    "Clustering",
]


def __getattr__(name: str) -> Any:
    # Lazily forwarded: STOCHASTIC_METHODS is computed from the method
    # registry, whose built-in modules must not load while this package
    # is still initializing (see repro.registry.store).
    if name == "STOCHASTIC_METHODS":
        # NB: `from . import aggregate` would resolve to the eagerly
        # imported aggregate() *function*, not the submodule.
        from .aggregate import STOCHASTIC_METHODS as methods

        return methods
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
