"""Core framework: partitions, distances, correlation instances, aggregation API."""

from .aggregate import STOCHASTIC_METHODS, AggregationResult, aggregate, available_methods
from .atoms import AtomCollapse, collapse_duplicates
from .backend import (
    DenseBackend,
    LazyLabelBackend,
    PairDistanceBackend,
    lazy_threshold,
    resolve_backend,
)
from .distance import clustering_distance, normalized_distance, total_disagreement
from .instance import CorrelationInstance, disagreement_fractions, pair_separation_block
from .labels import MISSING, as_label_matrix, columns_as_clusterings, contingency_table
from .objective import ClusterCountTables, MoveEvaluator
from .partition import Clustering

__all__ = [
    "AggregationResult",
    "aggregate",
    "available_methods",
    "STOCHASTIC_METHODS",
    "AtomCollapse",
    "collapse_duplicates",
    "clustering_distance",
    "normalized_distance",
    "total_disagreement",
    "CorrelationInstance",
    "DenseBackend",
    "LazyLabelBackend",
    "PairDistanceBackend",
    "lazy_threshold",
    "resolve_backend",
    "disagreement_fractions",
    "pair_separation_block",
    "MISSING",
    "as_label_matrix",
    "columns_as_clusterings",
    "contingency_table",
    "ClusterCountTables",
    "MoveEvaluator",
    "Clustering",
]
