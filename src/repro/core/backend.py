"""Pair-distance backends: dense and lazy label-backed access to ``X``.

The correlation-clustering stack historically read a fully materialized
``(n, n)`` distance matrix, which caps instance size at whatever O(n^2)
floats fit in memory.  Since an aggregation instance's ``X[u, v]`` is a
cheap function of the ``(n, m)`` label matrix (``m`` ≪ ``n``), the matrix
can instead be treated as an implicit oracle and computed in row blocks on
demand.  This module provides that seam:

* :class:`PairDistanceBackend` — the narrow kernel API every consumer of
  pairwise distances goes through: ``row_block`` / ``row`` / ``gather`` /
  ``gather_block`` / ``columns`` plus blocked reductions (``matvec``,
  ``total_mass``, ``cost``, ``lower_bound``, ``argmax_entry``) that never
  allocate a full-matrix temporary.
* :class:`DenseBackend` — wraps a materialized ``X`` (today's behaviour).
* :class:`LazyLabelBackend` — computes row blocks on demand from the
  stored label matrix via the same :func:`repro.core.instance.disagreement_block`
  kernel used by the batch build (same missing-value model, same dtype
  rules), with a small LRU cache of grid-aligned blocks.

Bit-identity guarantee: the kernel accumulates every element over the
``m`` label columns in the same order regardless of row tiling, so lazy
blocks are bitwise equal to the corresponding rows of the batch-built
``X``.  All blocked reductions live on the base class and iterate one
deterministic block grid (:func:`reduction_block_rows`, a function of
``n`` only), so their floating-point accumulation order — and therefore
their results — are bitwise identical between the two backends.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Iterator, Sequence

import numpy as np

from ..obs.profile import phase
from .labels import MISSING, validate_label_matrix

__all__ = [
    "DEFAULT_LAZY_THRESHOLD",
    "DenseBackend",
    "LazyLabelBackend",
    "PairDistanceBackend",
    "label_pair_block",
    "lazy_threshold",
    "reduction_block_rows",
    "resolve_backend",
]

#: ``auto`` backend selection flips to lazy above this many objects.
DEFAULT_LAZY_THRESHOLD = 10_000

#: Environment variable overriding :data:`DEFAULT_LAZY_THRESHOLD`.
LAZY_THRESHOLD_ENV_VAR = "REPRO_LAZY_THRESHOLD"

#: Cap on the per-block temporary: blocks hold about this many entries.
_BLOCK_ENTRIES = 1 << 22


def reduction_block_rows(n: int) -> int:
    """The deterministic row-block height used by every blocked reduction.

    A function of ``n`` only, so :class:`DenseBackend` and
    :class:`LazyLabelBackend` walk the same grid and accumulate partial
    sums in the same order — the root of the backends' bitwise-identical
    reductions.  Sized to keep an ``O(block * n)`` float64 temporary at
    roughly 32 MB.
    """
    return max(64, min(2048, _BLOCK_ENTRIES // max(1, n)))


def lazy_threshold() -> int:
    """The ``n`` above which ``backend="auto"`` selects the lazy backend.

    Defaults to :data:`DEFAULT_LAZY_THRESHOLD`; override with the
    ``REPRO_LAZY_THRESHOLD`` environment variable.
    """
    raw = os.environ.get(LAZY_THRESHOLD_ENV_VAR)
    if raw is None:
        return DEFAULT_LAZY_THRESHOLD
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{LAZY_THRESHOLD_ENV_VAR} must be an integer, got {raw!r}"
        ) from exc
    if value < 0:
        raise ValueError(f"{LAZY_THRESHOLD_ENV_VAR} must be >= 0, got {value}")
    return value


def resolve_backend(backend: str, n: int) -> str:
    """Resolve a ``{"auto", "dense", "lazy"}`` choice to a concrete backend."""
    if backend not in ("auto", "dense", "lazy"):
        raise ValueError(f"backend must be 'auto', 'dense' or 'lazy', got {backend!r}")
    if backend == "auto":
        return "lazy" if n > lazy_threshold() else "dense"
    return backend


def label_pair_block(
    matrix: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    p: float = 0.5,
    dtype: np.dtype | type = np.float64,
    missing: str = "coin-flip",
) -> np.ndarray:
    """``X[np.ix_(rows, cols)]`` computed from the label matrix.

    The generalized (arbitrary row/column subset) form of
    :func:`repro.core.instance.disagreement_block`: every element is
    accumulated over the ``m`` label columns in the same order and dtype
    as the batch build, so the result is bitwise equal to gathering the
    same entries from a materialized ``X``.  Entries where the row and
    column index the same object are zeroed (the diagonal rule).
    """
    np_dtype = dtype if isinstance(dtype, np.dtype) else np.dtype(dtype)
    m = matrix.shape[1]
    one_minus_p = np_dtype.type(1.0 - p)
    block = np.zeros((rows.size, cols.size), dtype=np_dtype)
    comparable = (
        np.zeros((rows.size, cols.size), dtype=np_dtype) if missing == "average" else None
    )
    row_labels = matrix[rows]
    col_labels = matrix[cols]
    for j in range(m):
        row_part = row_labels[:, j]
        col_part = col_labels[:, j]
        different = row_part[:, None] != col_part[None, :]
        missing_pair = (row_part == MISSING)[:, None] | (col_part == MISSING)[None, :]
        if missing == "coin-flip":
            block += np.where(missing_pair, one_minus_p, different.astype(np_dtype))
        else:
            both_present = ~missing_pair
            block += (different & both_present).astype(np_dtype)
            if comparable is not None:
                comparable += both_present.astype(np_dtype)
    if comparable is None:
        block /= m
    else:
        with np.errstate(invalid="ignore", divide="ignore"):
            block /= comparable
        block[comparable == 0] = np_dtype.type(0.5)
    block[rows[:, None] == cols[None, :]] = np_dtype.type(0.0)
    return block


class PairDistanceBackend:
    """Blocked access to a symmetric pair-distance matrix ``X``.

    Subclasses provide the storage primitives (``row_block`` and friends);
    the base class implements every whole-matrix reduction against those
    blocks on the shared :func:`reduction_block_rows` grid, so no
    reduction ever allocates an ``O(n^2)`` temporary and all reductions
    are bitwise identical across backends.

    Returned blocks and rows may be views or cached arrays — treat them
    as read-only.
    """

    # ------------------------------------------------------------------
    # Storage primitives (subclass responsibility)
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of objects."""
        raise NotImplementedError

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the distance entries."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Backend identifier: ``"dense"`` or ``"lazy"``."""
        raise NotImplementedError

    def row_block(self, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` of ``X`` as a ``(stop - start, n)`` array."""
        raise NotImplementedError

    def row(self, u: int) -> np.ndarray:
        """Row ``u`` of ``X`` as an ``(n,)`` array."""
        return self.row_block(u, u + 1)[0]

    def gather(self, u: int, idx: np.ndarray | Sequence[int]) -> np.ndarray:
        """``X[u, idx]`` for an index array ``idx``."""
        return self.row(u)[np.asarray(idx)]

    def gather_block(
        self, rows: np.ndarray | Sequence[int], cols: np.ndarray | Sequence[int]
    ) -> np.ndarray:
        """``X[np.ix_(rows, cols)]`` for arbitrary index arrays."""
        raise NotImplementedError

    def columns(self, idx: np.ndarray | Sequence[int]) -> np.ndarray:
        """``X[:, idx]`` — by symmetry, the transposed row gather."""
        raise NotImplementedError

    def take(self, idx: np.ndarray | Sequence[int]) -> "PairDistanceBackend":
        """The backend of the induced sub-instance on ``idx``."""
        raise NotImplementedError

    def dense(self) -> np.ndarray:
        """The materialized matrix when one already exists (dense only)."""
        raise RuntimeError(
            f"the {self.name!r} backend holds no materialized matrix; "
            "use row_block()/materialize() or rebuild with backend='dense'"
        )

    # ------------------------------------------------------------------
    # Blocked reductions (shared, bitwise identical across backends)
    # ------------------------------------------------------------------

    def blocks(self) -> Iterator[tuple[int, int]]:
        step = reduction_block_rows(self.n)
        for start in range(0, self.n, step):
            yield start, min(start + step, self.n)

    def materialize(self, dtype: np.dtype | type | None = None, copy: bool = False) -> np.ndarray:
        """The full ``(n, n)`` matrix, assembled block by block.

        Only call when the consumer genuinely needs all of ``X`` at once
        (AGGLOMERATIVE's mutable working matrix, the exact solver).  Pass
        ``copy=True`` when the result will be mutated.
        """
        n = self.n
        target = self.dtype if dtype is None else np.dtype(dtype)
        out = np.empty((n, n), dtype=target)
        for start, stop in self.blocks():
            out[start:stop] = self.row_block(start, stop)
        return out

    def matvec(self, w: np.ndarray) -> np.ndarray:
        """``X @ w`` in float64, accumulated block by block.

        Never allocates more than one ``O(block * n)`` float64 temporary —
        this replaces the historical ``X.astype(np.float64) @ w`` full-copy
        spike in the BALLS weight ordering.
        """
        w64 = np.asarray(w, dtype=np.float64)
        out = np.empty(self.n, dtype=np.float64)
        for start, stop in self.blocks():
            rows = self.row_block(start, stop)
            out[start:stop] = rows.astype(np.float64, copy=False) @ w64
        return out

    def total_mass(self) -> float:
        """``X.sum()`` over all ordered pairs, accumulated in float64."""
        total = 0.0
        for start, stop in self.blocks():
            total += float(self.row_block(start, stop).sum(dtype=np.float64))
        return total

    def cost(self, labels: np.ndarray, weights: np.ndarray | None = None) -> float:
        """The correlation-clustering cost ``d(C)`` of a label assignment.

        Evaluated without materializing pair masks or the matrix:

            d(C) = T - S_all + 2 * S_within - P_within

        with ``T`` the pair count, ``S_all`` the sum of all distances,
        ``S_within`` the within-cluster distance sum and ``P_within`` the
        within-cluster pair count.  On weighted (atom) instances every
        pair ``(u, v)`` counts ``w_u * w_v`` times and intra-atom pairs
        contribute zero.
        """
        labels = np.asarray(labels)
        n = self.n
        if labels.shape != (n,):
            raise ValueError("clustering size must match the instance size")
        w = None if weights is None else np.asarray(weights, dtype=np.float64)
        sum_all = 0.0
        sum_within = 0.0
        for start, stop in self.blocks():
            rows = self.row_block(start, stop).astype(np.float64, copy=False)
            same = labels[start:stop, None] == labels[None, :]
            if w is None:
                sum_all += float(rows.sum(dtype=np.float64))
                sum_within += float((rows * same).sum(dtype=np.float64))
            else:
                sum_all += float(w[start:stop] @ (rows @ w))
                sum_within += float(w[start:stop] @ ((rows * same) @ w))
        sum_all /= 2.0
        sum_within /= 2.0
        if w is None:
            total_pairs = n * (n - 1) / 2.0
            _, counts = np.unique(labels, return_counts=True)
            pairs_within = float((counts * (counts - 1)).sum()) / 2.0
        else:
            total = float(w.sum())
            total_pairs = (total * total - float((w * w).sum())) / 2.0
            _, inverse = np.unique(labels, return_inverse=True)
            cluster_w = np.bincount(inverse, weights=w)
            pairs_within = (float((cluster_w * cluster_w).sum()) - float((w * w).sum())) / 2.0
        return total_pairs - sum_all + 2.0 * sum_within - pairs_within

    def lower_bound(self, weights: np.ndarray | None = None) -> float:
        """``sum_{u<v} min(X_uv, 1 - X_uv)``, accumulated block by block."""
        w = None if weights is None else np.asarray(weights, dtype=np.float64)
        total = 0.0
        for start, stop in self.blocks():
            rows = self.row_block(start, stop)
            one = rows.dtype.type(1.0)
            per_pair = np.minimum(rows, one - rows).astype(np.float64, copy=False)
            if w is None:
                total += float(per_pair.sum(dtype=np.float64))
            else:
                total += float(w[start:stop] @ (per_pair @ w))
        return total / 2.0

    def argmax_entry(self) -> tuple[int, int]:
        """Indices ``(u, v)`` of the first maximum entry in row-major order."""
        n = self.n
        best = -np.inf
        best_u = 0
        best_v = 0
        for start, stop in self.blocks():
            rows = self.row_block(start, stop)
            flat = int(np.argmax(rows))
            value = float(rows.flat[flat])
            if value > best:
                best = value
                best_u = start + flat // n
                best_v = flat % n
        return best_u, best_v


class DenseBackend(PairDistanceBackend):
    """Backend over a fully materialized ``(n, n)`` distance matrix."""

    __slots__ = ("_X",)

    def __init__(self, X: np.ndarray) -> None:
        self._X = np.asarray(X)

    @property
    def n(self) -> int:
        return int(self._X.shape[0])

    @property
    def dtype(self) -> np.dtype:
        return self._X.dtype

    @property
    def name(self) -> str:
        return "dense"

    def row_block(self, start: int, stop: int) -> np.ndarray:
        return self._X[start:stop]

    def row(self, u: int) -> np.ndarray:
        return self._X[u]

    def gather(self, u: int, idx: np.ndarray | Sequence[int]) -> np.ndarray:
        return self._X[u, np.asarray(idx)]

    def gather_block(
        self, rows: np.ndarray | Sequence[int], cols: np.ndarray | Sequence[int]
    ) -> np.ndarray:
        return self._X[np.ix_(np.asarray(rows), np.asarray(cols))]

    def columns(self, idx: np.ndarray | Sequence[int]) -> np.ndarray:
        return self._X[:, np.asarray(idx)]

    def take(self, idx: np.ndarray | Sequence[int]) -> "DenseBackend":
        index = np.asarray(idx)
        return DenseBackend(self._X[np.ix_(index, index)])

    def dense(self) -> np.ndarray:
        return self._X

    def materialize(self, dtype: np.dtype | type | None = None, copy: bool = False) -> np.ndarray:
        target = self.dtype if dtype is None else np.dtype(dtype)
        if target == self.dtype and not copy:
            return self._X
        return self._X.astype(target, copy=True)


class LazyLabelBackend(PairDistanceBackend):
    """Backend computing ``X`` row blocks on demand from the label matrix.

    Stores only the ``(n, m)`` label matrix — O(n * m) memory — and
    computes any requested rows with the same
    :func:`repro.core.instance.disagreement_block` kernel (same
    missing-value model, same dtype rules) the batch build uses, so every
    block is bitwise equal to the corresponding rows of the materialized
    matrix.  Grid-aligned blocks (the :func:`reduction_block_rows` grid by
    default) are held in a small LRU cache so repeated scans and nearby
    row fetches amortize the kernel cost.
    """

    __slots__ = (
        "_matrix",
        "_n",
        "_m",
        "_p",
        "_missing",
        "_dtype",
        "_block_rows",
        "_cache_blocks",
        "_cache",
    )

    def __init__(
        self,
        matrix: np.ndarray,
        p: float = 0.5,
        dtype: np.dtype | type | None = None,
        missing: str = "coin-flip",
        block_rows: int | None = None,
        cache_blocks: int = 8,
        validate: bool = True,
    ) -> None:
        matrix = np.asarray(matrix)
        if validate:
            validate_label_matrix(matrix)
        if missing not in ("coin-flip", "average"):
            raise ValueError(f"missing must be 'coin-flip' or 'average', got {missing!r}")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be a probability, got {p}")
        self._matrix = matrix
        self._n = int(matrix.shape[0])
        self._m = int(matrix.shape[1])
        if dtype is None:
            dtype = np.float64 if self._n <= 4096 else np.float32
        self._dtype: np.dtype = np.dtype(dtype)
        self._p = float(p)
        self._missing = missing
        self._block_rows = reduction_block_rows(self._n) if block_rows is None else int(block_rows)
        if self._block_rows < 1:
            raise ValueError("block_rows must be positive")
        if cache_blocks < 0:
            raise ValueError("cache_blocks must be >= 0")
        self._cache_blocks = int(cache_blocks)
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()

    # ------------------------------------------------------------------
    # Accessors used by the shared-memory fan-out and the constructors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def m(self) -> int:
        """Number of source clusterings (label columns)."""
        return self._m

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def name(self) -> str:
        return "lazy"

    @property
    def label_matrix(self) -> np.ndarray:
        """The backing ``(n, m)`` label matrix (do not mutate)."""
        return self._matrix

    @property
    def p(self) -> float:
        """Coin-flip probability of the missing-value model."""
        return self._p

    @property
    def missing(self) -> str:
        """Missing-value strategy: ``"coin-flip"`` or ``"average"``."""
        return self._missing

    @property
    def cache_blocks(self) -> int:
        """Capacity of the LRU block cache (number of grid blocks)."""
        return self._cache_blocks

    @property
    def block_rows(self) -> int:
        """Cache granularity: rows per grid block."""
        return self._block_rows

    def cached_block_indices(self) -> tuple[int, ...]:
        """Grid-block indices currently held in the LRU cache (LRU first)."""
        return tuple(self._cache)

    # ------------------------------------------------------------------
    # Storage primitives
    # ------------------------------------------------------------------

    def _compute(self, start: int, stop: int) -> np.ndarray:
        # Function-level import: repro.core.instance imports this module
        # for the backend classes, so the kernel import cannot be at the top.
        from .instance import disagreement_block

        with phase("instance.block", start=int(start), rows=int(stop - start)):
            block = disagreement_block(
                self._matrix, start, stop, p=self._p, dtype=self._dtype, missing=self._missing
            )
        diagonal = np.arange(start, stop)
        block[diagonal - start, diagonal] = self._dtype.type(0.0)
        return block

    def _grid_block(self, index: int) -> np.ndarray:
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        start = index * self._block_rows
        block = self._compute(start, min(start + self._block_rows, self._n))
        if self._cache_blocks > 0:
            self._cache[index] = block
            while len(self._cache) > self._cache_blocks:
                self._cache.popitem(last=False)
        return block

    def row_block(self, start: int, stop: int) -> np.ndarray:
        if start % self._block_rows == 0 and stop == min(start + self._block_rows, self._n):
            return self._grid_block(start // self._block_rows)
        return self._compute(start, stop)

    def row(self, u: int) -> np.ndarray:
        index = u // self._block_rows
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached[u - index * self._block_rows]
        return self._compute(u, u + 1)[0]

    def gather_block(
        self, rows: np.ndarray | Sequence[int], cols: np.ndarray | Sequence[int]
    ) -> np.ndarray:
        return label_pair_block(
            self._matrix,
            np.asarray(rows),
            np.asarray(cols),
            p=self._p,
            dtype=self._dtype,
            missing=self._missing,
        )

    def columns(self, idx: np.ndarray | Sequence[int]) -> np.ndarray:
        # X is bitwise symmetric (every kernel term is), so columns are
        # transposed row gathers.
        index = np.asarray(idx)
        return self.gather_block(index, np.arange(self._n, dtype=np.intp)).T

    def take(self, idx: np.ndarray | Sequence[int]) -> "LazyLabelBackend":
        index = np.asarray(idx)
        # Keep the parent's dtype: a sub-instance of a float32 instance
        # stays float32 even when the subset drops below the size rule.
        return LazyLabelBackend(
            self._matrix[index],
            p=self._p,
            dtype=self._dtype,
            missing=self._missing,
            cache_blocks=self._cache_blocks,
            validate=False,
        )
