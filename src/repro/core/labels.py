"""Label matrices: the compact encoding of many clusterings of one object set.

A *label matrix* is an ``(n, m)`` integer array whose column ``j`` holds the
cluster labels assigned to the ``n`` objects by the ``j``-th input
clustering.  The sentinel ``-1`` marks a *missing* entry: the ``j``-th
clustering expresses no opinion about that object (this is exactly the
situation of a missing categorical attribute value in Section 2 of the
paper).

All aggregation algorithms in this library either consume a
:class:`~repro.core.instance.CorrelationInstance` built from a label matrix,
or (for the large-scale SAMPLING path) consume the label matrix directly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .partition import Clustering

__all__ = [
    "MISSING",
    "as_label_matrix",
    "validate_label_matrix",
    "columns_as_clusterings",
    "contingency_table",
    "compact_columns",
]

#: Sentinel used in label matrices for "this clustering has no opinion".
MISSING = -1


def as_label_matrix(clusterings: Sequence[Clustering | Sequence[int] | np.ndarray]) -> np.ndarray:
    """Stack clusterings into an ``(n, m)`` int32 label matrix.

    Accepts :class:`Clustering` objects, label sequences, or 1-D arrays
    (which may already contain ``-1`` missing markers).  All inputs must
    have the same length.
    """
    if len(clusterings) == 0:
        raise ValueError("need at least one clustering")
    columns = []
    for item in clusterings:
        if isinstance(item, Clustering):
            columns.append(item.labels.astype(np.int32))
        else:
            arr = np.asarray(item)
            if arr.ndim != 1:
                raise ValueError("each clustering must be one-dimensional")
            if not np.issubdtype(arr.dtype, np.integer):
                raise TypeError(f"labels must be integers, got dtype {arr.dtype}")
            columns.append(arr.astype(np.int32))
    n = columns[0].size
    if any(col.size != n for col in columns):
        raise ValueError("all clusterings must cover the same number of objects")
    matrix = np.column_stack(columns)
    validate_label_matrix(matrix)
    return matrix


def validate_label_matrix(matrix: np.ndarray) -> None:
    """Raise ``ValueError`` unless ``matrix`` is a well-formed label matrix."""
    if matrix.ndim != 2:
        raise ValueError(f"label matrix must be 2-D, got shape {matrix.shape}")
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        raise ValueError("label matrix must have at least one row and one column")
    if not np.issubdtype(matrix.dtype, np.integer):
        raise TypeError(f"label matrix must be integer, got dtype {matrix.dtype}")
    if np.any(matrix < MISSING):
        raise ValueError("labels must be >= -1 (-1 denotes a missing entry)")
    all_missing = np.all(matrix == MISSING, axis=0)
    if np.any(all_missing):
        bad = np.flatnonzero(all_missing).tolist()
        raise ValueError(f"columns {bad} are entirely missing and carry no information")


def columns_as_clusterings(matrix: np.ndarray) -> list[Clustering]:
    """Convert a label matrix without missing entries back to clusterings."""
    validate_label_matrix(matrix)
    if np.any(matrix == MISSING):
        raise ValueError(
            "label matrix contains missing entries; clusterings must be total "
            "partitions (handle missing values through CorrelationInstance)"
        )
    return [Clustering(matrix[:, j]) for j in range(matrix.shape[1])]


def contingency_table(labels_a: np.ndarray, labels_b: np.ndarray) -> np.ndarray:
    """Joint count table of two label vectors, ignoring missing entries.

    Returns a ``(ka, kb)`` array whose ``(i, j)`` entry counts the objects
    labelled ``i`` by ``labels_a`` and ``j`` by ``labels_b``.  Pairs where
    either side is missing (``-1``) are excluded.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("label vectors must be 1-D and of equal length")
    present = (a != MISSING) & (b != MISSING)
    a = a[present]
    b = b[present]
    if a.size == 0:
        return np.zeros((0, 0), dtype=np.int64)
    ka = int(a.max()) + 1
    kb = int(b.max()) + 1
    table = np.zeros(ka * kb, dtype=np.int64)
    np.add.at(table, a.astype(np.int64) * kb + b.astype(np.int64), 1)
    return table.reshape(ka, kb)


def compact_columns(matrix: np.ndarray) -> np.ndarray:
    """Renumber each column's labels to a dense ``0..k_j-1`` range.

    Missing entries are preserved.  Compacting keeps downstream count
    tables small when the raw labels are sparse (e.g. hash codes).
    """
    validate_label_matrix(matrix)
    out = np.empty_like(matrix, dtype=np.int32)
    for j in range(matrix.shape[1]):
        column = matrix[:, j]
        present = column != MISSING
        _, inverse = np.unique(column[present], return_inverse=True)
        out[~present, j] = MISSING
        out[present, j] = inverse.astype(np.int32)
    return out
