"""Disagreement distance between clusterings (the paper's ``d_V``).

Two clusterings *disagree* on an (unordered) pair of objects ``(u, v)`` when
one places them in the same cluster and the other separates them.  The
distance ``d_V(C1, C2)`` counts the disagreeing pairs; it is the classical
Mirkin metric on partitions and satisfies the triangle inequality
(Observation 1 in the paper).

Rather than enumerating all ``n(n-1)/2`` pairs, the distance is computed
from the contingency table of the two clusterings in
``O(n + k1 * k2)``:

    d_V(C1, C2) = S1 + S2 - 2 * S12

where ``S1``/``S2`` count co-clustered pairs in each clustering and ``S12``
counts pairs co-clustered in both.

Missing values (Section 2 of the paper) are handled by the coin-flip model:
a clustering with a missing entry for ``u`` or ``v`` declares the pair
co-clustered with probability ``p`` (independently per pair), and we measure
the *expected* number of disagreements.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .labels import MISSING, as_label_matrix, contingency_table
from .partition import Clustering

__all__ = [
    "pairs_within",
    "clustering_distance",
    "expected_column_distance",
    "total_disagreement",
    "weighted_total_disagreement",
    "normalized_distance",
    "distance_matrix",
]


def pairs_within(sizes: np.ndarray) -> int:
    """Number of unordered object pairs that fall inside the same cluster."""
    s = np.asarray(sizes, dtype=np.int64)
    return int((s * (s - 1) // 2).sum())


def _co_clustered_pairs(labels: np.ndarray) -> int:
    """Co-clustered pair count of a label vector (missing entries excluded)."""
    present = labels[labels != MISSING]
    if present.size == 0:
        return 0
    return pairs_within(np.bincount(present))


def clustering_distance(first: Clustering, second: Clustering) -> int:
    """The Mirkin disagreement distance ``d_V`` between two clusterings."""
    if first.n != second.n:
        raise ValueError(f"clusterings cover {first.n} and {second.n} objects")
    table = contingency_table(first.labels, second.labels)
    same_first = pairs_within(table.sum(axis=1))
    same_second = pairs_within(table.sum(axis=0))
    same_both = pairs_within(table.ravel())
    return same_first + same_second - 2 * same_both


def expected_column_distance(
    column: np.ndarray, clustering: Clustering, p: float = 0.5
) -> float:
    """Expected disagreements between one (possibly partial) input column and a clustering.

    ``column`` is one column of a label matrix and may contain ``-1``
    (missing) entries.  Under the coin-flip model a missing-involved pair is
    reported co-clustered with probability ``p``.  With no missing entries
    this equals :func:`clustering_distance` exactly.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")
    column = np.asarray(column)
    if column.shape != (clustering.n,):
        raise ValueError("column length must match the clustering size")
    n = clustering.n
    total_pairs = n * (n - 1) // 2

    present = column != MISSING
    concrete = int(present.sum())
    concrete_pairs = concrete * (concrete - 1) // 2
    missing_pairs = total_pairs - concrete_pairs

    # Disagreements on fully-concrete pairs: the exact Mirkin count on the
    # restriction to the objects the column labels.
    table = contingency_table(column, clustering.labels)
    same_col = pairs_within(table.sum(axis=1))
    same_clu_concrete = pairs_within(table.sum(axis=0))
    same_both = pairs_within(table.ravel())
    concrete_disagreements = same_col + same_clu_concrete - 2 * same_both

    # Expected disagreements on missing-involved pairs: (1-p) per pair the
    # clustering joins, p per pair it splits.
    same_clu_total = pairs_within(clustering.sizes())
    same_clu_missing = same_clu_total - same_clu_concrete
    diff_clu_missing = missing_pairs - same_clu_missing
    expected_missing = (1.0 - p) * same_clu_missing + p * diff_clu_missing

    return float(concrete_disagreements) + expected_missing


def total_disagreement(
    inputs: np.ndarray | Sequence[Clustering],
    clustering: Clustering,
    p: float = 0.5,
) -> float:
    """The aggregation objective ``D(C) = sum_i d_V(C_i, C)``.

    ``inputs`` is either a label matrix (columns may contain missing
    entries) or a sequence of :class:`Clustering` objects.  The result is an
    exact integer-valued float when no entries are missing, and an expected
    value under the coin-flip model otherwise.
    """
    matrix = inputs if isinstance(inputs, np.ndarray) else as_label_matrix(inputs)
    if matrix.shape[0] != clustering.n:
        raise ValueError("label matrix rows must match the clustering size")
    return float(
        sum(expected_column_distance(matrix[:, j], clustering, p=p) for j in range(matrix.shape[1]))
    )


def _weighted_pairs_within(groups: np.ndarray, weights: np.ndarray) -> float:
    """Weighted unordered-pair mass inside each group: ``sum_g (S_g² - Q_g) / 2``.

    With unit weights this is :func:`pairs_within`; in general each pair
    ``(u, v)`` with ``u != v`` in the same group contributes ``w_u * w_v``
    (self-pairs contribute nothing — on atom matrices those are the
    intra-atom pairs, which the objective defines as zero).
    """
    sums = np.bincount(groups, weights=weights)
    squares = np.bincount(groups, weights=weights * weights)
    return float((sums * sums - squares).sum() / 2.0)


def weighted_total_disagreement(
    matrix: np.ndarray,
    clustering: Clustering,
    weights: np.ndarray | None = None,
    p: float = 0.5,
) -> float:
    """``D(C)`` of a label matrix whose rows carry multiplicities.

    The weighted aggregation objective: every unordered row pair
    ``(u, v)`` counts ``w_u * w_v`` times, so on a duplicate-collapsed
    (atom) matrix this equals :func:`total_disagreement` of the expanded
    clustering over the expanded matrix.  ``weights=None`` means unit
    multiplicities, where the value coincides with
    :func:`total_disagreement` exactly.  Missing entries follow the
    coin-flip model at probability ``p``.  Runs in ``O(n * m)`` — one
    contingency pass per column, never enumerating pairs.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")
    matrix = np.asarray(matrix)
    n, m = matrix.shape
    if n != clustering.n:
        raise ValueError("label matrix rows must match the clustering size")
    if weights is None:
        w = np.ones(n, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError("weights must give one multiplicity per row")
    total_w = float(w.sum())
    total_sq = float((w * w).sum())
    total_pairs = (total_w * total_w - total_sq) / 2.0
    member = clustering.labels
    same_clu_total = _weighted_pairs_within(member, w)

    total = 0.0
    for j in range(m):
        column = matrix[:, j]
        present = column != MISSING
        wc = w[present]
        present_w = float(wc.sum())
        present_sq = float((wc * wc).sum())
        concrete_pairs = (present_w * present_w - present_sq) / 2.0
        missing_pairs = total_pairs - concrete_pairs

        _, codes = np.unique(column[present], return_inverse=True)
        concrete_member = member[present]
        joint = codes * (int(member.max()) + 1) + concrete_member
        same_col = _weighted_pairs_within(codes, wc)
        same_clu_concrete = _weighted_pairs_within(concrete_member, wc)
        same_both = _weighted_pairs_within(joint, wc)
        concrete_disagreements = same_col + same_clu_concrete - 2.0 * same_both

        same_clu_missing = same_clu_total - same_clu_concrete
        diff_clu_missing = missing_pairs - same_clu_missing
        total += concrete_disagreements + (1.0 - p) * same_clu_missing + p * diff_clu_missing
    return total


def normalized_distance(first: Clustering, second: Clustering) -> float:
    """Mirkin distance divided by the number of object pairs (range [0, 1])."""
    n = first.n
    if n < 2:
        return 0.0
    return clustering_distance(first, second) / (n * (n - 1) / 2)


def distance_matrix(clusterings: Sequence[Clustering]) -> np.ndarray:
    """All pairwise Mirkin distances among a set of clusterings."""
    m = len(clusterings)
    out = np.zeros((m, m), dtype=np.float64)
    # Each entry is a contingency-table computation over m (few) clusterings,
    # not an element-wise pass over object pairs — no kernel to block over.
    for i in range(m):  # repolint: disable=RPR002
        for j in range(i + 1, m):
            out[i, j] = out[j, i] = clustering_distance(clusterings[i], clusterings[j])
    return out
