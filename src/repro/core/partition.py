"""Partitions of a finite object set.

The central data structure of the library is :class:`Clustering`, an
immutable partition of ``n`` objects ``{0, ..., n-1}`` into ``k`` disjoint
clusters.  Internally a clustering is a dense integer label vector; labels
are canonicalized to ``0..k-1`` in order of first appearance so that two
clusterings that induce the same partition compare (and hash) equal even if
they were built with different label names.

The paper ("Clustering Aggregation", Gionis et al., ICDE 2005) denotes a
clustering by ``C`` and writes ``C(v)`` for the cluster label of object
``v``; :meth:`Clustering.label_of` mirrors that notation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..analysis.contracts import check_canonical_labels, contracts_enabled

__all__ = ["Clustering"]


def _canonicalize(labels: np.ndarray) -> np.ndarray:
    """Relabel ``labels`` to ``0..k-1`` in order of first appearance."""
    _, first_index, inverse = np.unique(labels, return_index=True, return_inverse=True)
    # np.unique sorts by value; re-rank unique values by first appearance so
    # that the object with the smallest index always belongs to cluster 0.
    order = np.argsort(np.argsort(first_index))
    return order[inverse].astype(np.int32)


class Clustering:
    """An immutable partition of the objects ``0..n-1``.

    Parameters
    ----------
    labels:
        A sequence of ``n`` integer cluster labels, one per object.  Any
        integer values are accepted; they are canonicalized internally.

    Examples
    --------
    >>> c = Clustering([5, 5, 9, 9, 2])
    >>> c.n, c.k
    (5, 3)
    >>> list(c.labels)
    [0, 0, 1, 1, 2]
    >>> c == Clustering([1, 1, 0, 0, 7])
    True
    """

    __slots__ = ("_labels", "_k", "_hash")

    def __init__(self, labels: Sequence[int] | np.ndarray) -> None:
        arr = np.asarray(labels)
        if arr.ndim != 1:
            raise ValueError(f"labels must be one-dimensional, got shape {arr.shape}")
        if arr.size == 0:
            raise ValueError("a clustering must contain at least one object")
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError(f"labels must be integers, got dtype {arr.dtype}")
        if np.any(arr < 0):
            raise ValueError(
                "negative labels are not allowed in a Clustering; use a label "
                "matrix with -1 entries (repro.core.labels) for missing values"
            )
        canonical = _canonicalize(arr)
        canonical.setflags(write=False)
        if contracts_enabled():
            check_canonical_labels(canonical)
        self._labels = canonical
        self._k = int(canonical.max()) + 1
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_clusters(cls, clusters: Iterable[Iterable[int]], n: int | None = None) -> "Clustering":
        """Build a clustering from an iterable of clusters (index sets).

        The clusters must be disjoint and must cover ``0..n-1``.  If ``n``
        is omitted it is inferred as ``max index + 1``.
        """
        groups = [np.asarray(sorted(group), dtype=np.int64) for group in clusters]
        if not groups or any(g.size == 0 for g in groups):
            raise ValueError("clusters must be non-empty")
        all_members = np.concatenate(groups)
        if n is None:
            n = int(all_members.max()) + 1
        labels = np.full(n, -1, dtype=np.int64)
        for cluster_id, group in enumerate(groups):
            if group.min() < 0 or group.max() >= n:
                raise ValueError(f"cluster member out of range 0..{n - 1}")
            if np.any(labels[group] != -1):
                raise ValueError("clusters overlap: some object appears twice")
            labels[group] = cluster_id
        if np.any(labels == -1):
            missing = np.flatnonzero(labels == -1)[:5].tolist()
            raise ValueError(f"clusters do not cover all objects; e.g. missing {missing}")
        return cls(labels)

    @classmethod
    def singletons(cls, n: int) -> "Clustering":
        """The all-singletons partition of ``n`` objects."""
        return cls(np.arange(n, dtype=np.int64))

    @classmethod
    def single_cluster(cls, n: int) -> "Clustering":
        """The one-cluster partition of ``n`` objects."""
        return cls(np.zeros(n, dtype=np.int64))

    @classmethod
    def random(cls, n: int, k: int, rng: np.random.Generator | int | None = None) -> "Clustering":
        """A uniformly random label assignment of ``n`` objects into at most ``k`` clusters."""
        if k < 1:
            raise ValueError("k must be at least 1")
        generator = np.random.default_rng(rng)
        return cls(generator.integers(0, k, size=n))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def labels(self) -> np.ndarray:
        """The canonical (read-only) label vector, values in ``0..k-1``."""
        return self._labels

    @property
    def n(self) -> int:
        """Number of objects."""
        return int(self._labels.size)

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self._k

    def label_of(self, v: int) -> int:
        """The cluster label ``C(v)`` of object ``v``."""
        return int(self._labels[v])

    def sizes(self) -> np.ndarray:
        """Cluster sizes indexed by cluster label."""
        return np.bincount(self._labels, minlength=self._k)

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the objects in the given cluster."""
        if not 0 <= cluster < self._k:
            raise IndexError(f"cluster {cluster} out of range 0..{self._k - 1}")
        return np.flatnonzero(self._labels == cluster)

    def clusters(self) -> list[np.ndarray]:
        """All clusters as a list of index arrays, ordered by label."""
        order = np.argsort(self._labels, kind="stable")
        boundaries = np.searchsorted(self._labels[order], np.arange(1, self._k))
        return np.split(order, boundaries)

    def to_sets(self) -> list[frozenset[int]]:
        """All clusters as frozensets of ints (convenient for tests)."""
        return [frozenset(map(int, group)) for group in self.clusters()]

    # ------------------------------------------------------------------
    # Derived clusterings
    # ------------------------------------------------------------------

    def restrict(self, indices: Sequence[int] | np.ndarray) -> "Clustering":
        """The induced clustering on a subset of objects.

        Object ``i`` of the result corresponds to ``indices[i]`` of the
        original clustering; empty clusters are dropped.
        """
        idx = np.asarray(indices)
        return Clustering(self._labels[idx])

    def merge_clusters(self, a: int, b: int) -> "Clustering":
        """A new clustering with clusters ``a`` and ``b`` merged."""
        if a == b:
            raise ValueError("cannot merge a cluster with itself")
        labels = self._labels.copy()
        labels[labels == b] = a
        return Clustering(labels)

    def same_cluster(self, u: int, v: int) -> bool:
        """Whether objects ``u`` and ``v`` are co-clustered."""
        return bool(self._labels[u] == self._labels[v])

    def meet(self, other: "Clustering") -> "Clustering":
        """The coarsest common refinement (lattice meet) of two partitions.

        Two objects are co-clustered in the meet iff both partitions
        co-cluster them.  The meet of all input clusterings gives the
        "atoms" that no input ever separates.
        """
        if other.n != self.n:
            raise ValueError("partitions must cover the same objects")
        combined = self._labels.astype(np.int64) * other.k + other._labels
        return Clustering(combined)

    def join(self, other: "Clustering") -> "Clustering":
        """The finest common coarsening (lattice join) of two partitions.

        Two objects are co-clustered in the join iff they are connected by
        a chain of co-clusterings alternating between the two partitions
        (union-find over the bipartite cluster graph).
        """
        if other.n != self.n:
            raise ValueError("partitions must cover the same objects")
        # Union-find over cluster ids: self's clusters are 0..k1-1, other's
        # are k1..k1+k2-1; every object links its two clusters.
        total = self.k + other.k
        parent = np.arange(total, dtype=np.int64)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for mine, theirs in zip(self._labels, other._labels):
            parent[find(int(mine))] = find(self.k + int(theirs))
        roots = np.array([find(int(label)) for label in self._labels], dtype=np.int64)
        return Clustering(roots)

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clustering):
            return NotImplemented
        return self._labels.shape == other._labels.shape and bool(
            np.array_equal(self._labels, other._labels)
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._labels.tobytes())
        return self._hash

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        preview = ", ".join(map(str, self._labels[:8]))
        suffix = ", ..." if self.n > 8 else ""
        return f"Clustering(n={self.n}, k={self.k}, labels=[{preview}{suffix}])"
