"""Correlation-clustering instances (Problem 2 of the paper).

A correlation-clustering instance over ``n`` objects is a symmetric matrix
``X`` with entries in ``[0, 1]`` and zero diagonal.  ``X[u, v]`` is the
*distance* between ``u`` and ``v``; a candidate clustering ``C`` pays
``X[u, v]`` for every co-clustered pair and ``1 - X[u, v]`` for every
separated pair:

    d(C) = sum_{C(u) = C(v)} X_uv  +  sum_{C(u) != C(v)} (1 - X_uv)

(unordered pairs).  An instance built from ``m`` input clusterings sets
``X[u, v]`` to the fraction of clusterings separating ``u`` and ``v``, so
that the aggregation objective satisfies ``D(C) = m * d(C)`` and the two
problems coincide.  Such instances obey the triangle inequality, which the
BALLS analysis exploits.

Missing entries in the label matrix follow the coin-flip model of Section
2: a clustering missing ``u`` or ``v`` reports the pair co-clustered with
probability ``p``, contributing ``1 - p`` to ``X[u, v]`` in expectation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..analysis.contracts import check_distance_matrix, contracts_enabled
from ..obs.metrics import inc
from ..obs.profile import phase
from .backend import DenseBackend, LazyLabelBackend, PairDistanceBackend, resolve_backend
from .labels import MISSING, as_label_matrix, validate_label_matrix
from .partition import Clustering

__all__ = [
    "CorrelationInstance",
    "disagreement_block",
    "disagreement_fractions",
    "pair_separation_block",
]

#: Row-block size for the blocked construction of the X matrix.
_BLOCK_ROWS = 2048


def pair_separation_block(
    column: np.ndarray,
    start: int,
    stop: int,
    p: float = 0.5,
    dtype: np.dtype | type = np.float64,
    missing: str = "coin-flip",
) -> tuple[np.ndarray, np.ndarray | None]:
    """One clustering's separation contribution for a block of rows.

    For the label ``column`` of a single input clustering, computes the
    ``(stop - start, n)`` block of per-pair separation terms that the
    clustering contributes to the ``X`` matrix:

    * ``missing="coin-flip"``: ``1`` where the labels differ, ``0`` where
      they agree, ``1 - p`` where either label is missing; returns
      ``(separation, None)``.
    * ``missing="average"``: ``1`` only where both labels are concrete and
      differ; returns ``(separation, comparable)`` with ``comparable`` a
      0/1 mask of the pairs concrete on both sides.

    This is the shared kernel of the batch :func:`disagreement_fractions`
    build and the incremental accumulation in
    :class:`repro.stream.IncrementalCorrelationInstance`: both sum these
    blocks over the input clusterings and normalize.  The diagonal is NOT
    zeroed here — callers zero it once on the finished ``X``.
    """
    np_dtype = dtype if isinstance(dtype, np.dtype) else np.dtype(dtype)
    one_minus_p = np_dtype.type(1.0 - p)
    row_part = column[start:stop]
    missing_rows = row_part == MISSING
    missing_cols = column == MISSING
    different = row_part[:, None] != column[None, :]
    missing_pair = missing_rows[:, None] | missing_cols[None, :]
    if missing == "coin-flip":
        return np.where(missing_pair, one_minus_p, different.astype(dtype)), None
    both_present = ~missing_pair
    return (different & both_present).astype(dtype), both_present.astype(dtype)


def disagreement_block(
    matrix: np.ndarray,
    start: int,
    stop: int,
    p: float = 0.5,
    dtype: np.dtype | type = np.float64,
    missing: str = "coin-flip",
) -> np.ndarray:
    """The normalized rows ``[start, stop)`` of the ``X`` matrix.

    Sums :func:`pair_separation_block` over the ``m`` label columns and
    applies the per-pair normalization of the selected missing-value
    strategy.  Row blocks are independent and every element is accumulated
    in the same column order regardless of how the rows are partitioned,
    so any tiling of ``[0, n)`` into blocks — including the process-parallel
    fan-out in :mod:`repro.parallel.build` — reassembles bit-identically to
    the serial :func:`disagreement_fractions` build.  The diagonal is NOT
    zeroed here; callers zero it once on the finished ``X``.
    """
    n, m = matrix.shape
    np_dtype = dtype if isinstance(dtype, np.dtype) else np.dtype(dtype)
    block = np.zeros((stop - start, n), dtype=np_dtype)
    comparable = np.zeros((stop - start, n), dtype=np_dtype) if missing == "average" else None
    for j in range(m):
        separation, both_present = pair_separation_block(
            matrix[:, j], start, stop, p=p, dtype=np_dtype, missing=missing
        )
        block += separation
        if both_present is not None and comparable is not None:
            comparable += both_present
    if comparable is None:
        block /= m
    else:
        with np.errstate(invalid="ignore", divide="ignore"):
            block /= comparable
        block[comparable == 0] = np_dtype.type(0.5)
    return block


def disagreement_fractions(
    matrix: np.ndarray,
    p: float = 0.5,
    dtype: np.dtype | type | None = None,
    missing: str = "coin-flip",
    n_jobs: int | None = 1,
) -> np.ndarray:
    """The ``X`` matrix of pairwise disagreement fractions of a label matrix.

    ``X[u, v]`` is the (expected) fraction of the ``m`` columns that place
    ``u`` and ``v`` in different clusters.  Missing entries follow one of
    the two strategies of the paper's §2:

    * ``missing="coin-flip"`` (default, the paper's choice): a clustering
      missing either object reports the pair co-clustered with probability
      ``p``, contributing ``1 - p`` in expectation; the denominator stays
      ``m``.
    * ``missing="average"``: "let the remaining attributes decide" — only
      columns concrete on *both* objects are counted, and the fraction is
      taken over those; a pair with no commonly-concrete column gets the
      uninformative 0.5.

    Computed in row blocks to bound temporary memory; defaults to float64
    up to 4096 objects and float32 beyond.  ``n_jobs`` selects the
    process-parallel row-block build of :mod:`repro.parallel.build`
    (``None`` consults the ``REPRO_JOBS`` environment variable, see
    :func:`repro.parallel.resolve_jobs`); any worker count produces a
    bit-identical matrix, and small instances stay on the serial path
    regardless.
    """
    validate_label_matrix(matrix)
    if missing not in ("coin-flip", "average"):
        raise ValueError(f"missing must be 'coin-flip' or 'average', got {missing!r}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")
    n, m = matrix.shape
    if dtype is None:
        dtype = np.float64 if n <= 4096 else np.float32
    if n_jobs is None or n_jobs != 1:
        from ..parallel.build import MIN_PARALLEL_ROWS, parallel_disagreement_fractions
        from ..parallel.shm import resolve_jobs

        if resolve_jobs(n_jobs) > 1 and n >= MIN_PARALLEL_ROWS:
            return parallel_disagreement_fractions(
                matrix, p=p, dtype=dtype, missing=missing, n_jobs=n_jobs
            )
    X = np.zeros((n, n), dtype=dtype)
    for start in range(0, n, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n)
        X[start:stop] = disagreement_block(matrix, start, stop, p=p, dtype=dtype, missing=missing)
    np.fill_diagonal(X, 0.0)
    return X


class CorrelationInstance:
    """A correlation-clustering input: symmetric pairwise distances in [0, 1].

    Construct with :meth:`from_clusterings` / :meth:`from_label_matrix` for
    aggregation problems, or :meth:`from_distances` for a raw correlation
    instance.  ``m`` records how many input clusterings produced the
    instance (``None`` for raw instances); when known, costs convert to
    aggregation disagreements via :meth:`disagreements`.

    Pairwise distances are held by a :class:`~repro.core.backend.PairDistanceBackend`:
    either a :class:`~repro.core.backend.DenseBackend` over a materialized
    ``X`` (the default) or a :class:`~repro.core.backend.LazyLabelBackend`
    computing row blocks on demand from the label matrix (see
    :meth:`lazy_from_label_matrix`), which keeps memory at O(n * m) for
    large ``n``.  On lazy instances the :attr:`X` property raises; go
    through :attr:`backend` instead.
    """

    __slots__ = ("_backend", "_m", "_weights", "_effective_weights")

    def __init__(
        self,
        distances: np.ndarray | None = None,
        m: int | None = None,
        validate: bool = True,
        weights: np.ndarray | None = None,
        backend: PairDistanceBackend | None = None,
    ) -> None:
        if backend is None:
            if distances is None:
                raise ValueError("provide either a distance matrix or a backend")
            X = np.asarray(distances)
            if validate:
                self._validate(X)
            elif contracts_enabled():
                # Fast construction paths skip validation; in debug mode the
                # contract layer re-checks the §3 shape invariants anyway.
                check_distance_matrix(X)
            backend = DenseBackend(X)
        elif distances is not None:
            raise ValueError("distances and backend are mutually exclusive")
        elif contracts_enabled() and isinstance(backend, DenseBackend):
            # Lazy backends have no matrix to check; dense ones keep the
            # same debug-mode invariant check as the matrix constructor.
            check_distance_matrix(backend.dense())
        self._backend = backend
        if m is not None and m < 1:
            raise ValueError("m must be a positive count of input clusterings")
        self._m = m
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (backend.n,):
                raise ValueError("weights must give one multiplicity per object")
            if np.any(weights < 1):
                raise ValueError("weights must be >= 1 (duplicate multiplicities)")
        self._weights = weights
        self._effective_weights: np.ndarray | None = None

    @staticmethod
    def _validate(X: np.ndarray) -> None:
        if X.ndim != 2 or X.shape[0] != X.shape[1]:
            raise ValueError(f"distance matrix must be square, got shape {X.shape}")
        if X.shape[0] == 0:
            raise ValueError("instance must contain at least one object")
        if not np.issubdtype(X.dtype, np.floating):
            raise TypeError(f"distances must be floating point, got {X.dtype}")
        if np.any(np.diagonal(X) != 0):
            raise ValueError("distance matrix must have a zero diagonal")
        # Tolerate float32 rounding when checking symmetry and range.
        if not np.allclose(X, X.T, atol=1e-6):
            raise ValueError("distance matrix must be symmetric")
        if float(X.min()) < -1e-9 or float(X.max()) > 1 + 1e-6:
            raise ValueError("distances must lie in [0, 1]")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_label_matrix(
        cls,
        matrix: np.ndarray,
        p: float = 0.5,
        dtype: np.dtype | type | None = None,
        missing: str = "coin-flip",
        weights: np.ndarray | None = None,
        n_jobs: int | None = 1,
        backend: str = "dense",
    ) -> "CorrelationInstance":
        """Build the aggregation instance of an ``(n, m)`` label matrix.

        ``missing`` selects the §2 missing-value strategy; note that with
        ``"average"`` the per-pair denominators differ, so the exact
        identity ``D(C) = m * d(C)`` holds only for ``"coin-flip"``.
        ``weights`` gives per-row multiplicities for duplicate-collapsed
        (atom) instances — see :mod:`repro.core.atoms`.  ``n_jobs`` fans
        the row-block build out over a shared-memory worker pool
        (bit-identical to the serial build; ``None`` defers to the
        ``REPRO_JOBS`` environment variable).  ``backend`` selects the
        pair-distance storage: ``"dense"`` materializes ``X`` now,
        ``"lazy"`` defers to on-demand row blocks (O(n * m) memory), and
        ``"auto"`` picks lazy above :func:`repro.core.backend.lazy_threshold`
        objects.
        """
        if resolve_backend(backend, int(matrix.shape[0])) == "lazy":
            return cls.lazy_from_label_matrix(
                matrix, p=p, dtype=dtype, missing=missing, weights=weights
            )
        with phase("instance.build", rows=int(matrix.shape[0]), m=int(matrix.shape[1])):
            X = disagreement_fractions(matrix, p=p, dtype=dtype, missing=missing, n_jobs=n_jobs)
        inc("instance.builds")
        inc("instance.build.rows", float(matrix.shape[0]))
        instance = cls(X, m=matrix.shape[1], validate=False, weights=weights)
        if (
            contracts_enabled()
            and missing == "coin-flip"
            and (p == 0.5 or not np.any(matrix == MISSING))
        ):
            # Aggregation instances are metric (§3, Observation 1).  The
            # "average" strategy and off-center coin flips (p != 0.5 with
            # missing entries) can legitimately break the triangle
            # inequality, so the contract is scoped to the metric cases.
            check_distance_matrix(
                X, check_triangle=True, context="CorrelationInstance.from_label_matrix"
            )
        return instance

    @classmethod
    def lazy_from_label_matrix(
        cls,
        matrix: np.ndarray,
        p: float = 0.5,
        dtype: np.dtype | type | None = None,
        missing: str = "coin-flip",
        weights: np.ndarray | None = None,
        block_rows: int | None = None,
        cache_blocks: int = 8,
    ) -> "CorrelationInstance":
        """Build a label-backed instance that never materializes ``X``.

        Stores only the ``(n, m)`` label matrix and computes distance row
        blocks on demand through a :class:`~repro.core.backend.LazyLabelBackend`
        (same missing-value model and dtype rules as the dense build, and
        bitwise-identical entries).  Memory stays O(n * m) plus a small
        LRU cache of ``cache_blocks`` row blocks, which is what lets
        BALLS and SAMPLING run at n = 50k-100k where the dense matrix
        cannot be allocated.
        """
        lazy = LazyLabelBackend(
            matrix,
            p=p,
            dtype=dtype,
            missing=missing,
            block_rows=block_rows,
            cache_blocks=cache_blocks,
        )
        inc("instance.builds")
        inc("instance.build.rows", float(matrix.shape[0]))
        return cls(m=int(matrix.shape[1]), weights=weights, backend=lazy)

    @classmethod
    def from_clusterings(
        cls, clusterings: Sequence[Clustering | Sequence[int] | np.ndarray], p: float = 0.5
    ) -> "CorrelationInstance":
        """Build the aggregation instance of ``m`` clusterings."""
        return cls.from_label_matrix(as_label_matrix(clusterings), p=p)

    @classmethod
    def from_distances(cls, distances: np.ndarray) -> "CorrelationInstance":
        """Wrap a precomputed symmetric distance matrix (validated)."""
        return cls(np.asarray(distances, dtype=np.float64))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def X(self) -> np.ndarray:
        """The pairwise distance matrix (do not mutate).

        Only available on dense-backed instances; lazy instances raise
        ``RuntimeError`` — use :attr:`backend` (blocked access) or
        ``backend.materialize()`` instead.
        """
        return self._backend.dense()

    @property
    def backend(self) -> PairDistanceBackend:
        """The pair-distance backend serving this instance's ``X`` entries."""
        return self._backend

    @property
    def n(self) -> int:
        """Number of objects."""
        return self._backend.n

    @property
    def m(self) -> int | None:
        """Number of source clusterings, if the instance is an aggregation."""
        return self._m

    @property
    def weights(self) -> np.ndarray | None:
        """Per-object multiplicities for atom instances (``None`` = all 1)."""
        return self._weights

    def effective_weights(self) -> np.ndarray:
        """Multiplicities as an array (ones when unweighted; do not mutate).

        The unweighted ones-vector is cached on first use — BALLS and
        SAMPLING call this inside their hot loops.
        """
        if self._weights is not None:
            return self._weights
        if self._effective_weights is None:
            self._effective_weights = np.ones(self.n, dtype=np.float64)
        return self._effective_weights

    def subinstance(self, indices: Sequence[int] | np.ndarray) -> "CorrelationInstance":
        """The induced instance on a subset of the objects.

        Preserves the backend flavor: a lazy instance yields a lazy
        sub-instance over the sliced label matrix (bitwise equal to
        slicing the dense matrix).
        """
        idx = np.asarray(indices)
        weights = None if self._weights is None else self._weights[idx]
        return CorrelationInstance(
            m=self._m, weights=weights, backend=self._backend.take(idx)
        )

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------

    def cost(self, clustering: Clustering | np.ndarray) -> float:
        """The correlation-clustering cost ``d(C)`` of a candidate clustering.

        Evaluated without materializing the pair masks:

            d(C) = T - S_all + 2 * S_within - P_within

        with ``T`` the pair count, ``S_all`` the sum of all distances,
        ``S_within`` the within-cluster distance sum and ``P_within`` the
        within-cluster pair count.  On weighted (atom) instances every
        pair ``(u, v)`` counts ``w_u * w_v`` times and intra-atom pairs
        contribute zero, making the value equal to the cost of the same
        clustering on the expanded (duplicate-bearing) instance.
        """
        if isinstance(clustering, Clustering):
            labels = clustering.labels
        else:
            labels = np.asarray(clustering)
        if labels.shape != (self.n,):
            raise ValueError("clustering size must match the instance size")
        return self._backend.cost(labels, self._weights)

    def disagreements(self, clustering: Clustering | np.ndarray) -> float:
        """The aggregation objective ``D(C) = m * d(C)`` (requires known ``m``)."""
        if self._m is None:
            raise ValueError("instance was not built from clusterings; m is unknown")
        return self._m * self.cost(clustering)

    def lower_bound(self) -> float:
        """Pairwise lower bound ``sum_{u<v} min(X_uv, 1 - X_uv)`` on ``d(C)``.

        Every clustering pays at least ``min(X, 1-X)`` per pair, so this
        bounds the optimum from below (the paper's "Lower bound" table
        rows, after multiplying by ``m`` via :meth:`disagreement_lower_bound`).
        Accumulated in row blocks through the backend — no full-matrix
        temporary.
        """
        return self._backend.lower_bound(self._weights)

    def disagreement_lower_bound(self) -> float:
        """Lower bound on ``D(C)`` for aggregation instances (``m * lower_bound``)."""
        if self._m is None:
            raise ValueError("instance was not built from clusterings; m is unknown")
        return self._m * self.lower_bound()

    def max_triangle_violation(self) -> float:
        """Largest ``X_uw - X_uv - X_vw`` over all triples (<= 0 means metric).

        Exhaustive over triples; intended for tests and small instances.
        """
        X = self._backend.materialize(np.float64)
        worst = -np.inf
        for v in range(self.n):
            # violation for (u, w) through v: X[u, w] - X[u, v] - X[v, w]
            through_v = X - X[:, v][:, None] - X[v, :][None, :]
            np.fill_diagonal(through_v, -np.inf)
            through_v[v, :] = -np.inf
            through_v[:, v] = -np.inf
            worst = max(worst, float(through_v.max()))
        return worst

    def __repr__(self) -> str:
        origin = f", m={self._m}" if self._m is not None else ""
        return f"CorrelationInstance(n={self.n}{origin})"
