"""Command-line interface: ``python -m repro`` / ``repro-aggregate``.

Subcommands
-----------
``aggregate``
    Cluster a categorical CSV (every column an input clustering) with any
    of the paper's algorithms and print the consensus summary — plus the
    per-cluster breakdown against a class column when one is present.
``generate``
    Write one of the built-in datasets (votes, mushrooms, census) to CSV.
``methods``
    List the available aggregation algorithms.

Examples
--------
::

    repro-aggregate generate votes /tmp/votes.csv
    repro-aggregate aggregate /tmp/votes.csv --method agglomerative
    repro-aggregate aggregate /tmp/votes.csv --method balls --alpha 0.4
    repro-aggregate aggregate big.csv --method sampling --inner furthest --sample-size 1000
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from .core.aggregate import aggregate, available_methods
from .datasets import (
    CategoricalDataset,
    generate_census,
    generate_movies,
    generate_mushrooms,
    generate_votes,
)
from .metrics import classification_error, cluster_size_summary, confusion_matrix

_GENERATORS = {
    "votes": generate_votes,
    "mushrooms": generate_mushrooms,
    "census": generate_census,
    "movies": generate_movies,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-aggregate",
        description="Clustering aggregation (Gionis, Mannila, Tsaparas, ICDE 2005)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("aggregate", help="aggregate a categorical CSV")
    run.add_argument("csv", help="input CSV with a header row; '?' marks missing values")
    run.add_argument("--method", default="agglomerative", choices=available_methods())
    run.add_argument("--class-column", default="class", help="evaluation column name")
    run.add_argument("--no-class", action="store_true", help="treat every column as data")
    run.add_argument("--alpha", type=float, default=None, help="BALLS acceptance threshold")
    run.add_argument("--inner", default="agglomerative", help="SAMPLING inner algorithm")
    run.add_argument("--sample-size", type=int, default=None, help="SAMPLING sample size")
    run.add_argument("--seed", type=int, default=0, help="random seed (sampling)")
    run.add_argument("--p", type=float, default=0.5, help="missing-value coin-flip probability")
    run.add_argument(
        "--collapse",
        action="store_true",
        help="collapse duplicate rows into weighted atoms before clustering",
    )
    run.add_argument("--out", default=None, help="write consensus labels to this file")

    gen = subparsers.add_parser("generate", help="write a built-in dataset to CSV")
    gen.add_argument("dataset", choices=sorted(_GENERATORS))
    gen.add_argument("path", help="output CSV path")
    gen.add_argument("--rows", type=int, default=None, help="override the dataset size")
    gen.add_argument("--seed", type=int, default=0)

    subparsers.add_parser("methods", help="list available aggregation algorithms")
    return parser


def _command_aggregate(args: argparse.Namespace) -> int:
    class_column = None if args.no_class else args.class_column
    dataset = CategoricalDataset.from_csv(args.csv, class_column=class_column)
    params: dict = {}
    if args.method == "balls" and args.alpha is not None:
        params["alpha"] = args.alpha
    if args.method == "sampling":
        params["inner"] = args.inner
        params["rng"] = args.seed
        if args.sample_size is not None:
            params["sample_size"] = args.sample_size
    compute_lb = args.method not in ("sampling", "best")
    result = aggregate(
        dataset.label_matrix(),
        method=args.method,
        p=args.p,
        compute_lower_bound=compute_lb,
        collapse=args.collapse,
        **params,
    )

    print(f"dataset          {dataset.name}: {dataset.n} rows x {dataset.m} attributes, "
          f"{dataset.missing_count()} missing")
    print(f"method           {result.method}")
    print(f"clusters         {result.k}")
    sizes = cluster_size_summary(result.clustering)
    print(f"cluster sizes    largest={sizes['largest']} smallest={sizes['smallest']} "
          f"singletons={sizes['singletons']}")
    print(f"disagreements    D(C) = {result.disagreements:,.1f} "
          f"(d(C) = {result.cost:,.1f} per input clustering)")
    if result.disagreement_lower_bound is not None:
        print(f"lower bound      {result.disagreement_lower_bound:,.1f}")
    if dataset.classes is not None:
        error = classification_error(result.clustering, dataset.classes)
        print(f"class error      E_C = {error * 100:.1f}%")
        table = confusion_matrix(result.clustering, dataset.classes)
        names = dataset.class_names or [str(i) for i in range(table.shape[0])]
        shown = min(table.shape[1], 12)
        print("confusion (rows = classes, columns = largest clusters):")
        order = np.argsort(-table.sum(axis=0))[:shown]
        for class_index, name in enumerate(names):
            cells = " ".join(f"{table[class_index, c]:6d}" for c in order)
            print(f"  {name:>12s} {cells}")
    print(f"time             {result.elapsed_seconds:.3f}s "
          f"(+{result.build_seconds:.3f}s building the instance)")

    if args.out:
        np.savetxt(args.out, result.clustering.labels, fmt="%d")
        print(f"labels written   {args.out}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    generator = _GENERATORS[args.dataset]
    dataset = generator(n=args.rows, rng=args.seed)
    dataset.to_csv(args.path)
    print(f"wrote {dataset.n} rows x {dataset.m} attributes to {args.path}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "aggregate":
        return _command_aggregate(args)
    if args.command == "generate":
        return _command_generate(args)
    if args.command == "methods":
        for name in available_methods():
            print(name)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
