"""Command-line interface: ``python -m repro`` / ``repro-aggregate``.

Subcommands
-----------
``aggregate``
    Cluster a categorical CSV (every column an input clustering) with any
    of the paper's algorithms and print the consensus summary — plus the
    per-cluster breakdown against a class column when one is present.
``portfolio``
    Run several algorithms concurrently against one shared instance
    (:mod:`repro.parallel`) and report the argmin-cost consensus plus a
    per-algorithm cost/time table.  ``--jobs`` (or the ``REPRO_JOBS``
    environment variable) sets the worker count.
``shard``
    Divide-and-merge aggregation (:mod:`repro.shard`): partition the
    rows into shards, aggregate each shard in a forked worker, then
    merge the shard consensus clusterings by re-aggregating a small
    weighted-atom instance (exactly when the atom count permits).
``stream``
    Replay the CSV's attribute columns one at a time through the
    streaming engine (:mod:`repro.stream`), printing per-update cost,
    cluster count, moves, and wall-time; optionally checkpoint the final
    engine state to ``.npz`` or resume from one.
``serve``
    Run the HTTP aggregation service (:mod:`repro.serve`): named
    streaming sessions with micro-batched writes, non-blocking consensus
    reads, checkpoint persistence, and one-shot ``/aggregate`` — until
    SIGINT/SIGTERM, then drain and checkpoint.  ``--json`` prints a
    machine-readable startup banner with the actually bound port.
``generate``
    Write one of the built-in datasets (votes, mushrooms, census) to CSV.
``pipeline``
    Run (or just validate) a declarative TOML pipeline config
    (:mod:`repro.pipeline`): dataset → base clusterings → aggregation →
    metrics, with ``--json``/``--out`` reports and ``--trace`` spans.
``methods``
    List the available aggregation algorithms.  ``--role`` switches to
    the consensus baselines or base clusterers; ``--verbose`` adds each
    method's parameter documentation, straight from the registry.

``--json`` (on ``aggregate`` and ``stream``) switches the report to a
single machine-readable JSON object for service integration.

``--trace`` (on ``aggregate``, ``portfolio`` and ``stream``) prints an
indented span tree of the run from :mod:`repro.obs` — on stderr when
combined with ``--json`` so stdout stays machine-readable.
``--metrics-out PATH`` enables the metrics registry for the run and
writes its snapshot JSON to ``PATH``.

Examples
--------
::

    repro-aggregate generate votes /tmp/votes.csv
    repro-aggregate aggregate /tmp/votes.csv --method agglomerative
    repro-aggregate aggregate /tmp/votes.csv --method balls --alpha 0.4
    repro-aggregate aggregate big.csv --method sampling --inner furthest --sample-size 1000
    repro-aggregate portfolio /tmp/votes.csv --jobs 4 --seed 7
    repro-aggregate portfolio /tmp/votes.csv --trace --metrics-out /tmp/metrics.json
    repro-aggregate shard big.csv --shards 4 --jobs 4 --seed 7 --json
    repro-aggregate stream /tmp/votes.csv --decay 0.99 --checkpoint /tmp/engine.npz
    repro-aggregate aggregate /tmp/votes.csv --method local-search --seed 7 --json
    repro-aggregate pipeline run examples/fig3_robustness.toml --trace
    repro-aggregate methods --role clusterer --verbose
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable, Sequence

import numpy as np

from .core.aggregate import STOCHASTIC_METHODS, aggregate, available_methods
from .core.distance import total_disagreement
from .parallel.portfolio import DEFAULT_PORTFOLIO, portfolio
from .shard import (
    DEFAULT_MAX_EXACT_ATOMS,
    MERGE_METHODS,
    PARTITION_MODES,
    shard_aggregate,
)
from .datasets import (
    CategoricalDataset,
    generate_census,
    generate_movies,
    generate_mushrooms,
    generate_votes,
)
from .metrics import classification_error, cluster_size_summary, confusion_matrix
from .obs import disable_metrics, enable_metrics, get_registry, tracing

_GENERATORS = {
    "votes": generate_votes,
    "mushrooms": generate_mushrooms,
    "census": generate_census,
    "movies": generate_movies,
}


def _add_observability_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--trace",
        action="store_true",
        help="print an indented span tree of the run (stderr when --json)",
    )
    sub.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="collect repro.obs metrics and write the snapshot JSON to PATH",
    )


def _run_observed(args: argparse.Namespace, body: Callable[[argparse.Namespace], int]) -> int:
    """Run a subcommand body under the requested observability surfaces.

    ``--trace`` wraps the body in :func:`repro.obs.tracing` and prints the
    rendered span tree — to stdout normally, to stderr under ``--json`` so
    the machine-readable object stays alone on stdout.  ``--metrics-out``
    enables the process-wide registry for the duration of the body and
    writes its snapshot JSON to the given path.
    """
    want_trace = bool(getattr(args, "trace", False))
    metrics_out = getattr(args, "metrics_out", None)
    if not want_trace and not metrics_out:
        return body(args)
    if metrics_out:
        enable_metrics()
        get_registry().reset()
    try:
        if want_trace:
            with tracing() as trace:
                code = body(args)
            out = sys.stderr if getattr(args, "json", False) else sys.stdout
            print(file=out)
            print(trace.render(), file=out)
        else:
            code = body(args)
        if metrics_out:
            with open(metrics_out, "w", encoding="utf-8") as handle:
                handle.write(get_registry().to_json())
                handle.write("\n")
            report = sys.stderr if getattr(args, "json", False) else sys.stdout
            print(f"metrics written  {metrics_out}", file=report)
    finally:
        if metrics_out:
            disable_metrics()
    return code


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-aggregate",
        description="Clustering aggregation (Gionis, Mannila, Tsaparas, ICDE 2005)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("aggregate", help="aggregate a categorical CSV")
    run.add_argument("csv", help="input CSV with a header row; '?' marks missing values")
    run.add_argument("--method", default="agglomerative", choices=available_methods())
    run.add_argument("--class-column", default="class", help="evaluation column name")
    run.add_argument("--no-class", action="store_true", help="treat every column as data")
    run.add_argument("--alpha", type=float, default=None, help="BALLS acceptance threshold")
    run.add_argument(
        "--threshold", type=float, default=None, help="PIVOT join radius (default 0.5)"
    )
    run.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="PIVOT/CMSY: keep the cheapest of this many sweeps (default 1)",
    )
    run.add_argument("--inner", default="agglomerative", help="SAMPLING inner algorithm")
    run.add_argument("--sample-size", type=int, default=None, help="SAMPLING sample size")
    run.add_argument(
        "--seed",
        type=int,
        default=0,
        help="random seed, forwarded to every stochastic method "
        f"({', '.join(STOCHASTIC_METHODS)})",
    )
    run.add_argument("--p", type=float, default=0.5, help="missing-value coin-flip probability")
    run.add_argument(
        "--collapse",
        action="store_true",
        help="collapse duplicate rows into weighted atoms before clustering",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the parallel backend "
        "(default: REPRO_JOBS or serial; 0 = all cores)",
    )
    run.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "dense", "lazy"),
        help="pair-distance storage: dense materializes X, lazy computes row "
        "blocks from the labels (O(n*m) memory); auto flips to lazy above "
        "REPRO_LAZY_THRESHOLD rows (default 10000)",
    )
    run.add_argument("--json", action="store_true", help="emit a machine-readable JSON report")
    run.add_argument("--out", default=None, help="write consensus labels to this file")
    _add_observability_arguments(run)

    port = subparsers.add_parser(
        "portfolio", help="run several algorithms concurrently, keep the best"
    )
    port.add_argument("csv", help="input CSV with a header row; '?' marks missing values")
    port.add_argument(
        "--methods",
        default=",".join(DEFAULT_PORTFOLIO),
        help="comma-separated algorithm names to race (instance methods only)",
    )
    port.add_argument("--class-column", default="class", help="evaluation column name")
    port.add_argument("--no-class", action="store_true", help="treat every column as data")
    port.add_argument("--p", type=float, default=0.5, help="missing-value coin-flip probability")
    port.add_argument("--seed", type=int, default=0, help="root seed for stochastic members")
    port.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or serial; 0 = all cores)",
    )
    port.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "dense", "lazy"),
        help="pair-distance storage (lazy shares only the label matrix with "
        "workers; auto flips to lazy above REPRO_LAZY_THRESHOLD rows)",
    )
    port.add_argument("--json", action="store_true", help="emit a machine-readable JSON report")
    port.add_argument("--out", default=None, help="write consensus labels to this file")
    _add_observability_arguments(port)

    shard = subparsers.add_parser(
        "shard", help="divide-and-merge aggregation over object shards"
    )
    shard.add_argument("csv", help="input CSV with a header row; '?' marks missing values")
    shard.add_argument("--shards", type=int, default=4, help="number of shards")
    shard.add_argument(
        "--partition",
        default="contiguous",
        choices=PARTITION_MODES,
        help="shard assignment: row order pieces, or a seeded permutation",
    )
    shard.add_argument(
        "--shard-method",
        default="sampling",
        help="per-shard aggregation algorithm (sampling or any instance method)",
    )
    shard.add_argument("--inner", default="agglomerative", help="SAMPLING inner algorithm")
    shard.add_argument(
        "--sample-size", type=int, default=None, help="per-shard SAMPLING sample size"
    )
    shard.add_argument(
        "--merge",
        default="auto",
        choices=MERGE_METHODS,
        help="atom re-aggregation strategy (auto = exact when small)",
    )
    shard.add_argument(
        "--max-exact-atoms",
        type=int,
        default=DEFAULT_MAX_EXACT_ATOMS,
        help="merge=auto switches from exact to local-search above this many atoms",
    )
    shard.add_argument("--class-column", default="class", help="evaluation column name")
    shard.add_argument("--no-class", action="store_true", help="treat every column as data")
    shard.add_argument("--p", type=float, default=0.5, help="missing-value coin-flip probability")
    shard.add_argument("--seed", type=int, default=0, help="root seed (partition + shard solves)")
    shard.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard worker processes (default: REPRO_JOBS or serial; 0 = all cores)",
    )
    shard.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "dense", "lazy"),
        help="pair-distance storage for instance-consuming shard methods",
    )
    shard.add_argument("--json", action="store_true", help="emit a machine-readable JSON report")
    shard.add_argument("--out", default=None, help="write consensus labels to this file")
    _add_observability_arguments(shard)

    stream = subparsers.add_parser(
        "stream", help="replay a CSV column-by-column through the streaming engine"
    )
    stream.add_argument("csv", help="input CSV with a header row; '?' marks missing values")
    stream.add_argument("--class-column", default="class", help="evaluation column name")
    stream.add_argument("--no-class", action="store_true", help="treat every column as data")
    stream.add_argument("--p", type=float, default=0.5, help="missing-value coin-flip probability")
    stream.add_argument(
        "--decay",
        type=float,
        default=1.0,
        help="exponential decay per update in (0, 1]; 1.0 = exact batch semantics",
    )
    stream.add_argument(
        "--sampling-threshold",
        type=int,
        default=5000,
        help="above this many rows, refine with SAMPLING instead of full LOCALSEARCH",
    )
    stream.add_argument("--sample-size", type=int, default=None, help="SAMPLING sample size")
    stream.add_argument("--seed", type=int, default=0, help="random seed for the engine")
    stream.add_argument(
        "--checkpoint", default=None, help="write the final engine state to this .npz file"
    )
    stream.add_argument(
        "--resume", default=None, help="resume from an engine checkpoint (.npz) before replaying"
    )
    stream.add_argument("--json", action="store_true", help="emit a machine-readable JSON report")
    stream.add_argument("--out", default=None, help="write consensus labels to this file")
    _add_observability_arguments(stream)

    serve = subparsers.add_parser(
        "serve", help="run the HTTP aggregation service (repro.serve)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765, help="bind port (0 picks a free one)")
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        help="persist each session to <dir>/<name>.npz (restored on re-create)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=64, help="concurrent named sessions (503 beyond)"
    )
    serve.add_argument(
        "--max-n", type=int, default=100_000, help="largest accepted object count (413 beyond)"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="pending observes per session before 429 backpressure",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="micro-batch coalescing window in seconds (0 disables the wait)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="repro.parallel worker budget for /aggregate (default: REPRO_JOBS)",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="machine-readable startup banner and shutdown summary on stdout",
    )

    gen = subparsers.add_parser("generate", help="write a built-in dataset to CSV")
    gen.add_argument("dataset", choices=sorted(_GENERATORS))
    gen.add_argument("path", help="output CSV path")
    gen.add_argument("--rows", type=int, default=None, help="override the dataset size")
    gen.add_argument("--seed", type=int, default=0)

    pipe = subparsers.add_parser(
        "pipeline", help="run or validate a declarative TOML pipeline config"
    )
    pipe_sub = pipe.add_subparsers(dest="pipeline_command", required=True)
    pipe_run = pipe_sub.add_parser(
        "run", help="execute a pipeline config end-to-end and print its report"
    )
    pipe_run.add_argument("config", help="path to the TOML pipeline config")
    pipe_run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for the aggregation stage (default: REPRO_JOBS)",
    )
    pipe_run.add_argument(
        "--json", action="store_true", help="print the full report as one JSON object"
    )
    pipe_run.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH",
    )
    _add_observability_arguments(pipe_run)
    pipe_validate = pipe_sub.add_parser(
        "validate", help="check a pipeline config without running it"
    )
    pipe_validate.add_argument("config", help="path to the TOML pipeline config")

    methods = subparsers.add_parser(
        "methods", help="list available aggregation algorithms"
    )
    methods.add_argument(
        "--role",
        choices=("aggregate", "baseline", "clusterer"),
        default="aggregate",
        help="which registry role to list (default: aggregation algorithms)",
    )
    methods.add_argument(
        "--verbose",
        action="store_true",
        help="include each method's parameters and documentation",
    )
    return parser


def _command_aggregate(args: argparse.Namespace) -> int:
    class_column = None if args.no_class else args.class_column
    dataset = CategoricalDataset.from_csv(args.csv, class_column=class_column)
    params: dict = {}
    if args.method == "balls" and args.alpha is not None:
        params["alpha"] = args.alpha
    if args.method == "pivot" and args.threshold is not None:
        params["threshold"] = args.threshold
    if args.method in ("pivot", "cmsy") and args.repeats is not None:
        params["repeats"] = args.repeats
    if args.method == "sampling":
        params["inner"] = args.inner
        if args.sample_size is not None:
            params["sample_size"] = args.sample_size
    if args.method in STOCHASTIC_METHODS:
        params["rng"] = args.seed
    # Methods that never materialize pair distances have no (cheap) lower
    # bound to report — pivot/cmsy run straight off the label matrix.
    compute_lb = args.method not in ("sampling", "best", "cmsy", "pivot", "sharded", "streaming")
    result = aggregate(
        dataset.label_matrix(),
        method=args.method,
        p=args.p,
        compute_lower_bound=compute_lb,
        collapse=args.collapse,
        n_jobs=args.jobs,
        backend=args.backend,
        **params,
    )

    if args.json:
        report = {
            "dataset": {
                "name": dataset.name,
                "rows": dataset.n,
                "attributes": dataset.m,
                "missing": dataset.missing_count(),
            },
            "method": result.method,
            "seed": args.seed if args.method in STOCHASTIC_METHODS else None,
            "k": result.k,
            "cluster_sizes": {
                key: int(value) for key, value in cluster_size_summary(result.clustering).items()
            },
            "disagreements": result.disagreements,
            "cost": result.cost,
            "lower_bound": result.disagreement_lower_bound,
            "class_error": (
                None
                if dataset.classes is None
                else classification_error(result.clustering, dataset.classes)
            ),
            "elapsed_seconds": result.elapsed_seconds,
            "build_seconds": result.build_seconds,
        }
        print(json.dumps(report))
        if args.out:
            np.savetxt(args.out, result.clustering.labels, fmt="%d")
        return 0

    print(f"dataset          {dataset.name}: {dataset.n} rows x {dataset.m} attributes, "
          f"{dataset.missing_count()} missing")
    print(f"method           {result.method}")
    print(f"clusters         {result.k}")
    sizes = cluster_size_summary(result.clustering)
    print(f"cluster sizes    largest={sizes['largest']} smallest={sizes['smallest']} "
          f"singletons={sizes['singletons']}")
    print(f"disagreements    D(C) = {result.disagreements:,.1f} "
          f"(d(C) = {result.cost:,.1f} per input clustering)")
    if result.disagreement_lower_bound is not None:
        print(f"lower bound      {result.disagreement_lower_bound:,.1f}")
    if dataset.classes is not None:
        error = classification_error(result.clustering, dataset.classes)
        print(f"class error      E_C = {error * 100:.1f}%")
        table = confusion_matrix(result.clustering, dataset.classes)
        names = dataset.class_names or [str(i) for i in range(table.shape[0])]
        shown = min(table.shape[1], 12)
        print("confusion (rows = classes, columns = largest clusters):")
        order = np.argsort(-table.sum(axis=0))[:shown]
        for class_index, name in enumerate(names):
            cells = " ".join(f"{table[class_index, c]:6d}" for c in order)
            print(f"  {name:>12s} {cells}")
    print(f"time             {result.elapsed_seconds:.3f}s "
          f"(+{result.build_seconds:.3f}s building the instance)")

    if args.out:
        np.savetxt(args.out, result.clustering.labels, fmt="%d")
        print(f"labels written   {args.out}")
    return 0


def _command_portfolio(args: argparse.Namespace) -> int:
    class_column = None if args.no_class else args.class_column
    dataset = CategoricalDataset.from_csv(args.csv, class_column=class_column)
    methods = tuple(name.strip() for name in args.methods.split(",") if name.strip())
    result = portfolio(
        dataset.label_matrix(),
        methods=methods,
        p=args.p,
        n_jobs=args.jobs,
        rng=args.seed,
        backend=args.backend,
    )
    class_error = (
        None if dataset.classes is None else classification_error(result.best, dataset.classes)
    )

    if args.json:
        report = {
            "dataset": {
                "name": dataset.name,
                "rows": dataset.n,
                "attributes": dataset.m,
                "missing": dataset.missing_count(),
            },
            "seed": args.seed,
            "class_error": class_error,
            **result.to_dict(),
        }
        print(json.dumps(report))
    else:
        print(f"dataset          {dataset.name}: {dataset.n} rows x {dataset.m} attributes, "
              f"{dataset.missing_count()} missing")
        print(f"jobs             {result.jobs}")
        print("method           d(C)          k      time")
        for run in result.runs:
            marker = " *" if run.method == result.best_method else ""
            print(f"{run.method:<16s} {run.cost:12,.2f}  {run.k:5d}  "
                  f"{run.elapsed_seconds:.3f}s{marker}")
        print(f"winner           {result.best_method}  (k={result.best.k}, "
              f"total {result.elapsed_seconds:.3f}s)")
        if class_error is not None:
            print(f"class error      E_C = {class_error * 100:.1f}%")

    if args.out:
        np.savetxt(args.out, result.best.labels, fmt="%d")
        if not args.json:
            print(f"labels written   {args.out}")
    return 0


def _command_shard(args: argparse.Namespace) -> int:
    class_column = None if args.no_class else args.class_column
    dataset = CategoricalDataset.from_csv(args.csv, class_column=class_column)
    matrix = dataset.label_matrix()
    params: dict = {}
    if args.sample_size is not None:
        params["sample_size"] = args.sample_size
    result = shard_aggregate(
        matrix,
        n_shards=args.shards,
        partition=args.partition,
        shard_method=args.shard_method,
        inner=args.inner,
        merge=args.merge,
        max_exact_atoms=args.max_exact_atoms,
        p=args.p,
        rng=args.seed,
        n_jobs=args.jobs,
        backend=args.backend,
        **params,
    )
    disagreements = total_disagreement(matrix, result.clustering, p=args.p)
    class_error = (
        None
        if dataset.classes is None
        else classification_error(result.clustering, dataset.classes)
    )

    if args.json:
        report = {
            "dataset": {
                "name": dataset.name,
                "rows": dataset.n,
                "attributes": dataset.m,
                "missing": dataset.missing_count(),
            },
            "seed": args.seed,
            "disagreements": disagreements,
            "cost": disagreements / dataset.m,
            "class_error": class_error,
            **result.to_dict(),
        }
        print(json.dumps(report))
    else:
        print(f"dataset          {dataset.name}: {dataset.n} rows x {dataset.m} attributes, "
              f"{dataset.missing_count()} missing")
        print(f"shards           {len(result.shards)} ({args.partition})  jobs={result.jobs}")
        print("shard    rows      d(C)       k      time")
        for run in result.shards:
            print(f"{run.index:5d} {run.size:7d} {run.cost:10,.2f} {run.k:6d}  "
                  f"{run.elapsed_seconds:.3f}s")
        print(f"merge            {result.merge_method} over {result.n_atoms} atoms "
              f"-> k={result.clustering.k}")
        print(f"disagreements    D(C) = {disagreements:,.1f} "
              f"(d(C) = {disagreements / dataset.m:,.1f} per input clustering)")
        if class_error is not None:
            print(f"class error      E_C = {class_error * 100:.1f}%")
        print(f"time             {result.elapsed_seconds:.3f}s")

    if args.out:
        np.savetxt(args.out, result.clustering.labels, fmt="%d")
        if not args.json:
            print(f"labels written   {args.out}")
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    from .stream import StreamingAggregator, load_checkpoint, save_checkpoint

    class_column = None if args.no_class else args.class_column
    dataset = CategoricalDataset.from_csv(args.csv, class_column=class_column)
    matrix = dataset.label_matrix()
    if args.resume:
        try:
            engine = load_checkpoint(args.resume, n=matrix.shape[0])
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        engine = StreamingAggregator(
            matrix.shape[0],
            p=args.p,
            decay=args.decay,
            sampling_threshold=args.sampling_threshold,
            sample_size=args.sample_size,
            rng=args.seed,
        )

    if not args.json:
        print(f"dataset          {dataset.name}: {dataset.n} rows x {dataset.m} attributes, "
              f"{dataset.missing_count()} missing")
        if args.resume:
            print(f"resumed          {args.resume} ({engine.count} updates already applied)")
        print("update  D(C)          k      moves  sweeps  time")
    updates = []
    for j in range(matrix.shape[1]):
        update = engine.observe(matrix[:, j])
        updates.append(update)
        if not args.json:
            seconds = update.observe_seconds + update.refine_seconds
            mode = "  (sampling)" if update.used_sampling else ""
            print(f"{update.index:6d}  {update.disagreements:12,.1f}  {update.k:5d}  "
                  f"{update.moves:5d}  {update.sweeps:6d}  {seconds:.3f}s{mode}")

    stats = engine.stats()
    class_error = (
        None
        if dataset.classes is None
        else classification_error(engine.consensus, dataset.classes)
    )
    if args.json:
        report = {
            "dataset": {
                "name": dataset.name,
                "rows": dataset.n,
                "attributes": dataset.m,
                "missing": dataset.missing_count(),
            },
            "seed": args.seed,
            "decay": args.decay,
            "resumed_from": args.resume,
            "updates": [
                {
                    "index": update.index,
                    "disagreements": update.disagreements,
                    "cost": update.cost,
                    "k": update.k,
                    "moves": update.moves,
                    "sweeps": update.sweeps,
                    "used_sampling": update.used_sampling,
                    "observe_seconds": update.observe_seconds,
                    "refine_seconds": update.refine_seconds,
                }
                for update in updates
            ],
            "k": engine.consensus.k,
            "disagreements": engine.disagreements(),
            "cost": engine.cost(),
            "class_error": class_error,
            "total_moves": stats.total_moves,
        }
        print(json.dumps(report))
    else:
        print(f"consensus        k={engine.consensus.k}  D(C) = {engine.disagreements():,.1f}")
        if class_error is not None:
            print(f"class error      E_C = {class_error * 100:.1f}%")
        print(f"engine           {stats.summary()}")

    if args.checkpoint:
        save_checkpoint(engine, args.checkpoint)
        if not args.json:
            print(f"checkpoint       {args.checkpoint}")
    if args.out:
        np.savetxt(args.out, engine.consensus.labels, fmt="%d")
        if not args.json:
            print(f"labels written   {args.out}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        checkpoint_dir=args.checkpoint_dir,
        max_sessions=args.max_sessions,
        max_n=args.max_n,
        queue_limit=args.queue_limit,
        batch_window=args.batch_window,
        n_jobs=args.jobs,
    )

    def banner(service: object) -> None:
        port = service.port  # type: ignore[attr-defined]
        if args.json:
            # flush so scripted callers (and the SIGTERM test) can read the
            # bound port before sending any request
            print(
                json.dumps(
                    {
                        "event": "serve.start",
                        "host": args.host,
                        "port": port,
                        "checkpoint_dir": args.checkpoint_dir,
                        "max_sessions": args.max_sessions,
                    }
                ),
                flush=True,
            )
        else:
            print(f"serving          http://{args.host}:{port}/", flush=True)
            if args.checkpoint_dir:
                print(f"checkpoints      {args.checkpoint_dir}", flush=True)

    summary = run_server(config, ready=banner)
    if args.json:
        print(json.dumps({"event": "serve.stop", **summary}), flush=True)
    else:
        print(
            f"stopped          drained {summary['sessions']} session(s), "
            f"wrote {len(summary['checkpoints'])} checkpoint(s)"
        )
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    generator = _GENERATORS[args.dataset]
    dataset = generator(n=args.rows, rng=args.seed)
    dataset.to_csv(args.path)
    print(f"wrote {dataset.n} rows x {dataset.m} attributes to {args.path}")
    return 0


def _command_pipeline(args: argparse.Namespace) -> int:
    from .pipeline import PipelineConfigError, PipelineError, load_config, run_pipeline

    try:
        config = load_config(args.config)
    except PipelineConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.pipeline_command == "validate":
        jobs = sum(len(stage.expand()) for stage in config.bases)
        print(
            f"ok               {config.source_path or args.config}\n"
            f"pipeline         {config.name}\n"
            f"dataset          {config.dataset.source}\n"
            f"base jobs        {jobs}\n"
            f"method           {config.aggregate.method}\n"
            f"metrics          {', '.join(config.metrics)}"
        )
        return 0

    try:
        result = run_pipeline(config, n_jobs=args.jobs)
    except PipelineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = result.to_dict()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(report))
    else:
        print(result.render())
        if args.out:
            print(f"report written   {args.out}")
    return 0


def _command_methods(args: argparse.Namespace) -> int:
    from .registry import all_specs

    for spec in all_specs(role=args.role):
        if args.verbose:
            print(spec.describe())
            print()
        else:
            print(spec.name)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "aggregate":
        return _run_observed(args, _command_aggregate)
    if args.command == "portfolio":
        return _run_observed(args, _command_portfolio)
    if args.command == "shard":
        return _run_observed(args, _command_shard)
    if args.command == "stream":
        return _run_observed(args, _command_stream)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "generate":
        return _command_generate(args)
    if args.command == "pipeline":
        if args.pipeline_command == "run":
            return _run_observed(args, _command_pipeline)
        return _command_pipeline(args)
    if args.command == "methods":
        return _command_methods(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
