"""Unified method registry — the single dispatch seam of the library.

Every named algorithm the repository exposes — the paper's aggregation
methods, the related-work consensus baselines, and the base clusterers
that feed them — is described by one :class:`MethodSpec` here.  The
layers that previously kept their own hand-rolled method tables
(``aggregate()``, the parallel portfolio, the shard engine's merge
selection, the serve schema validation, the CLI) all resolve names and
validate parameters through this package instead; repolint rule RPR014
keeps it that way.

The package imports nothing from the rest of :mod:`repro` at import time
(see :mod:`repro.registry.store`), so it is safe to import from anywhere.
"""

from .spec import REQUIRED, BaseClusterer, MethodSpec, ParamSpec, SolveContext
from .store import (
    aggregate_method_names,
    all_specs,
    baseline_method_names,
    clusterer_names,
    get_clusterer,
    get_method,
    instance_method_names,
    is_stochastic,
    method_names,
    register_clusterer,
    register_method,
    resolve_instance_method,
    stochastic_method_names,
    validate_params,
)

__all__ = [
    "REQUIRED",
    "BaseClusterer",
    "MethodSpec",
    "ParamSpec",
    "SolveContext",
    "aggregate_method_names",
    "all_specs",
    "baseline_method_names",
    "clusterer_names",
    "get_clusterer",
    "get_method",
    "instance_method_names",
    "is_stochastic",
    "method_names",
    "register_clusterer",
    "register_method",
    "resolve_instance_method",
    "stochastic_method_names",
    "validate_params",
]
