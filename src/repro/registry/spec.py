"""Method and parameter specifications — the registry's data model.

A :class:`MethodSpec` is the single source of truth about one named
algorithm: how :func:`repro.core.aggregate.aggregate` must run it (its
*kind*), which keyword parameters it accepts (derived from the function
signature, documented from its numpydoc ``Parameters`` section), whether
it consumes a seed, and what capabilities it offers (weighted atoms,
missing labels, duplicate collapsing).  Every layer that used to keep its
own method table — ``aggregate()``, the portfolio, the shard merge, the
serve schema validation, the CLI — now reads these specs instead.

Three roles share the one registry:

``aggregate``
    Consensus methods runnable through ``aggregate(inputs, method=...)``.
    Kinds: ``"instance"`` (consume a :class:`CorrelationInstance`),
    ``"label-fast"`` (prefer the raw ``(n, m)`` label matrix — no
    quadratic structure is ever built), and ``"matrix"`` (own their whole
    solve via a registered ``solver`` adapter).
``baseline``
    Related-work consensus methods (§6: CSPA, MCLA, evidence
    accumulation, the mixture model) that need ``k`` or other guidance
    the paper's methods do not; they are not exposed through
    ``aggregate()`` (its public method set is frozen by the determinism
    contract) but are first-class in :mod:`repro.pipeline` configs.
``clusterer``
    Base clusterers behind the :class:`BaseClusterer` protocol (k-means,
    DBSCAN, the linkage family, LIMBO, ROCK); the pipeline's base stage
    resolves these.  For clusterers the ``kind`` field records the data
    they consume: ``"points"`` or ``"categorical"``.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    import numpy as np

    from ..core.atoms import AtomCollapse
    from ..core.instance import CorrelationInstance
    from ..core.partition import Clustering

__all__ = [
    "REQUIRED",
    "BaseClusterer",
    "MethodSpec",
    "ParamSpec",
    "SolveContext",
]


class _Required:
    """Sentinel default for parameters that must be supplied."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<required>"


#: Sentinel marking a parameter with no default (the caller must pass it).
REQUIRED = _Required()


class BaseClusterer(Protocol):
    """The calling convention every registered base clusterer satisfies.

    A base clusterer maps a data matrix — ``(n, d)`` float points or an
    ``(n, m)`` categorical/label matrix, per its spec's ``kind`` — to a
    flat integer label vector.  Stochastic clusterers take their
    randomness through the ``rng`` keyword (the repository-wide
    convention, RPR005); deterministic ones simply ignore it.
    """

    def __call__(
        self, data: "np.ndarray", *, rng: Any = None, **params: Any
    ) -> "np.ndarray": ...


@dataclass(frozen=True)
class ParamSpec:
    """One accepted keyword parameter of a registered method."""

    name: str
    annotation: str = ""
    default: Any = REQUIRED
    doc: str = ""

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def describe(self) -> str:
        """One-line rendering for CLI / error-message output."""
        head = f"{self.name}: {self.annotation}" if self.annotation else self.name
        if not self.required:
            head += f" = {self.default!r}"
        return head


@dataclass
class SolveContext:
    """Everything a ``matrix``-kind solver adapter may consume.

    Built by :func:`repro.core.aggregate.aggregate` once per call and
    handed to the method's registered ``solver``.  ``params`` is the
    (already validated) user parameter dict; solvers may write report
    entries back into it (e.g. ``params["shard"]``) — ``aggregate``
    copies it into ``AggregationResult.params`` afterwards.
    """

    matrix: "np.ndarray | None"
    instance: "CorrelationInstance | None"
    atoms: "AtomCollapse | None"
    p: float
    n_jobs: int | None
    backend: str
    params: dict[str, Any]

    def require_matrix(self, method: str) -> "np.ndarray":
        """The label matrix, or the method's canonical ValueError."""
        if self.matrix is None:
            raise ValueError(
                f"method {method!r} needs the input clusterings, not a raw instance"
            )
        return self.matrix


@dataclass(frozen=True)
class MethodSpec:
    """The registry's record for one named method (see module docstring)."""

    name: str
    role: str
    kind: str
    func: Callable[..., Any]
    stochastic: bool = False
    supports_weights: bool = False
    supports_missing: bool = True
    supports_collapse: bool = True
    needs_instance: bool = False
    accepts_extra: bool = False
    summary: str = ""
    params: tuple[ParamSpec, ...] = ()
    solver: Callable[[SolveContext], "Clustering"] | None = field(
        default=None, compare=False
    )

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.params)

    def param(self, name: str) -> ParamSpec:
        for spec in self.params:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Reject unknown keyword parameters with an actionable message.

        Methods registered with ``accepts_extra=True`` (they forward
        ``**params`` onward, e.g. ``"sharded"`` to its per-shard solver)
        skip the unknown-name check but still document their named
        parameters.
        """
        if not self.accepts_extra:
            unknown = sorted(set(params) - set(self.param_names))
            if unknown:
                accepted = ", ".join(self.param_names) or "(none)"
                raise ValueError(
                    f"unknown parameter(s) {', '.join(map(repr, unknown))} for "
                    f"method {self.name!r}; accepted: {accepted}"
                )

    def require_params(self, params: Mapping[str, Any]) -> None:
        """Reject calls missing a required parameter (pipeline validation)."""
        missing = [
            spec.name for spec in self.params if spec.required and spec.name not in params
        ]
        if missing:
            raise ValueError(
                f"method {self.name!r} requires parameter(s): {', '.join(missing)}"
            )

    def describe(self) -> str:
        """Multi-line help text (the CLI ``methods --verbose`` rendering)."""
        flags = [self.kind]
        if self.stochastic:
            flags.append("stochastic")
        if self.supports_weights:
            flags.append("weights")
        header = f"{self.name}  [{', '.join(flags)}]"
        lines = [header]
        if self.summary:
            lines.append(f"    {self.summary}")
        for spec in self.params:
            lines.append(f"    --{spec.describe()}")
            if spec.doc:
                lines.append(f"        {spec.doc}")
        if self.accepts_extra:
            lines.append("    ... extra keyword parameters forwarded onward")
        return "\n".join(lines)


def _docstring_param_docs(func: Callable[..., Any]) -> dict[str, str]:
    """First sentence of each numpydoc ``Parameters`` entry, best effort."""
    doc = inspect.getdoc(func) or ""
    lines = doc.splitlines()
    docs: dict[str, str] = {}
    try:
        start = next(
            i for i, line in enumerate(lines) if line.strip().lower() == "parameters"
        )
    except StopIteration:
        return docs
    current: str | None = None
    chunks: dict[str, list[str]] = {}
    for line in lines[start + 2 :]:
        stripped = line.strip()
        if not stripped:
            continue
        if not line.startswith(" ") and stripped.endswith(("-", "=")):
            break  # next underlined section header
        if stripped.lower() in ("returns", "raises", "notes", "examples", "yields"):
            break
        indent = len(line) - len(line.lstrip())
        if indent <= 4 and (stripped.endswith(":") or " : " in stripped):
            current = stripped.rstrip(":").split(" : ")[0].split(":")[0].strip()
            chunks[current] = []
        elif current is not None:
            chunks[current].append(stripped)
    for name, body in chunks.items():
        text = " ".join(body)
        head = text.split(". ")[0].strip()
        if head and not head.endswith("."):
            head += "."
        docs[name] = head
    return docs


def derive_params(
    func: Callable[..., Any],
    exclude: tuple[str, ...] = (),
    skip_leading: int = 1,
) -> tuple[tuple[ParamSpec, ...], bool]:
    """Build :class:`ParamSpec` entries from ``func``'s signature.

    The first ``skip_leading`` positional parameters (the data argument)
    and any names in ``exclude`` (infrastructure parameters supplied by
    the dispatch layer itself — ``p``, ``weights``, ``n_jobs``,
    ``backend`` — or unsafe toggles like ``return_details``) are dropped.
    Returns ``(params, accepts_extra)`` where ``accepts_extra`` records a
    ``**kwargs`` catch-all in the signature.
    """
    signature = inspect.signature(func)
    docs = _docstring_param_docs(func)
    params: list[ParamSpec] = []
    accepts_extra = False
    position = 0
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            accepts_extra = True
            continue
        if parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            continue
        if parameter.name == "self":
            continue
        if position < skip_leading and parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            position += 1
            continue
        position += 1
        if parameter.name in exclude:
            continue
        annotation = (
            ""
            if parameter.annotation is inspect.Parameter.empty
            else str(parameter.annotation)
        )
        default: Any = (
            REQUIRED if parameter.default is inspect.Parameter.empty else parameter.default
        )
        params.append(
            ParamSpec(
                name=parameter.name,
                annotation=annotation,
                default=default,
                doc=docs.get(parameter.name, ""),
            )
        )
    return tuple(params), accepts_extra


def summary_from(func: Callable[..., Any]) -> str:
    """First docstring line, stripped of trailing punctuation-free noise."""
    doc = inspect.getdoc(func)
    if not doc:
        return ""
    return doc.splitlines()[0].strip()
