"""The method registry: registration decorators, lookups, lazy loading.

The store is deliberately a *leaf* module: it imports nothing from the
rest of :mod:`repro` at import time, so any layer (core, parallel, shard,
serve, CLI, pipeline) can import it without cycles.  The built-in method
modules register themselves via the decorators below when *they* are
imported; :func:`_ensure_loaded` imports them all lazily the first time
anyone performs a lookup, with a re-entrancy guard so a registration
module that itself consults the registry at import time cannot recurse.

Lookup error messages are part of the public behaviour contract — the
``"unknown method ...; choose from ..."`` and ``"unknown inner algorithm
..."`` texts predate the registry and are matched by tests.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable
from typing import Any

from .spec import REQUIRED, MethodSpec, ParamSpec, SolveContext, derive_params, summary_from

__all__ = [
    "register_method",
    "register_clusterer",
    "get_method",
    "get_clusterer",
    "method_names",
    "aggregate_method_names",
    "baseline_method_names",
    "clusterer_names",
    "stochastic_method_names",
    "instance_method_names",
    "resolve_instance_method",
    "is_stochastic",
    "all_specs",
]

#: (role, name) -> spec.  Populated by the registration decorators.
_REGISTRY: dict[tuple[str, str], MethodSpec] = {}

#: Modules whose import registers the built-in methods.  Order matters
#: only for readability; each module is independent.
_BUILTIN_MODULES = (
    "repro.algorithms",
    "repro.consensus",
    "repro.parallel.portfolio",
    "repro.shard.engine",
    "repro.stream.engine",
    "repro.registry.clusterers",
)

_ROLES = ("aggregate", "baseline", "clusterer")
_KINDS = ("instance", "label-fast", "matrix", "points", "categorical")

_loaded = False
_loading = False


def _ensure_loaded() -> None:
    """Import every built-in registration module exactly once."""
    global _loaded, _loading
    if _loaded or _loading:
        return
    _loading = True
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
        _loaded = True
    finally:
        _loading = False


def _register(spec: MethodSpec) -> None:
    if spec.role not in _ROLES:
        raise ValueError(f"unknown registry role {spec.role!r}; one of {_ROLES}")
    if spec.kind not in _KINDS:
        raise ValueError(f"unknown method kind {spec.kind!r}; one of {_KINDS}")
    key = (spec.role, spec.name)
    if key in _REGISTRY and _REGISTRY[key].func is not spec.func:
        raise ValueError(f"duplicate registration for {spec.role} method {spec.name!r}")
    _REGISTRY[key] = spec


def _apply_defaults(
    params: tuple[ParamSpec, ...], defaults: dict[str, Any] | None
) -> tuple[ParamSpec, ...]:
    if not defaults:
        return params
    unknown = set(defaults) - {p.name for p in params}
    if unknown:
        raise ValueError(f"defaults override unknown parameter(s): {sorted(unknown)}")
    return tuple(
        ParamSpec(p.name, p.annotation, defaults.get(p.name, p.default), p.doc)
        for p in params
    )


def register_method(
    name: str,
    *,
    role: str = "aggregate",
    kind: str,
    stochastic: bool = False,
    supports_weights: bool = False,
    supports_missing: bool = True,
    supports_collapse: bool = True,
    needs_instance: bool = False,
    solver: Callable[[SolveContext], Any] | None = None,
    params_from: Callable[..., Any] | None = None,
    exclude: tuple[str, ...] = (),
    defaults: dict[str, Any] | None = None,
    summary: str | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register the decorated function as a named method.

    The decorated function is returned *unchanged* — registration is pure
    bookkeeping, so decorating an algorithm cannot perturb its behaviour
    (the bit-identity contract).  The parameter schema is derived from the
    signature of ``params_from`` (default: the function itself), minus the
    leading data argument, ``exclude``-ed infrastructure parameters, and
    with ``defaults`` overrides applied (e.g. SAMPLING's ``inner`` is a
    required positional of the raw function but defaults to
    ``"agglomerative"`` at the dispatch layer).
    """

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        source = params_from if params_from is not None else func
        params, accepts_extra = derive_params(source, exclude=exclude)
        _register(
            MethodSpec(
                name=name,
                role=role,
                kind=kind,
                func=func,
                stochastic=stochastic,
                supports_weights=supports_weights,
                supports_missing=supports_missing,
                supports_collapse=supports_collapse,
                needs_instance=needs_instance,
                accepts_extra=accepts_extra,
                summary=summary if summary is not None else summary_from(func),
                params=_apply_defaults(params, defaults),
                solver=solver,
            )
        )
        return func

    return decorate


def register_clusterer(
    name: str,
    *,
    data: str = "points",
    stochastic: bool = False,
    params_from: Callable[..., Any] | None = None,
    exclude: tuple[str, ...] = (),
    defaults: dict[str, Any] | None = None,
    summary: str | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a base clusterer (``data`` is ``"points"`` or ``"categorical"``)."""
    return register_method(
        name,
        role="clusterer",
        kind=data,
        stochastic=stochastic,
        params_from=params_from,
        exclude=exclude,
        defaults=defaults,
        summary=summary,
    )


def get_method(name: str, role: str = "aggregate") -> MethodSpec:
    """Look a method up by name, raising the layer's canonical ValueError."""
    _ensure_loaded()
    spec = _REGISTRY.get((role, name))
    if spec is None:
        if role == "aggregate":
            raise ValueError(
                f"unknown method {name!r}; choose from {method_names('aggregate')}"
            )
        if role == "clusterer":
            raise ValueError(
                f"unknown base clusterer {name!r}; choose from {method_names('clusterer')}"
            )
        raise ValueError(
            f"unknown {role} method {name!r}; choose from {method_names(role)}"
        )
    return spec


def get_clusterer(name: str) -> MethodSpec:
    """Look up a registered base clusterer."""
    return get_method(name, role="clusterer")


def method_names(role: str = "aggregate") -> tuple[str, ...]:
    """Sorted names registered under ``role``."""
    _ensure_loaded()
    return tuple(sorted(name for (r, name) in _REGISTRY if r == role))


def aggregate_method_names() -> tuple[str, ...]:
    """Names accepted by :func:`repro.core.aggregate.aggregate`."""
    return method_names("aggregate")


def baseline_method_names() -> tuple[str, ...]:
    """Names of the related-work consensus baselines (§6)."""
    return method_names("baseline")


def clusterer_names() -> tuple[str, ...]:
    """Names of the registered base clusterers."""
    return method_names("clusterer")


def stochastic_method_names() -> tuple[str, ...]:
    """Aggregate-role methods whose output depends on an ``rng`` seed."""
    _ensure_loaded()
    return tuple(
        sorted(
            name
            for (role, name), spec in _REGISTRY.items()
            if role == "aggregate" and spec.stochastic
        )
    )


def instance_method_names() -> tuple[str, ...]:
    """Aggregate-role methods callable on a bare :class:`CorrelationInstance`."""
    _ensure_loaded()
    return tuple(
        sorted(
            name
            for (role, name), spec in _REGISTRY.items()
            if role == "aggregate" and spec.kind in ("instance", "label-fast")
        )
    )


def is_stochastic(name: str, role: str = "aggregate") -> bool:
    """Whether the named method consumes an ``rng`` seed."""
    return get_method(name, role=role).stochastic


def resolve_instance_method(
    inner: str | Callable[..., Any],
) -> Callable[..., Any]:
    """Resolve an instance-level algorithm from a name or callable.

    This is the seam SAMPLING, the portfolio, and the shard engine use to
    turn an ``inner=`` / ``methods=`` / ``shard_method=`` name into a
    callable; arbitrary callables pass through so users can plug in their
    own algorithms.
    """
    if callable(inner):
        return inner
    _ensure_loaded()
    spec = _REGISTRY.get(("aggregate", inner))
    if spec is None or spec.kind not in ("instance", "label-fast"):
        raise ValueError(
            f"unknown inner algorithm {inner!r}; choose from {list(instance_method_names())}"
        )
    return spec.func


def all_specs(role: str | None = None) -> tuple[MethodSpec, ...]:
    """Every registered spec (optionally restricted to one role), sorted."""
    _ensure_loaded()
    return tuple(
        spec
        for (r, name), spec in sorted(_REGISTRY.items())
        if role is None or r == role
    )


def validate_params(name: str, params: dict[str, Any], role: str = "aggregate") -> None:
    """Registry-driven keyword validation for ``aggregate(**params)`` et al."""
    get_method(name, role=role).validate_params(params)


# REQUIRED is re-exported so registration modules can declare overrides.
_ = REQUIRED
