"""Base-clusterer registrations behind the :class:`BaseClusterer` protocol.

The pipeline's base stage (and anything else that wants "some clustering
of raw data") resolves these by name.  Each adapter normalizes its
backend's native return type (``KMeansResult``, ``Clustering``, raw
labels) to a flat ``(n,)`` integer label vector, so callers never branch
on which library convention a given clusterer follows.

``kind`` records the data each clusterer consumes: ``"points"`` for
``(n, d)`` Euclidean matrices (k-means, DBSCAN, the linkage family) and
``"categorical"`` for ``(n, m)`` integer-coded categorical matrices
(LIMBO, ROCK — the paper's §6 baselines).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..baselines.limbo import limbo
from ..baselines.rock import rock
from ..cluster.dbscan import dbscan
from ..cluster.kmeans import kmeans
from ..cluster.linkage import hierarchical
from .store import register_clusterer

__all__: list[str] = []


@register_clusterer("kmeans", data="points", stochastic=True, params_from=kmeans)
def _kmeans_clusterer(points: np.ndarray, **params: Any) -> np.ndarray:
    """Lloyd k-means (best of ``n_init`` seeded restarts)."""
    return kmeans(points, **params).labels


@register_clusterer(
    "linkage",
    data="points",
    params_from=hierarchical,
    summary="Flat k-cluster cut of a hierarchical linkage dendrogram.",
)
def _linkage_clusterer(points: np.ndarray, **params: Any) -> np.ndarray:
    """Hierarchical linkage (single/complete/average/ward) cut at ``k``."""
    return hierarchical(points, **params)


@register_clusterer(
    "dbscan", data="points", params_from=dbscan, exclude=("distances",)
)
def _dbscan_clusterer(points: np.ndarray, **params: Any) -> np.ndarray:
    """Density-based clustering; noise points become singletons."""
    return dbscan(points, **params)


@register_clusterer("limbo", data="categorical", params_from=limbo)
def _limbo_clusterer(data: np.ndarray, **params: Any) -> np.ndarray:
    """LIMBO information-bottleneck categorical clustering."""
    return limbo(data, **params).labels


@register_clusterer("rock", data="categorical", stochastic=True, params_from=rock)
def _rock_clusterer(data: np.ndarray, **params: Any) -> np.ndarray:
    """ROCK link-based categorical clustering."""
    return rock(data, **params).labels
