"""Process-wide counters, gauges and histograms: the metrics half of
:mod:`repro.obs`.

A :class:`MetricsRegistry` holds named instruments:

- **counters** — monotonically accumulated floats (``localsearch.moves``,
  ``stream.warm_updates``);
- **gauges** — last-written values (``portfolio.jobs``);
- **histograms** — value distributions with count/sum/min/max/mean and
  percentiles in the snapshot (``portfolio.member.cost``,
  ``parallel.build.block_seconds``).

Instrumentation sites call the module-level helpers :func:`inc`,
:func:`set_gauge` and :func:`observe`, which write into the default
registry.  Collection is **disabled by default**: every helper first
checks one module-level boolean and returns immediately when metrics are
off, so instrumented hot loops cost a single branch.  Turn collection on
with :func:`enable_metrics` (or the ``with collecting():`` context
manager), read results with :meth:`MetricsRegistry.snapshot`, and
compare two snapshots with :func:`diff_snapshots`.

The registry is process-local.  Forked pool workers therefore do not
write into the parent's registry; parallel code ships small aggregates
back over the result channel instead (see :mod:`repro.parallel`).

Stdlib only — no numpy, no third-party dependencies.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collecting",
    "diff_snapshots",
    "disable_metrics",
    "enable_metrics",
    "get_registry",
    "inc",
    "metrics_enabled",
    "observe",
    "set_gauge",
]


class Counter:
    """A monotonically accumulated float."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins value (``None`` until first set)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution of observed values.

    Running count/sum/min/max are maintained exactly; the raw values are
    retained (capped at ``_MAX_KEPT``, uniformly thinned beyond it) so
    snapshots can report percentiles without a third-party sketch.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_kept", "_stride", "_skip")

    _MAX_KEPT = 4096

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._kept: list[float] = []
        self._stride = 1  # keep every _stride-th observation
        self._skip = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._skip += 1
        if self._skip >= self._stride:
            self._skip = 0
            self._kept.append(value)
            if len(self._kept) >= self._MAX_KEPT:
                # Thin uniformly: keep every other retained value and
                # double the stride for future observations.
                self._kept = self._kept[::2]
                self._stride *= 2

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile over the retained values (q in [0, 100])."""
        if not self._kept:
            return None
        ranked = sorted(self._kept)
        rank = min(len(ranked) - 1, max(0, math.ceil(q / 100.0 * len(ranked)) - 1))
        return ranked[rank]

    def summary(self) -> dict[str, float | None]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": None, "max": None, "mean": None,
                    "p50": None, "p90": None, "p99": None}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created lazily on first touch; creation takes the
    registry lock, subsequent updates are plain attribute writes (safe
    under the GIL for the float accumulations used here).
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(name, Histogram(name))
        return instrument

    # -- recording (no enabled check here; helpers below do that) ------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- lifecycle ------------------------------------------------------

    def reset(self) -> None:
        """Drop every instrument (the enabled flag is left as-is)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A point-in-time copy of every instrument, JSON-friendly."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: h.summary() for name, h in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)


def diff_snapshots(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """What happened between two :meth:`MetricsRegistry.snapshot` calls.

    Counters are subtracted; gauges report the later value; histograms
    report the delta of their exact accumulators (count and sum — the
    retained-value statistics are not differentiable).
    """
    counters = {
        name: value - before.get("counters", {}).get(name, 0.0)
        for name, value in after.get("counters", {}).items()
    }
    histograms = {}
    for name, summary in after.get("histograms", {}).items():
        earlier = before.get("histograms", {}).get(name, {"count": 0, "sum": 0.0})
        histograms[name] = {
            "count": summary["count"] - earlier.get("count", 0),
            "sum": summary["sum"] - earlier.get("sum", 0.0),
        }
    return {
        "counters": {name: value for name, value in counters.items() if value != 0.0},
        "gauges": dict(after.get("gauges", {})),
        "histograms": {
            name: delta for name, delta in histograms.items() if delta["count"] != 0
        },
    }


# -- the default (process-wide) registry ----------------------------------

_default = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the module helpers write to."""
    return _default


def metrics_enabled() -> bool:
    return _default.enabled


def enable_metrics() -> None:
    _default.enabled = True


def disable_metrics() -> None:
    _default.enabled = False


class _Collecting:
    """Context manager scoping metric collection (restores the prior flag)."""

    __slots__ = ("_previous",)

    def __enter__(self) -> MetricsRegistry:
        self._previous = _default.enabled
        _default.enabled = True
        return _default

    def __exit__(self, *exc_info: Any) -> None:
        _default.enabled = self._previous


def collecting() -> _Collecting:
    """Enable metrics for a block: ``with collecting() as registry: ...``."""
    return _Collecting()


def inc(name: str, amount: float = 1.0) -> None:
    """Add to a counter — free (one branch) while metrics are disabled."""
    if not _default.enabled:
        return
    _default.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Write a gauge — free (one branch) while metrics are disabled."""
    if not _default.enabled:
        return
    _default.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record into a histogram — free (one branch) while metrics are disabled."""
    if not _default.enabled:
        return
    _default.observe(name, value)
