"""repro.obs — zero-dependency observability: tracing, metrics, profiling.

Three coordinated layers, all opt-in and all free when off:

- :mod:`repro.obs.trace` — nestable wall-time spans that build a tree
  under ``with tracing():`` and render as JSON or an indented text tree.
  Spans always time (the library's ``elapsed_seconds`` fields read
  ``Span.seconds``), they are only *retained* while a trace is active.
- :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms with a snapshot/diff API; disabled by default, so the
  instrumented hot paths pay one branch.
- :mod:`repro.obs.profile` — phase hooks combining both (a span plus a
  ``phase.<name>.seconds`` histogram), and the export/merge convention
  that ships spans out of forked pool workers.

Quick look::

    from repro import aggregate
    from repro.obs import tracing, collecting

    with tracing() as trace, collecting() as registry:
        aggregate(matrix, method="local-search")
    print(trace.render())
    print(registry.to_json())

The CLI surfaces the same data via ``--trace`` and ``--metrics-out`` on
the ``aggregate``, ``portfolio`` and ``stream`` subcommands.
"""

from .metrics import (
    MetricsRegistry,
    collecting,
    diff_snapshots,
    disable_metrics,
    enable_metrics,
    get_registry,
    inc,
    metrics_enabled,
    observe,
    set_gauge,
)
from .profile import export_spans, merge_spans, phase, profiled, worker_tracing
from .trace import Span, Trace, current_trace, is_tracing, span, tracing

__all__ = [
    "MetricsRegistry",
    "Span",
    "Trace",
    "collecting",
    "current_trace",
    "diff_snapshots",
    "disable_metrics",
    "enable_metrics",
    "export_spans",
    "get_registry",
    "inc",
    "is_tracing",
    "merge_spans",
    "metrics_enabled",
    "observe",
    "phase",
    "profiled",
    "set_gauge",
    "span",
    "tracing",
    "worker_tracing",
]
