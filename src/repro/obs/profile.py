"""Phase profiling: the glue between spans and metrics.

A *phase* is an algorithm stage worth accounting for separately — a
SAMPLING sub-build, a LOCALSEARCH refinement pass, a streaming count
update.  :func:`phase` opens a :class:`~repro.obs.trace.Span` (so the
stage appears in the trace tree) and, on exit, records the stage's wall
time into the ``phase.<name>.seconds`` histogram of the default metrics
registry (so repeated stages accumulate distributions).  Both halves are
opt-in: without an active trace the span is discarded after timing, and
without :func:`~repro.obs.metrics.enable_metrics` the histogram write is
one skipped branch.

The five paper algorithms, the parallel build, the portfolio, the
streaming engine and :func:`repro.core.aggregate.aggregate` are all
instrumented through this module — see DESIGN.md §2.5g for the span
naming scheme.

Forked pool workers profile into their own process-local trace and ship
:func:`export_spans` payloads back over the result channel; the parent
re-attaches them with :func:`merge_spans` (one call per worker payload).
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

from .metrics import observe
from .trace import Span, Trace, current_trace, span, tracing

__all__ = ["phase", "profiled", "export_spans", "merge_spans", "worker_tracing"]

_F = TypeVar("_F", bound=Callable[..., Any])


class _Phase(Span):
    """A span that also feeds the ``phase.<name>.seconds`` histogram."""

    __slots__ = ()

    def __exit__(self, *exc_info: Any) -> None:
        super().__exit__(*exc_info)
        observe(f"phase.{self.name}.seconds", self.seconds)


def phase(name: str, **attrs: Any) -> _Phase:
    """Open a profiled phase: ``with phase("sampling.phase1", n=n): ...``.

    Identical to :func:`repro.obs.trace.span` plus a histogram
    observation of the duration on exit.
    """
    return _Phase(name, attrs, current_trace())


def profiled(name: str) -> Callable[[_F], _F]:
    """Decorator form of :func:`phase` for whole-function stages."""

    def wrap(function: _F) -> _F:
        def wrapped(*args: Any, **kwargs: Any) -> Any:
            with phase(name):
                return function(*args, **kwargs)

        wrapped.__name__ = getattr(function, "__name__", name)
        wrapped.__doc__ = function.__doc__
        return wrapped  # type: ignore[return-value]

    return wrap


# -- worker-side helpers (fork pools) -------------------------------------


def worker_tracing() -> Any:
    """A fresh local trace for one pool task: ``with worker_tracing() as t:``.

    Forked workers inherit the parent's active trace as an unusable
    copy-on-write ghost (see :func:`repro.obs.trace.current_trace`); this
    opens a clean process-local trace whose spans the worker exports with
    :func:`export_spans` and returns alongside its result payload.
    """
    return tracing(Trace(name="worker"))


def export_spans(trace: Trace) -> list[dict[str, Any]]:
    """Serialize a worker trace's root spans for the pool result channel."""
    return [root.to_dict() for root in trace.roots]


def merge_spans(payloads: list[dict[str, Any]]) -> None:
    """Graft worker span payloads into the parent's active trace (if any)."""
    trace = current_trace()
    if trace is None:
        return
    for payload in payloads:
        trace.add_dict(payload)
