"""Nestable wall-time spans: the tracing half of :mod:`repro.obs`.

A :class:`Span` measures one timed region — ``with span("balls.sweep",
n=n): ...`` — and records arbitrary attributes.  Spans *always* time
(two ``perf_counter`` calls; the measured value is read back through
``Span.seconds``, which is how every ``elapsed_seconds`` field in the
library is produced — timing and tracing can never disagree).  They are
only *retained* when a :class:`Trace` is active: inside a
``with tracing() as trace:`` block every span nests under the innermost
open span of its thread, building a tree that serializes to JSON
(:meth:`Trace.to_dict` / :meth:`Trace.to_json`) and renders as an
indented text tree (:meth:`Trace.render`).

Thread and fork safety
----------------------

Each :class:`Trace` keeps one span stack *per thread* (so concurrent
threads build disjoint subtrees) and remembers the process id it was
created in.  A forked worker that inherits an active trace does **not**
append into the parent's tree — :func:`current_trace` reports the trace
as inactive under a foreign pid.  Workers that want to contribute spans
open their own local ``tracing()`` block and ship ``Span.to_dict()``
payloads back over the pool's result channel; the parent grafts them
with :meth:`Trace.add_dict` (see :mod:`repro.parallel` for both ends of
that convention).

This module is intentionally dependency-free (stdlib only) and is the
single place in the library allowed to call ``time.perf_counter``
directly (lint rule RPR007).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any

__all__ = [
    "Span",
    "Trace",
    "current_trace",
    "is_tracing",
    "span",
    "tracing",
]


def _clean(value: Any) -> Any:
    """Attribute values must survive JSON round-trips; stringify the rest."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_clean(item) for item in value]
    item = getattr(value, "item", None)  # numpy scalars, without importing numpy
    if callable(item):
        try:
            return _clean(item())
        except (TypeError, ValueError):
            pass
    return str(value)


class Span:
    """One timed region with attributes and child spans.

    Use through :func:`span`; a Span is its own context manager.  After
    the ``with`` block exits, :attr:`seconds` holds the wall time.
    """

    __slots__ = ("name", "attrs", "seconds", "index", "children", "_trace", "_start")

    def __init__(self, name: str, attrs: dict[str, Any], trace: "Trace | None") -> None:
        self.name = name
        self.attrs = attrs
        self.seconds = 0.0
        self.index = -1  # monotonic ordering within the owning trace
        self.children: list["Span"] = []
        self._trace = trace
        self._start = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on an open or finished span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        if self._trace is not None:
            self.index = self._trace._open(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.seconds = time.perf_counter() - self._start
        if self._trace is not None:
            self._trace._close(self)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (recursive)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "index": self.index,
            "attrs": {key: _clean(value) for key, value in self.attrs.items()},
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output (worker import)."""
        rebuilt = cls(str(payload["name"]), dict(payload.get("attrs", {})), trace=None)
        rebuilt.seconds = float(payload.get("seconds", 0.0))
        rebuilt.index = int(payload.get("index", -1))
        rebuilt.children = [cls.from_dict(child) for child in payload.get("children", [])]
        return rebuilt

    def __repr__(self) -> str:
        return f"Span({self.name!r}, seconds={self.seconds:.6f}, children={len(self.children)})"


class Trace:
    """A forest of spans collected while the trace is active.

    One span stack per thread makes concurrent instrumentation safe; the
    creation pid guards against forked children writing into a tree they
    only hold a copy of.
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.roots: list[Span] = []
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._counter = 0
        self._stacks = threading.local()

    # -- span bookkeeping (called by Span.__enter__/__exit__) -----------

    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _open(self, opened: Span) -> int:
        stack = self._stack()
        with self._lock:
            self._counter += 1
            index = self._counter
            if stack:
                stack[-1].children.append(opened)
            else:
                self.roots.append(opened)
        stack.append(opened)
        return index

    def _close(self, closed: Span) -> None:
        stack = self._stack()
        while stack:  # tolerate exceptions that skipped inner __exit__ calls
            if stack.pop() is closed:
                break

    # -- merging worker payloads ---------------------------------------

    def add_dict(self, payload: dict[str, Any]) -> Span:
        """Graft a :meth:`Span.to_dict` payload under the innermost open span.

        Forked pool workers cannot write into the parent's tree, so they
        export their local spans as dicts and the parent re-attaches them
        here (under whatever span is currently open on the calling
        thread, or as a new root).
        """
        grafted = Span.from_dict(payload)
        stack = self._stack()
        with self._lock:
            if stack:
                stack[-1].children.append(grafted)
            else:
                self.roots.append(grafted)
        return grafted

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "spans": [root.to_dict() for root in self.roots]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self, min_seconds: float = 0.0) -> str:
        """The span forest as an indented text tree.

        ``min_seconds`` prunes spans (and their subtrees) faster than the
        threshold — handy for deep traces of fast phases.
        """
        lines: list[str] = []

        def walk(node: Span, depth: int) -> None:
            if node.seconds < min_seconds:
                return
            label = "  " * depth + node.name
            attrs = "  ".join(f"{key}={_format(value)}" for key, value in node.attrs.items())
            lines.append(f"{label:<42s} {1000.0 * node.seconds:>10.2f}ms  {attrs}".rstrip())
            for child in node.children:
                walk(child, depth + 1)

        def _format(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        for root in self.roots:
            walk(root, 0)
        return "\n".join(lines)

    def total_seconds(self) -> float:
        """Sum of the root span durations."""
        return sum(root.seconds for root in self.roots)

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in monotonic order."""
        found: list[Span] = []

        def walk(node: Span) -> None:
            if node.name == name:
                found.append(node)
            for child in node.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return sorted(found, key=lambda node: node.index)

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, roots={len(self.roots)})"


# -- module-level activation ----------------------------------------------

_active: Trace | None = None


def current_trace() -> Trace | None:
    """The active trace of *this* process, or ``None``.

    A trace inherited across ``fork`` belongs to the parent; it is
    reported inactive here so worker spans never vanish into a
    copy-on-write ghost tree.
    """
    trace = _active
    if trace is not None and trace._pid != os.getpid():
        return None
    return trace


def is_tracing() -> bool:
    """Whether a trace is active in this process."""
    return current_trace() is not None


class _Tracing:
    """Context manager activating (and restoring) the process trace."""

    __slots__ = ("_trace", "_previous")

    def __init__(self, trace: Trace | None) -> None:
        self._trace = trace if trace is not None else Trace()
        self._previous: Trace | None = None

    def __enter__(self) -> Trace:
        global _active
        self._previous = _active
        _active = self._trace
        return self._trace

    def __exit__(self, *exc_info: Any) -> None:
        global _active
        _active = self._previous


def tracing(trace: Trace | None = None) -> _Tracing:
    """Activate ``trace`` (or a fresh one) for the duration of the block::

        with tracing() as trace:
            aggregate(matrix, method="local-search")
        print(trace.render())
    """
    return _Tracing(trace)


def span(name: str, **attrs: Any) -> Span:
    """Open a timed span: ``with span("sampling.phase1", n=n) as sp: ...``.

    Always times; recorded into the active trace only when one exists.
    The returned object is the :class:`Span` itself, so callers read
    ``sp.seconds`` after the block — the library's ``elapsed_seconds``
    fields are all produced this way.
    """
    return Span(name, attrs, current_trace())
