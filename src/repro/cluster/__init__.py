"""Vanilla clustering substrate: k-means and hierarchical linkages.

These are the algorithms the paper's experiments aggregate (Matlab's
single / complete / average linkage, Ward, and k-means in the original),
reimplemented from scratch on numpy.
"""

from .dbscan import dbscan
from .distances import (
    euclidean_matrix,
    hamming_fraction_matrix,
    jaccard_cross_similarity,
    jaccard_similarity_matrix,
    squared_euclidean,
)
from .kmeans import KMeansResult, kmeans
from .linkage import LinkageResult, hierarchical, linkage
from .model_selection import kmeans_bic, select_k_bic, select_k_cross_validation

__all__ = [
    "dbscan",
    "euclidean_matrix",
    "hamming_fraction_matrix",
    "jaccard_cross_similarity",
    "jaccard_similarity_matrix",
    "squared_euclidean",
    "KMeansResult",
    "kmeans",
    "LinkageResult",
    "hierarchical",
    "linkage",
    "kmeans_bic",
    "select_k_bic",
    "select_k_cross_validation",
]
