"""Choosing k for the vanilla algorithms — the §2 counterpoint.

The paper's §2 ("Identifying the correct number of clusters") lists the
classical remedies for k-selection — hard constraints, BIC, cross-
validated likelihood [16, 18] — before arguing that aggregation makes
them unnecessary.  To let the A6 ablation *measure* that claim we
implement the remedies for k-means:

* :func:`kmeans_bic` — BIC under the spherical-Gaussian interpretation of
  k-means (the X-means criterion of Pelleg & Moore / Hamerly & Elkan's
  baseline [16]).
* :func:`select_k_bic` — sweep a k range, return per-k scores and argmax.
* :func:`select_k_cross_validation` — Smyth's cross-validated likelihood
  [18]: fit on a train split, score held-out points, pick the k with the
  best average held-out log-likelihood.
"""

from __future__ import annotations

import numpy as np

from .distances import squared_euclidean
from .kmeans import KMeansResult, kmeans

__all__ = ["kmeans_bic", "select_k_bic", "select_k_cross_validation"]


def _log_likelihood(points: np.ndarray, result: KMeansResult) -> float:
    """Spherical-Gaussian log-likelihood of a fitted k-means model."""
    n, d = points.shape
    k = result.centers.shape[0]
    if n <= k:
        return -np.inf
    # Pooled ML variance estimate (X-means).
    variance = result.inertia / (d * (n - k))
    variance = max(variance, 1e-12)
    sizes = np.bincount(result.labels, minlength=k).astype(np.float64)
    sizes = sizes[sizes > 0]
    log_prior = float((sizes * np.log(sizes / n)).sum())
    log_density = (
        -0.5 * n * d * np.log(2.0 * np.pi * variance)
        - result.inertia / (2.0 * variance)
    )
    return log_prior + log_density


def kmeans_bic(points: np.ndarray, result: KMeansResult) -> float:
    """BIC of a fitted k-means clustering (higher is better here)."""
    points = np.asarray(points, dtype=np.float64)
    n, d = points.shape
    k = result.centers.shape[0]
    n_parameters = k * d + k - 1 + 1  # centers + mixing weights + variance
    return _log_likelihood(points, result) - 0.5 * n_parameters * np.log(n)


def select_k_bic(
    points: np.ndarray,
    k_range: range = range(2, 11),
    rng: np.random.Generator | int | None = 0,
    **kmeans_params,
) -> tuple[int, dict[int, float]]:
    """Pick k for k-means by BIC; returns ``(best_k, scores)``."""
    points = np.asarray(points, dtype=np.float64)
    generator = np.random.default_rng(rng)
    scores: dict[int, float] = {}
    for k in k_range:
        if k > len(points):
            break
        result = kmeans(points, k, rng=generator, **kmeans_params)
        scores[k] = kmeans_bic(points, result)
    best = max(scores, key=scores.get)
    return best, scores


def select_k_cross_validation(
    points: np.ndarray,
    k_range: range = range(2, 11),
    folds: int = 5,
    rng: np.random.Generator | int | None = 0,
    **kmeans_params,
) -> tuple[int, dict[int, float]]:
    """Smyth's cross-validated likelihood: pick the k that explains held-out data best."""
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if folds < 2 or folds > n:
        raise ValueError(f"folds must be in 2..{n}")
    generator = np.random.default_rng(rng)
    order = generator.permutation(n)
    fold_of = np.arange(n) % folds

    scores: dict[int, float] = {}
    for k in k_range:
        if k >= n - n // folds:
            break
        total = 0.0
        for fold in range(folds):
            train = points[order[fold_of != fold]]
            held_out = points[order[fold_of == fold]]
            result = kmeans(train, k, rng=generator, **kmeans_params)
            # Held-out log-likelihood under the fitted spherical model.
            d = points.shape[1]
            variance = max(result.inertia / (d * max(len(train) - k, 1)), 1e-12)
            sizes = np.bincount(result.labels, minlength=k).astype(np.float64) / len(train)
            sizes = np.maximum(sizes, 1e-12)
            sq = squared_euclidean(held_out, result.centers)
            log_components = (
                np.log(sizes)[None, :]
                - 0.5 * d * np.log(2.0 * np.pi * variance)
                - sq / (2.0 * variance)
            )
            row_max = log_components.max(axis=1, keepdims=True)
            total += float(
                (np.log(np.exp(log_components - row_max).sum(axis=1)) + row_max[:, 0]).sum()
            )
        scores[k] = total / folds
    best = max(scores, key=scores.get)
    return best, scores
