"""Pairwise-distance kernels for the vanilla clustering substrate.

Blocked, vectorized implementations of the three distances used across the
library: squared Euclidean (k-means, Ward), Euclidean (hierarchical
linkages on point data), and Jaccard similarity on categorical rows (the
ROCK baseline).  Everything returns dense float64/float32 arrays; blocking
keeps peak temporary memory bounded for large inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "squared_euclidean",
    "euclidean_matrix",
    "jaccard_similarity_matrix",
    "jaccard_cross_similarity",
    "hamming_fraction_matrix",
]

_BLOCK = 2048


def squared_euclidean(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between ``(n, d)`` points and ``(k, d)`` centers.

    Uses the expansion ``|x - c|^2 = |x|^2 - 2 x.c + |c|^2`` with a final
    clip at zero to absorb rounding.
    """
    points = np.asarray(points, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    if points.ndim != 2 or centers.ndim != 2 or points.shape[1] != centers.shape[1]:
        raise ValueError("points and centers must be 2-D with matching dimensionality")
    p_norms = (points * points).sum(axis=1)[:, None]
    c_norms = (centers * centers).sum(axis=1)[None, :]
    distances = p_norms - 2.0 * points @ centers.T + c_norms
    np.maximum(distances, 0.0, out=distances)
    return distances


def euclidean_matrix(points: np.ndarray) -> np.ndarray:
    """Full symmetric Euclidean distance matrix of ``(n, d)`` points."""
    distances = squared_euclidean(points, points)
    np.fill_diagonal(distances, 0.0)
    return np.sqrt(distances)


def hamming_fraction_matrix(rows: np.ndarray, missing: int = -1) -> np.ndarray:
    """Fraction of attributes on which two categorical rows differ.

    Attributes where either row is missing are skipped; a pair with no
    commonly-present attribute gets distance 1 (nothing supports putting
    them together).
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError("rows must be a 2-D categorical matrix")
    n, m = rows.shape
    out = np.zeros((n, n), dtype=np.float64)
    present = rows != missing
    for start in range(0, n, _BLOCK):
        stop = min(start + _BLOCK, n)
        block = rows[start:stop]
        block_present = present[start:stop]
        differ = np.zeros((stop - start, n), dtype=np.int64)
        both = np.zeros((stop - start, n), dtype=np.int64)
        for j in range(m):
            pair_present = block_present[:, j][:, None] & present[:, j][None, :]
            differ += pair_present & (block[:, j][:, None] != rows[:, j][None, :])
            both += pair_present
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = differ / both
        frac[both == 0] = 1.0
        out[start:stop] = frac
    np.fill_diagonal(out, 0.0)
    return out


def jaccard_similarity_matrix(rows: np.ndarray, missing: int = -1) -> np.ndarray:
    """Jaccard similarity between categorical rows, ROCK-style.

    Each row is viewed as the set of its (attribute, value) items; missing
    entries contribute no item.  ``J(u, v) = |items(u) ∩ items(v)| /
    |items(u) ∪ items(v)|``.  With all attributes present this reduces to
    ``matches / (2 m - matches)``.
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError("rows must be a 2-D categorical matrix")
    n, m = rows.shape
    present = rows != missing
    set_sizes = present.sum(axis=1).astype(np.int64)
    out = np.zeros((n, n), dtype=np.float64)
    for start in range(0, n, _BLOCK):
        stop = min(start + _BLOCK, n)
        block = rows[start:stop]
        block_present = present[start:stop]
        common = np.zeros((stop - start, n), dtype=np.int64)
        for j in range(m):
            pair_present = block_present[:, j][:, None] & present[:, j][None, :]
            common += pair_present & (block[:, j][:, None] == rows[:, j][None, :])
        union = set_sizes[start:stop][:, None] + set_sizes[None, :] - common
        with np.errstate(invalid="ignore", divide="ignore"):
            sim = common / union
        sim[union == 0] = 0.0
        out[start:stop] = sim
    np.fill_diagonal(out, 1.0)
    return out


def jaccard_cross_similarity(
    left: np.ndarray, right: np.ndarray, missing: int = -1
) -> np.ndarray:
    """Jaccard similarities between two row sets: an ``(n_left, n_right)`` array."""
    left = np.asarray(left)
    right = np.asarray(right)
    if left.ndim != 2 or right.ndim != 2 or left.shape[1] != right.shape[1]:
        raise ValueError("left and right must be 2-D with the same number of attributes")
    m = left.shape[1]
    left_present = left != missing
    right_present = right != missing
    left_sizes = left_present.sum(axis=1).astype(np.int64)
    right_sizes = right_present.sum(axis=1).astype(np.int64)
    out = np.empty((left.shape[0], right.shape[0]), dtype=np.float64)
    for start in range(0, left.shape[0], _BLOCK):
        stop = min(start + _BLOCK, left.shape[0])
        common = np.zeros((stop - start, right.shape[0]), dtype=np.int64)
        for j in range(m):
            pair_present = left_present[start:stop, j][:, None] & right_present[:, j][None, :]
            common += pair_present & (left[start:stop, j][:, None] == right[:, j][None, :])
        union = left_sizes[start:stop][:, None] + right_sizes[None, :] - common
        with np.errstate(invalid="ignore", divide="ignore"):
            sim = common / union
        sim[union == 0] = 0.0
        out[start:stop] = sim
    return out
