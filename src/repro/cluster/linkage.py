"""Agglomerative hierarchical clustering, implemented from scratch.

This substrate stands in for Matlab's ``linkage`` in the paper's Figure 3
experiment: single, complete, average (UPGMA), and Ward linkages over
Euclidean point data (or any precomputed distance matrix).

The core is the nearest-neighbour-chain algorithm, valid for all four
linkages because they are *reducible*: merging two clusters never brings
any other cluster closer than it was to both.  Each merge costs a
vectorized Lance–Williams row update, giving ``O(n^2)`` time and memory.

For Ward the working distances are *squared* Euclidean (the Lance–Williams
recurrence is exact in that scale); heights are reported in the working
scale, which is irrelevant for cutting by cluster count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distances import euclidean_matrix, squared_euclidean

__all__ = ["LinkageResult", "linkage", "hierarchical"]

_METHODS = ("single", "complete", "average", "ward")


@dataclass
class LinkageResult:
    """A dendrogram: ``n - 1`` merges of leaf-representative pairs.

    ``merges[step] = (rep_a, rep_b, height)`` records that at the given
    height the clusters containing leaves ``rep_a`` and ``rep_b`` merged.
    Cutting unions merges in ascending height order.
    """

    merges: np.ndarray
    n: int
    method: str

    def cut(self, k: int) -> np.ndarray:
        """Labels of the ``k``-cluster flat clustering."""
        if not 1 <= k <= self.n:
            raise ValueError(f"k must be in 1..{self.n}, got {k}")
        return self._apply(self.n - k)

    def cut_height(self, height: float) -> np.ndarray:
        """Labels after applying every merge with height <= ``height``."""
        order = np.argsort(self.merges[:, 2], kind="stable")
        count = int(np.searchsorted(self.merges[order, 2], height, side="right"))
        return self._apply(count)

    def heights(self) -> np.ndarray:
        """Merge heights in ascending order."""
        return np.sort(self.merges[:, 2])

    def _apply(self, count: int) -> np.ndarray:
        parent = np.arange(self.n, dtype=np.int64)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        order = np.argsort(self.merges[:, 2], kind="stable")
        for step in order[:count]:
            a, b = int(self.merges[step, 0]), int(self.merges[step, 1])
            parent[find(a)] = find(b)
        roots = np.array([find(i) for i in range(self.n)], dtype=np.int64)
        _, labels = np.unique(roots, return_inverse=True)
        return labels.astype(np.int64)


def _lance_williams_row(
    method: str,
    d_a: np.ndarray,
    d_b: np.ndarray,
    d_ab: float,
    size_a: int,
    size_b: int,
    sizes: np.ndarray,
) -> np.ndarray:
    """Distance from the merged cluster (a ∪ b) to every other cluster."""
    if method == "single":
        return np.minimum(d_a, d_b)
    if method == "complete":
        return np.maximum(d_a, d_b)
    if method == "average":
        return (size_a * d_a + size_b * d_b) / (size_a + size_b)
    if method == "ward":
        total = size_a + size_b + sizes
        return ((size_a + sizes) * d_a + (size_b + sizes) * d_b - sizes * d_ab) / total
    raise ValueError(f"unknown linkage method {method!r}; use one of {_METHODS}")


def linkage(
    points: np.ndarray | None = None,
    method: str = "average",
    distances: np.ndarray | None = None,
) -> LinkageResult:
    """Build the full dendrogram of the data under the given linkage.

    Provide either ``points`` (an ``(n, d)`` matrix; Euclidean geometry) or
    a precomputed symmetric ``distances`` matrix.  Ward requires points
    (its recurrence is only exact for squared Euclidean distances).
    """
    if method not in _METHODS:
        raise ValueError(f"unknown linkage method {method!r}; use one of {_METHODS}")
    if (points is None) == (distances is None):
        raise ValueError("provide exactly one of points or distances")
    if distances is not None:
        if method == "ward":
            raise ValueError("ward linkage requires points, not a distance matrix")
        D = np.array(distances, dtype=np.float64)
        if D.ndim != 2 or D.shape[0] != D.shape[1]:
            raise ValueError("distances must be a square matrix")
    else:
        pts = np.asarray(points, dtype=np.float64)
        if method == "ward":
            D = squared_euclidean(pts, pts)
            np.fill_diagonal(D, 0.0)
        else:
            D = euclidean_matrix(pts)
    n = D.shape[0]
    if n == 1:
        return LinkageResult(np.empty((0, 3), dtype=np.float64), 1, method)

    np.fill_diagonal(D, np.inf)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    merges = np.empty((n - 1, 3), dtype=np.float64)
    chain: list[int] = []
    merged = 0
    while merged < n - 1:
        if not chain:
            chain.append(int(np.flatnonzero(active)[0]))
        while True:
            a = chain[-1]
            row = np.where(active, D[a], np.inf)
            row[a] = np.inf
            b = int(np.argmin(row))
            # Prefer the chain predecessor on ties — required for the
            # reciprocal-pair detection of the NN-chain algorithm.
            if len(chain) >= 2 and row[chain[-2]] <= row[b]:
                b = chain[-2]
            if len(chain) >= 2 and b == chain[-2]:
                height = float(D[a, b])
                merges[merged] = (a, b, height)
                merged += 1
                # Merge b into a.
                other = active.copy()
                other[a] = other[b] = False
                idx = np.flatnonzero(other)
                D[a, idx] = _lance_williams_row(
                    method, D[a, idx], D[b, idx], height, int(sizes[a]), int(sizes[b]), sizes[idx]
                )
                D[idx, a] = D[a, idx]
                D[a, a] = np.inf
                D[b, :] = np.inf
                D[:, b] = np.inf
                sizes[a] += sizes[b]
                active[b] = False
                chain.pop()
                chain.pop()
                break
            chain.append(b)
    return LinkageResult(merges, n, method)


def hierarchical(
    points: np.ndarray,
    k: int,
    method: str = "average",
) -> np.ndarray:
    """Convenience wrapper: flat ``k``-cluster labels of ``points``."""
    return linkage(points, method=method).cut(k)
