"""k-means (Lloyd's algorithm), implemented from scratch.

The paper's robustness experiments (Figures 3–5) feed Matlab's ``kmeans``
outputs into the aggregator; this module is the equivalent substrate.
Features: k-means++ or uniform-random initialization, multiple restarts
keeping the lowest inertia, empty-cluster repair by re-seeding on the
farthest point, and deterministic behaviour under a seeded generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distances import squared_euclidean

__all__ = ["KMeansResult", "kmeans"]


@dataclass
class KMeansResult:
    """Outcome of one :func:`kmeans` call."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int
    converged: bool


def _init_centers(
    points: np.ndarray, k: int, rng: np.random.Generator, init: str
) -> np.ndarray:
    n = points.shape[0]
    if init == "random":
        chosen = rng.choice(n, size=k, replace=False)
        return points[chosen].copy()
    if init == "k-means++":
        centers = np.empty((k, points.shape[1]), dtype=np.float64)
        centers[0] = points[rng.integers(n)]
        closest = squared_euclidean(points, centers[:1])[:, 0]
        for i in range(1, k):
            total = closest.sum()
            if total <= 0:
                # All points coincide with chosen centers; fill uniformly.
                centers[i] = points[rng.integers(n)]
                continue
            probabilities = closest / total
            centers[i] = points[rng.choice(n, p=probabilities)]
            distance_to_new = squared_euclidean(points, centers[i : i + 1])[:, 0]
            np.minimum(closest, distance_to_new, out=closest)
        return centers
    raise ValueError(f"unknown init {init!r}; use 'k-means++' or 'random'")


def _lloyd(
    points: np.ndarray, centers: np.ndarray, max_iter: int, tol: float
) -> KMeansResult:
    k = centers.shape[0]
    labels = np.zeros(points.shape[0], dtype=np.int64)
    for iteration in range(1, max_iter + 1):
        distances = squared_euclidean(points, centers)
        labels = distances.argmin(axis=1)
        new_centers = np.empty_like(centers)
        counts = np.bincount(labels, minlength=k)
        for cluster in range(k):
            if counts[cluster] == 0:
                # Empty-cluster repair: re-seed on the point farthest from
                # its current center (Matlab's 'singleton' action).
                assigned = distances[np.arange(points.shape[0]), labels]
                farthest = int(np.argmax(assigned))
                new_centers[cluster] = points[farthest]
                labels[farthest] = cluster
                distances[farthest] = 0.0
            else:
                new_centers[cluster] = points[labels == cluster].mean(axis=0)
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift <= tol:
            final = squared_euclidean(points, centers)
            labels = final.argmin(axis=1)
            inertia = float(final[np.arange(points.shape[0]), labels].sum())
            return KMeansResult(labels, centers, inertia, iteration, True)
    final = squared_euclidean(points, centers)
    labels = final.argmin(axis=1)
    inertia = float(final[np.arange(points.shape[0]), labels].sum())
    return KMeansResult(labels, centers, inertia, max_iter, False)


def kmeans(
    points: np.ndarray,
    k: int,
    n_init: int = 10,
    max_iter: int = 100,
    tol: float = 1e-6,
    init: str = "k-means++",
    rng: np.random.Generator | int | None = None,
) -> KMeansResult:
    """Cluster ``(n, d)`` points into ``k`` groups, keeping the best of ``n_init`` runs.

    Parameters
    ----------
    points:
        Data matrix, one row per point.
    k:
        Number of clusters (1 <= k <= n).
    n_init:
        Independent restarts; the run with the lowest inertia wins.
    max_iter, tol:
        Lloyd-iteration budget and center-shift convergence tolerance.
    init:
        ``"k-means++"`` (default) or ``"random"`` seeding.
    rng:
        Seed or generator for reproducibility.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}, got {k}")
    if n_init < 1:
        raise ValueError("n_init must be positive")
    generator = np.random.default_rng(rng)

    best: KMeansResult | None = None
    for _ in range(n_init):
        centers = _init_centers(points, k, generator, init)
        result = _lloyd(points, centers, max_iter, tol)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
