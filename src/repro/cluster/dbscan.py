"""DBSCAN — a density-based member for the vanilla substrate.

Not used by the paper's own experiments, but a natural extra voice for
the robustness application of §2 ("combining the results of many
clustering algorithms"): DBSCAN contributes a density view that the
linkage family lacks, and its noise points (label ``-1`` is converted to
per-point singleton clusters) feed straight into aggregation's outlier
handling.

Plain O(n^2) implementation over the dense distance matrix — consistent
with the rest of the substrate and fine at the sizes the 2-D experiments
use.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .distances import euclidean_matrix

__all__ = ["dbscan"]


def dbscan(
    points: np.ndarray | None = None,
    eps: float = 0.5,
    min_samples: int = 5,
    distances: np.ndarray | None = None,
    noise_as_singletons: bool = True,
) -> np.ndarray:
    """Density-based clustering; returns integer labels.

    Parameters
    ----------
    points:
        ``(n, d)`` Euclidean data (or give ``distances``).
    eps:
        Neighbourhood radius.
    min_samples:
        Core-point threshold (neighbours within ``eps``, incl. itself).
    distances:
        Precomputed symmetric distance matrix instead of points.
    noise_as_singletons:
        When True (default) each noise point gets its own fresh label, so
        the result is a valid :class:`~repro.core.partition.Clustering`
        input; when False noise keeps the sklearn-style ``-1``.
    """
    if (points is None) == (distances is None):
        raise ValueError("provide exactly one of points or distances")
    if eps <= 0:
        raise ValueError("eps must be positive")
    if min_samples < 1:
        raise ValueError("min_samples must be at least 1")
    if distances is None:
        distances = euclidean_matrix(np.asarray(points, dtype=np.float64))
    n = distances.shape[0]

    neighbours = [np.flatnonzero(distances[i] <= eps) for i in range(n)]
    core = np.array([len(nbrs) >= min_samples for nbrs in neighbours])

    labels = np.full(n, -1, dtype=np.int64)
    cluster = 0
    for seed in range(n):
        if labels[seed] != -1 or not core[seed]:
            continue
        # Breadth-first expansion from the core seed.
        labels[seed] = cluster
        queue = deque(neighbours[seed].tolist())
        while queue:
            point = queue.popleft()
            if labels[point] == -1:
                labels[point] = cluster
                if core[point]:
                    queue.extend(neighbours[point].tolist())
        cluster += 1

    if noise_as_singletons:
        noise = np.flatnonzero(labels == -1)
        labels[noise] = cluster + np.arange(noise.size)
    return labels
