"""Cluster-quality metrics of the paper's Section 5, plus standard extras.

The two measures the paper's tables report:

* **classification error** ``E_C`` — the fraction of objects outside their
  cluster's majority class (the paper stresses this is only *indicative*;
  no actual classification is performed).
* **disagreement error** ``E_D`` — the aggregation objective ``D(C)``
  itself, computed by :func:`repro.core.total_disagreement`.

This module implements E_C, the confusion matrix of Table 1, and the
standard external indices (purity, Rand, adjusted Rand, NMI, variation of
information) used in the wider consensus-clustering literature — handy for
the robustness experiments where a ground truth exists.
"""

from __future__ import annotations

import numpy as np

from ..core.labels import contingency_table
from ..core.partition import Clustering

__all__ = [
    "classification_error",
    "confusion_matrix",
    "purity",
    "rand_index",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "variation_of_information",
    "cluster_size_summary",
]


def _as_labels(clustering: Clustering | np.ndarray) -> np.ndarray:
    if isinstance(clustering, Clustering):
        return clustering.labels
    arr = np.asarray(clustering)
    if arr.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    return arr


def confusion_matrix(
    clustering: Clustering | np.ndarray, classes: np.ndarray
) -> np.ndarray:
    """Rows = classes, columns = clusters — the layout of the paper's Table 1."""
    return contingency_table(np.asarray(classes), _as_labels(clustering))


def classification_error(
    clustering: Clustering | np.ndarray, classes: np.ndarray
) -> float:
    """``E_C = sum_i (s_i - m_i) / n``: objects outside their cluster's majority class.

    0 means every cluster is class-pure (trivially achieved by singletons —
    which is why the paper reports cluster counts alongside).
    """
    table = confusion_matrix(clustering, classes)
    n = int(table.sum())
    if n == 0:
        raise ValueError("no objects to score")
    majority = table.max(axis=0).sum()
    return float(n - majority) / n


def purity(clustering: Clustering | np.ndarray, classes: np.ndarray) -> float:
    """Fraction of objects in their cluster's majority class (1 - E_C)."""
    return 1.0 - classification_error(clustering, classes)


def _pair_counts(table: np.ndarray) -> tuple[float, float, float, float]:
    """(pairs co-clustered in both, in first only, in second only, total pairs)."""
    n = table.sum()
    total = n * (n - 1) / 2.0
    both = float((table * (table - 1) // 2).sum())
    first = float((table.sum(axis=1) * (table.sum(axis=1) - 1) // 2).sum())
    second = float((table.sum(axis=0) * (table.sum(axis=0) - 1) // 2).sum())
    return both, first - both, second - both, total


def rand_index(first: Clustering | np.ndarray, second: Clustering | np.ndarray) -> float:
    """Fraction of object pairs on which the two clusterings agree."""
    table = contingency_table(_as_labels(first), _as_labels(second))
    both, first_only, second_only, total = _pair_counts(table)
    if total == 0:
        return 1.0
    agreements = total - first_only - second_only
    return agreements / total


def adjusted_rand_index(
    first: Clustering | np.ndarray, second: Clustering | np.ndarray
) -> float:
    """Rand index corrected for chance (Hubert & Arabie)."""
    table = contingency_table(_as_labels(first), _as_labels(second))
    n = table.sum()
    if n < 2:
        return 1.0
    sum_cells = float((table * (table - 1) // 2).sum())
    sum_rows = float((table.sum(axis=1) * (table.sum(axis=1) - 1) // 2).sum())
    sum_cols = float((table.sum(axis=0) * (table.sum(axis=0) - 1) // 2).sum())
    total = n * (n - 1) / 2.0
    expected = sum_rows * sum_cols / total
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        return 1.0
    return (sum_cells - expected) / (maximum - expected)


def _entropy(counts: np.ndarray) -> float:
    probabilities = counts[counts > 0] / counts.sum()
    return float(-(probabilities * np.log(probabilities)).sum())


def normalized_mutual_information(
    first: Clustering | np.ndarray, second: Clustering | np.ndarray
) -> float:
    """NMI with arithmetic-mean normalization; 1 for identical partitions."""
    table = contingency_table(_as_labels(first), _as_labels(second)).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 1.0
    joint = table / n
    row = joint.sum(axis=1)
    col = joint.sum(axis=0)
    outer = row[:, None] * col[None, :]
    nonzero = joint > 0
    mutual = float((joint[nonzero] * np.log(joint[nonzero] / outer[nonzero])).sum())
    h_first = _entropy(table.sum(axis=1))
    h_second = _entropy(table.sum(axis=0))
    denominator = (h_first + h_second) / 2.0
    if denominator == 0.0:
        return 1.0
    return mutual / denominator


def variation_of_information(
    first: Clustering | np.ndarray, second: Clustering | np.ndarray
) -> float:
    """Meila's VI metric: ``H(1) + H(2) - 2 I(1; 2)``; 0 for identical partitions."""
    table = contingency_table(_as_labels(first), _as_labels(second)).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 0.0
    joint = table / n
    row = joint.sum(axis=1)
    col = joint.sum(axis=0)
    outer = row[:, None] * col[None, :]
    nonzero = joint > 0
    mutual = float((joint[nonzero] * np.log(joint[nonzero] / outer[nonzero])).sum())
    return max(0.0, _entropy(table.sum(axis=1)) + _entropy(table.sum(axis=0)) - 2.0 * mutual)


def cluster_size_summary(clustering: Clustering | np.ndarray) -> dict[str, float]:
    """Size statistics of a clustering (for reports)."""
    labels = _as_labels(clustering)
    sizes = np.bincount(labels)
    sizes = sizes[sizes > 0]
    return {
        "clusters": int(sizes.size),
        "largest": int(sizes.max()),
        "smallest": int(sizes.min()),
        "singletons": int((sizes == 1).sum()),
        "median": float(np.median(sizes)),
    }
