"""Evaluation metrics (classification error, disagreement error, external indices)."""

from ..core.distance import total_disagreement as disagreement_error
from .profiles import ClusterProfile, describe_clusters
from .quality import (
    adjusted_rand_index,
    classification_error,
    cluster_size_summary,
    confusion_matrix,
    normalized_mutual_information,
    purity,
    rand_index,
    variation_of_information,
)

__all__ = [
    "disagreement_error",
    "ClusterProfile",
    "describe_clusters",
    "adjusted_rand_index",
    "classification_error",
    "cluster_size_summary",
    "confusion_matrix",
    "normalized_mutual_information",
    "purity",
    "rand_index",
    "variation_of_information",
]
