"""Cluster profiling: describing consensus clusters in attribute terms.

The paper's Census discussion (§5.2) inspects the discovered clusters by
hand: "many corresponded to distinct social groups, for example, male
Eskimos occupied with farming-fishing, married Asian-Pacific islander
females, unmarried executive-manager females with high-education
degrees".  :func:`describe_clusters` automates that inspection — for each
cluster it reports the attribute values that are both *prevalent* inside
the cluster and *distinctive* relative to the whole dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.labels import MISSING
from ..core.partition import Clustering
from ..datasets.categorical import CategoricalDataset

__all__ = ["ClusterProfile", "describe_clusters"]


@dataclass
class ClusterProfile:
    """A human-readable description of one cluster."""

    cluster: int
    size: int
    traits: list[tuple[str, str, float]]  # (attribute, value, prevalence)

    def summary(self) -> str:
        described = ", ".join(
            f"{attribute}={value} ({prevalence:.0%})"
            for attribute, value, prevalence in self.traits
        )
        return f"cluster {self.cluster} (n={self.size}): {described or '(no distinctive trait)'}"


def describe_clusters(
    dataset: CategoricalDataset,
    clustering: Clustering,
    min_prevalence: float = 0.6,
    min_lift: float = 1.5,
    max_traits: int = 4,
    min_size: int = 2,
) -> list[ClusterProfile]:
    """Profile every cluster of a categorical dataset.

    A value is a *trait* of a cluster when at least ``min_prevalence`` of
    the cluster's rows carry it and its prevalence is at least
    ``min_lift`` times the value's overall frequency (so near-constant
    attributes do not describe anything).  Traits are ranked by lift.

    Parameters
    ----------
    dataset:
        The categorical table the clustering covers.
    clustering:
        A clustering of the dataset's rows.
    min_prevalence, min_lift, max_traits:
        Trait selection knobs.
    min_size:
        Skip clusters smaller than this (outliers are better shown raw).
    """
    if clustering.n != dataset.n:
        raise ValueError("clustering must cover the dataset's rows")
    profiles: list[ClusterProfile] = []
    data = dataset.data
    overall: list[np.ndarray] = []
    for j in range(dataset.m):
        column = data[:, j]
        present = column != MISSING
        arity = int(column.max()) + 1 if column.max() >= 0 else 1
        frequency = np.bincount(column[present], minlength=arity).astype(np.float64)
        total = frequency.sum()
        overall.append(frequency / total if total else frequency)

    for cluster in range(clustering.k):
        members = clustering.members(cluster)
        if members.size < min_size:
            continue
        traits: list[tuple[str, str, float, float]] = []
        for j in range(dataset.m):
            column = data[members, j]
            present = column != MISSING
            if not present.any():
                continue
            values, counts = np.unique(column[present], return_counts=True)
            top = int(np.argmax(counts))
            value = int(values[top])
            prevalence = counts[top] / present.sum()
            baseline = overall[j][value] if value < overall[j].size else 0.0
            lift = prevalence / baseline if baseline > 0 else np.inf
            if prevalence >= min_prevalence and lift >= min_lift:
                name = (
                    dataset.value_names[j][value]
                    if dataset.value_names is not None
                    else str(value)
                )
                traits.append((dataset.attribute_names[j], name, float(prevalence), float(lift)))
        traits.sort(key=lambda item: -item[3])
        profiles.append(
            ClusterProfile(
                cluster=cluster,
                size=int(members.size),
                traits=[(a, v, p) for a, v, p, _ in traits[:max_traits]],
            )
        )
    profiles.sort(key=lambda profile: -profile.size)
    return profiles
