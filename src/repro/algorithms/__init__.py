"""The paper's aggregation / correlation-clustering algorithms (§4)."""

from .agglomerative import agglomerative
from .annealing import simulated_annealing
from .balls import PRACTICAL_ALPHA, THEORY_ALPHA, balls
from .best_clustering import best_clustering, column_as_candidate
from .exact import enumerate_partitions, exact_optimum
from .furthest import furthest
from .local_search import local_search
from .pivot import CMSY_A, CMSY_B, DEFAULT_LP_THRESHOLD, cmsy, cmsy_rounding, pivot
from .sampling import SamplingDetails, default_sample_size, sampling

__all__ = [
    "agglomerative",
    "simulated_annealing",
    "balls",
    "THEORY_ALPHA",
    "PRACTICAL_ALPHA",
    "best_clustering",
    "column_as_candidate",
    "exact_optimum",
    "enumerate_partitions",
    "furthest",
    "local_search",
    "pivot",
    "cmsy",
    "cmsy_rounding",
    "CMSY_A",
    "CMSY_B",
    "DEFAULT_LP_THRESHOLD",
    "sampling",
    "SamplingDetails",
    "default_sample_size",
]
