"""Simulated annealing for clustering aggregation (Filkov & Skiena [13]).

The paper's related-work section cites Filkov and Skiena's simulated-
annealing heuristic for the same disagreement objective (they applied it
to consensus clustering of microarray data).  We include it both as a
comparison point and as a stronger-but-slower alternative to LOCALSEARCH:
the move set is the same (relocate one node to another cluster or to a
fresh singleton), but worsening moves are accepted with probability
``exp(-delta / T)`` under a geometric cooling schedule, letting the search
escape the local optima LOCALSEARCH stops at.

Move deltas are evaluated in O(1) with the same ``M(v, C_i)`` bookkeeping
(:class:`~repro.core.objective.MoveEvaluator`) the paper introduces for
LOCALSEARCH, so a full annealing run costs ``O(moves * n)`` for the mass
updates.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import CorrelationInstance
from ..core.objective import MoveEvaluator
from ..core.partition import Clustering
from ..registry import register_method
from .local_search import local_search

__all__ = ["simulated_annealing"]


@register_method("annealing", kind="instance", stochastic=True, supports_weights=True)
def simulated_annealing(
    instance: CorrelationInstance,
    initial: Clustering | None = None,
    start_temperature: float = 1.0,
    cooling: float = 0.95,
    sweeps_per_temperature: int = 4,
    minimum_temperature: float = 1e-3,
    polish: bool = True,
    rng: np.random.Generator | int | None = 0,
) -> Clustering:
    """Minimize the correlation cost by simulated annealing.

    Parameters
    ----------
    instance:
        Pairwise distances in [0, 1].
    initial:
        Starting clustering (default: all singletons).
    start_temperature, cooling, minimum_temperature:
        Geometric schedule ``T <- cooling * T`` down to the minimum.
        Deltas are per-pair costs, so temperatures of order 1 accept most
        moves and 1e-3 accepts almost none.
    sweeps_per_temperature:
        Node sweeps at each temperature level.
    polish:
        Finish with a LOCALSEARCH descent (annealing ends near, but not
        at, a local optimum).
    rng:
        Seed or generator (annealing is inherently randomized).
    """
    if not 0.0 < cooling < 1.0:
        raise ValueError(f"cooling must be in (0, 1), got {cooling}")
    if start_temperature <= 0 or minimum_temperature <= 0:
        raise ValueError("temperatures must be positive")
    if start_temperature < minimum_temperature:
        raise ValueError("start_temperature must be >= minimum_temperature")
    n = instance.n
    if initial is None:
        initial = Clustering.singletons(n)
    if initial.n != n:
        raise ValueError("initial clustering must cover every object of the instance")
    generator = np.random.default_rng(rng)
    evaluator = MoveEvaluator(instance, initial)

    # Track the best labels seen; annealing may wander away from them.
    best_labels = initial.labels.astype(np.int64).copy()
    best_cost = instance.cost(initial)
    current_cost = best_cost

    temperature = start_temperature
    while temperature >= minimum_temperature:
        for _ in range(sweeps_per_temperature):
            order = generator.permutation(n)
            for v in order:
                v = int(v)
                origin = evaluator.detach(v)
                origin_active = evaluator.is_active(origin)
                slots, scores, singleton_score = evaluator.placement_scores(v)
                if origin_active:
                    stay = evaluator.score_of(v, origin)
                else:
                    stay = singleton_score

                # Propose one uniformly random destination != origin.
                options = slots.tolist()
                option_scores = scores.tolist()
                if origin_active and origin in options:
                    position = options.index(origin)
                    options.pop(position)
                    option_scores.pop(position)
                if origin_active:
                    # Opening a fresh singleton is a real move only when v
                    # was not alone already.
                    options.append(-1)
                    option_scores.append(singleton_score)
                if not options:
                    evaluator.attach_singleton(v)  # v was a lone singleton
                    continue
                choice = int(generator.integers(len(options)))
                destination = options[choice]
                delta = option_scores[choice] - stay

                accept = delta <= 0 or generator.random() < np.exp(-delta / temperature)
                if accept:
                    if destination == -1:
                        evaluator.attach_singleton(v)
                    else:
                        evaluator.attach(v, destination)
                    current_cost += delta
                    if current_cost < best_cost - 1e-12:
                        best_cost = current_cost
                        best_labels = evaluator.current_labels()
                else:
                    if origin_active:
                        evaluator.attach(v, origin)
                    else:
                        evaluator.attach_singleton(v)
        temperature *= cooling

    best = Clustering(best_labels)
    if polish:
        best = local_search(instance, initial=best)
    return best
