"""FURTHEST — top-down furthest-first partitioning (§4).

Inspired by the furthest-first traversal of Hochbaum and Shmoys for
p-centers.  Starting from the single-cluster solution, the two mutually
furthest nodes become centers; every node is assigned to the center that
incurs the least cost, the correlation cost of the new solution is
computed, and the process repeats — each round adding as new center the
node furthest from the existing centers — until adding a center no longer
reduces the cost.  The solution of the *previous* round is returned.

Complexity is ``O(k^2 n)`` over the ``O(m n^2)`` distance matrix, where
``k`` is the number of centers tried.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import CorrelationInstance
from ..core.partition import Clustering
from ..obs.metrics import inc
from ..obs.profile import phase
from ..registry import register_method

__all__ = ["furthest"]


@register_method("furthest", kind="instance", supports_weights=True)
def furthest(
    instance: CorrelationInstance,
    max_k: int | None = None,
    force_k: int | None = None,
) -> Clustering:
    """Run the FURTHEST algorithm on a correlation instance.

    Parameters
    ----------
    instance:
        Pairwise distances in [0, 1].
    max_k:
        Optional cap on the number of centers (the paper's algorithm is
        parameter-free and stops on the first non-improving round).
    force_k:
        Return exactly ``force_k`` clusters: keep generating furthest-first
        centers regardless of the cost trend (the §2 "if the user insists
        on a predefined number of clusters" variant).
    """
    backend = instance.backend
    n = instance.n
    if force_k is not None:
        if max_k is not None:
            raise ValueError("give at most one of max_k and force_k")
        if not 1 <= force_k <= n:
            raise ValueError(f"force_k must be in 1..{n}, got {force_k}")
    if n == 1:
        return Clustering.single_cluster(1)
    cap = n if max_k is None else min(max_k, n)
    if force_k is not None:
        cap = force_k

    best = Clustering.single_cluster(n)
    best_cost = instance.cost(best)
    if cap < 2:
        return best

    with phase("furthest", n=n, cap=cap) as furthest_span:
        # Initial centers: the furthest pair (blocked row-major argmax).
        first, second = backend.argmax_entry()
        if first == second:
            # X is identically zero (e.g. identical input clusterings): argmax
            # lands on the diagonal and would duplicate a center, splitting
            # node 0 into a phantom cluster.  Any two distinct nodes are
            # equally (non-)far apart, so pick the canonical pair.
            first, second = 0, 1
        centers = [int(first), int(second)]

        rounds = 0
        while True:
            rounds += 1
            furthest_span.set(rounds=rounds, centers=len(centers))
            inc("furthest.rounds")
            center_columns = backend.columns(centers)  # (n, |centers|)
            assignment = np.argmin(center_columns, axis=1)
            # Each center belongs to its own cluster (distance 0 to itself, and
            # argmin ties resolve to the first column — force exactness).
            for rank, center in enumerate(centers):
                assignment[center] = rank
            candidate = Clustering(assignment)
            cost = instance.cost(candidate)
            if force_k is not None:
                if len(centers) >= cap:
                    return candidate
            elif cost < best_cost:
                best, best_cost = candidate, cost
            else:
                return best
            if force_k is None and len(centers) >= cap:
                return best

            # Next center: the node furthest from all existing centers.
            distance_to_centers = center_columns.min(axis=1)
            distance_to_centers[centers] = -1.0
            centers.append(int(np.argmax(distance_to_centers)))
