"""AGGLOMERATIVE — bottom-up average-linkage correlation clustering (§4).

Every node starts as a singleton; the pair of clusters with the smallest
*average* inter-cluster distance is merged as long as that average is below
1/2.  When no pair of clusters has average distance < 1/2, merging any pair
would increase the correlation cost, so the algorithm stops.  The produced
clusters have the property that the average distance between any two member
nodes is at most 1/2 — "the opinion of the majority is respected on
average" — and for ``m = 3`` input clusterings the result is a
2-approximation.

The implementation keeps the full cluster-to-cluster average-distance
matrix and a nearest-neighbour cache per cluster.  Average linkage obeys
the Lance–Williams recurrence

    d(A ∪ B, C) = (|A| d(A,C) + |B| d(B,C)) / (|A| + |B|)

so each merge costs one vectorized row update plus cache repair, giving
``O(n^2)`` time in practice (and ``O(n^2)`` memory for the matrix copy).

If the user insists on a fixed number of clusters (as the paper notes in
§2), pass ``force_k``: merging then continues past the 1/2 threshold until
``force_k`` clusters remain.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import CorrelationInstance
from ..core.partition import Clustering
from ..obs.metrics import inc
from ..obs.profile import phase
from ..registry import register_method

__all__ = ["agglomerative"]


@register_method("agglomerative", kind="instance", supports_weights=True)
def agglomerative(
    instance: CorrelationInstance,
    threshold: float = 0.5,
    force_k: int | None = None,
) -> Clustering:
    """Run average-linkage agglomeration on a correlation instance.

    Parameters
    ----------
    instance:
        Pairwise distances in [0, 1].
    threshold:
        Merge while the closest pair's average distance is strictly below
        this value (1/2 in the paper).
    force_k:
        If given, ignore the threshold-based stop and merge (in the same
        closest-first order) until exactly ``force_k`` clusters remain.
    """
    n = instance.n
    if force_k is not None and not 1 <= force_k <= n:
        raise ValueError(f"force_k must be in 1..{n}, got {force_k}")
    if n == 1:
        return Clustering.single_cluster(1)

    with phase("agglomerative.init", n=n):
        # Working copy: float64 for exactness on small instances, float32 to
        # halve memory at paper scale.  Average linkage mutates the full
        # cluster-distance matrix, so even a lazy instance materializes here.
        dtype = np.float64 if n <= 4096 else np.float32
        D = instance.backend.materialize(dtype, copy=True)
        np.fill_diagonal(D, np.inf)

        active = np.ones(n, dtype=bool)
        # On weighted (atom) instances each node starts as a cluster of its
        # duplicate multiplicity; average linkage then matches the expanded
        # instance (whose duplicates would merge first at height 0).
        sizes = instance.effective_weights().copy()
        labels = np.arange(n, dtype=np.int64)
        # Nearest-neighbour cache: nn_val[i] = min_j D[i, j], nn_idx[i] = argmin.
        nn_idx = np.argmin(D, axis=1)
        nn_val = D[np.arange(n), nn_idx]

    remaining = n
    target = 1 if force_k is None else force_k
    with phase("agglomerative.merge", n=n) as merge_span:
        while remaining > target:
            candidates = np.flatnonzero(active)
            pos = int(np.argmin(nn_val[candidates]))
            i = int(candidates[pos])
            j = int(nn_idx[i])
            value = float(nn_val[i])
            if force_k is None and value >= threshold:
                break

            # Merge j into i with the average-linkage Lance-Williams update.
            si, sj = sizes[i], sizes[j]
            merged_row = (si * D[i] + sj * D[j]) / (si + sj)
            D[i] = merged_row
            D[:, i] = merged_row
            D[i, i] = np.inf
            D[j, :] = np.inf
            D[:, j] = np.inf
            sizes[i] = si + sj
            active[j] = False
            labels[labels == j] = i
            remaining -= 1
            if remaining == 1:
                break

            # Repair the nearest-neighbour cache.  Row i changed entirely; any
            # row whose cached neighbour was i or j may now be stale; all other
            # rows can only have *improved* towards i.
            row_i = D[i]
            nn_idx[i] = int(np.argmin(row_i))
            nn_val[i] = row_i[nn_idx[i]]

            stale = np.flatnonzero(active & ((nn_idx == i) | (nn_idx == j)))
            for r in stale:
                if r == i:
                    continue
                row = D[r]
                nn_idx[r] = int(np.argmin(row))
                nn_val[r] = row[nn_idx[r]]

            better = active.copy()
            better[i] = False
            improved = np.flatnonzero(better & (D[:, i] < nn_val))
            nn_idx[improved] = i
            nn_val[improved] = D[improved, i]
        merges = n - remaining
        merge_span.set(merges=merges, clusters=remaining)
    inc("agglomerative.merges", merges)
    return Clustering(labels)
