"""LOCALSEARCH — best-move node relocation (§4).

Starting from any clustering (a random partition, all singletons, or the
output of another algorithm), repeatedly sweep over the nodes; each node is
re-placed into the cluster — existing, or a fresh singleton — that yields
the minimum cost, using the ``M(v, C_i)`` bookkeeping of
:class:`~repro.core.objective.MoveEvaluator` so each candidate move costs
O(1).  A sweep is one vectorized scan for nodes whose best move improves,
followed by re-verified relocations of just those nodes.  The search stops
at a local optimum: a sweep with no strictly-improving move.

The paper uses LOCALSEARCH both as a standalone algorithm and as a
post-processing step for the other algorithms (see the A2 ablation bench);
it reports the best objective values of all heuristics, at the price of a
potentially large number of sweeps, hence ``O(I n^2)`` time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import CorrelationInstance
from ..core.objective import MoveEvaluator
from ..core.partition import Clustering
from ..obs.metrics import inc
from ..obs.profile import phase
from ..registry import register_method

__all__ = ["local_search", "refine", "LocalSearchDetails"]


@dataclass
class LocalSearchDetails:
    """Diagnostics of one :func:`local_search` run.

    ``sweeps`` counts full passes over the nodes (including the final
    no-improvement pass that certifies the local optimum); ``moves``
    counts strictly-improving relocations.  A warm start from a clustering
    that is already locally optimal reports ``moves == 0``.
    """

    sweeps: int = 0
    moves: int = 0

#: Minimum strict improvement for a move, guarding against float noise
#: cycles (scores are small integers for exact aggregation instances).
_EPS = 1e-9


def refine(
    evaluator: MoveEvaluator,
    max_sweeps: int = 200,
    rng: np.random.Generator | int | None = None,
) -> LocalSearchDetails:
    """Drive an existing :class:`MoveEvaluator` to a local optimum.

    Each sweep first runs the vectorized O(n·k) candidate scan
    (:meth:`MoveEvaluator.candidate_movers`) and then re-verifies and
    applies only those candidates, so a sweep over a near-optimal
    clustering costs one matrix scan plus O(n) per node that actually
    moves — instead of n Python-level relocation attempts.  Moves enabled
    by other moves within the same sweep are picked up by the next scan;
    the search still terminates exactly at a single-node-move local
    optimum.  The streaming engine calls this directly to reuse one
    evaluator across updates; :func:`local_search` wraps it for the batch
    entry point.
    """
    generator = None if rng is None else np.random.default_rng(rng)
    details = LocalSearchDetails()
    with phase("localsearch.refine", n=evaluator.n) as refine_span:
        for _ in range(max_sweeps):
            details.sweeps += 1
            candidates = evaluator.candidate_movers(eps=_EPS)
            if generator is not None and candidates.size:
                generator.shuffle(candidates)
            improved = False
            for v in candidates:
                # Scores go stale as earlier candidates move, so each candidate
                # is re-verified in place; only a node that still improves pays
                # the O(n) relocation.
                if evaluator.relocate_if_better(int(v), eps=_EPS):
                    improved = True
                    details.moves += 1
            if not improved:
                break
        refine_span.set(sweeps=details.sweeps, moves=details.moves)
    inc("localsearch.sweeps", details.sweeps)
    inc("localsearch.moves", details.moves)
    return details


@register_method(
    "local-search", kind="instance", stochastic=True, supports_weights=True,
    exclude=("return_details",),
)
def local_search(
    instance: CorrelationInstance,
    initial: Clustering | None = None,
    max_sweeps: int = 200,
    rng: np.random.Generator | int | None = None,
    return_details: bool = False,
) -> Clustering | tuple[Clustering, LocalSearchDetails]:
    """Run local search to a single-node-move local optimum.

    Parameters
    ----------
    instance:
        Pairwise distances in [0, 1].
    initial:
        Starting clustering; defaults to all singletons (a neutral,
        parameter-free start).  Pass another algorithm's output to use
        LOCALSEARCH as a post-processing step.
    max_sweeps:
        Safety cap on full passes over the nodes.
    rng:
        If given, each sweep's candidate movers are visited in a freshly
        shuffled order; by default in index order (deterministic).
    return_details:
        Also return a :class:`LocalSearchDetails` with sweep and move
        counts (used by the streaming engine's observability hook).
    """
    n = instance.n
    if initial is None:
        initial = Clustering.singletons(n)
    if initial.n != n:
        raise ValueError("initial clustering must cover every object of the instance")
    with phase("localsearch.init", n=n):
        evaluator = MoveEvaluator(instance, initial)
    details = refine(evaluator, max_sweeps=max_sweeps, rng=rng)
    result = evaluator.clustering()
    if return_details:
        return result, details
    return result
