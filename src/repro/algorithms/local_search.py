"""LOCALSEARCH — best-move node relocation (§4).

Starting from any clustering (a random partition, all singletons, or the
output of another algorithm), repeatedly sweep over the nodes; each node is
tentatively removed and re-placed into the cluster — existing, or a fresh
singleton — that yields the minimum cost, using the ``M(v, C_i)``
bookkeeping of :class:`~repro.core.objective.MoveEvaluator` so each
candidate move costs O(1).  The search stops at a local optimum: a full
sweep with no strictly-improving move.

The paper uses LOCALSEARCH both as a standalone algorithm and as a
post-processing step for the other algorithms (see the A2 ablation bench);
it reports the best objective values of all heuristics, at the price of a
potentially large number of sweeps, hence ``O(I n^2)`` time.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import CorrelationInstance
from ..core.objective import MoveEvaluator
from ..core.partition import Clustering

__all__ = ["local_search"]

#: Minimum strict improvement for a move, guarding against float noise
#: cycles (scores are small integers for exact aggregation instances).
_EPS = 1e-9


def local_search(
    instance: CorrelationInstance,
    initial: Clustering | None = None,
    max_sweeps: int = 200,
    rng: np.random.Generator | int | None = None,
) -> Clustering:
    """Run local search to a single-node-move local optimum.

    Parameters
    ----------
    instance:
        Pairwise distances in [0, 1].
    initial:
        Starting clustering; defaults to all singletons (a neutral,
        parameter-free start).  Pass another algorithm's output to use
        LOCALSEARCH as a post-processing step.
    max_sweeps:
        Safety cap on full passes over the nodes.
    rng:
        If given, nodes are visited in a freshly shuffled order each sweep;
        by default they are visited in index order (deterministic).
    """
    n = instance.n
    if initial is None:
        initial = Clustering.singletons(n)
    if initial.n != n:
        raise ValueError("initial clustering must cover every object of the instance")
    evaluator = MoveEvaluator(instance, initial)
    generator = None if rng is None else np.random.default_rng(rng)

    for _ in range(max_sweeps):
        improved = False
        order = np.arange(n)
        if generator is not None:
            generator.shuffle(order)
        for v in order:
            origin = evaluator.detach(int(v))
            slots, scores, singleton_score = evaluator.placement_scores(int(v))
            origin_active = evaluator.is_active(origin)
            if origin_active:
                stay_score = evaluator.score_of(int(v), origin)
            else:
                stay_score = singleton_score
            best_slot, best_score = -1, singleton_score
            if slots.size:
                pos = int(np.argmin(scores))
                if scores[pos] < best_score:
                    best_slot, best_score = int(slots[pos]), float(scores[pos])
            if best_score < stay_score - _EPS:
                improved = True
                if best_slot == -1:
                    evaluator.attach_singleton(int(v))
                else:
                    evaluator.attach(int(v), best_slot)
            elif origin_active:
                evaluator.attach(int(v), origin)
            else:
                evaluator.attach_singleton(int(v))
        if not improved:
            break
    return evaluator.clustering()
