"""SAMPLING — scaling clustering aggregation to large datasets (§4.1).

The quadratic distance matrix makes the base algorithms inapplicable to
large datasets.  SAMPLING wraps any of them:

1. **Pre-processing** — draw a uniform sample ``S`` of the objects, build
   the correlation instance *of the sample only*, and aggregate it with the
   inner algorithm.  A Chernoff argument shows an ``O(log n)`` sample hits
   every cluster containing a constant fraction of the data.
2. **Assignment** — every non-sampled object is placed into the cheapest
   sample cluster, or into a singleton when no cluster is attractive
   (average distance below 1/2).  Costs come from
   :class:`~repro.core.objective.ClusterCountTables`, so this phase is
   linear in the data size and never materializes a full distance matrix.
3. **Singleton round-up** — objects left as singletons (the paper observed
   there are too many of them) are collected and aggregated again among
   themselves; if even the singleton set is too large, SAMPLING recurses.

The function accepts either a raw ``(n, m)`` label matrix (the scalable
path used for the Census and 1M-point experiments) or a prebuilt
:class:`~repro.core.instance.CorrelationInstance` (convenient in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.instance import CorrelationInstance
from ..core.labels import validate_label_matrix
from ..core.objective import ClusterCountTables
from ..core.partition import Clustering
from ..obs.metrics import inc
from ..obs.trace import span
from ..registry import SolveContext, register_method, resolve_instance_method

__all__ = ["sampling", "SamplingDetails", "default_sample_size"]

InnerAlgorithm = Callable[[CorrelationInstance], Clustering]

#: Assignment-phase block size (rows scored per vectorized batch).
_ASSIGN_BLOCK = 8192


@dataclass
class SamplingDetails:
    """Diagnostics of one SAMPLING run (see :func:`sampling`).

    On weighted (atom) inputs ``assigned_to_clusters`` and
    ``leftover_singletons`` count *expanded* objects — each atom
    contributes its multiplicity — so the two numbers are comparable
    across collapsed and uncollapsed runs of the same data.
    """

    sample_indices: np.ndarray
    sample_clusters: int
    assigned_to_clusters: int
    leftover_singletons: int
    recursed: bool


def default_sample_size(n: int) -> int:
    """Paper-guided default: logarithmic in ``n`` with a practical floor.

    The theory requires ``O(log n)`` to hit all large clusters with high
    probability; the paper's experiments use samples of 1000–4000, so the
    default is ``min(n, max(200, 65 * log2(n)))`` — about 1000 for
    ``n = 50K`` and still only ~1300 for one million objects.
    """
    if n <= 1:
        return n
    return int(min(n, max(200, round(65 * np.log2(n)))))


def _solve_sampling(ctx: SolveContext) -> Clustering:
    # Relocated verbatim from aggregate()'s old "sampling" branch: the
    # ``inner`` pop and the atom-clamped ``sample_size`` mutate ctx.params
    # in place, exactly as the dispatch layer always has.
    params = ctx.params
    inner = resolve_instance_method(params.pop("inner", "agglomerative"))
    if ctx.atoms is not None:
        if params.get("sample_size") is not None:
            # The caller sized the sample against the original n;
            # collapsing may leave fewer atoms than that, which
            # simply means "sample every atom".
            params["sample_size"] = min(int(params["sample_size"]), ctx.atoms.n_atoms)
        return ctx.atoms.expand(
            sampling(
                ctx.atoms.matrix,
                inner,
                p=ctx.p,
                weights=ctx.atoms.weights.astype(np.float64),
                n_jobs=ctx.n_jobs,
                **params,
            )
        )
    data = ctx.matrix if ctx.matrix is not None else ctx.instance
    if data is None:  # unreachable: inputs is always one of the three forms
        raise ValueError("method 'sampling' needs clusterings or an instance")
    return sampling(data, inner, p=ctx.p, n_jobs=ctx.n_jobs, **params)


@register_method(
    "sampling",
    kind="matrix",
    stochastic=True,
    supports_weights=True,
    exclude=("p", "weights", "n_jobs", "return_details"),
    defaults={"inner": "agglomerative"},
    solver=_solve_sampling,
)
def sampling(
    data: np.ndarray | CorrelationInstance,
    inner: InnerAlgorithm,
    sample_size: int | None = None,
    p: float = 0.5,
    rng: np.random.Generator | int | None = None,
    max_singleton_subproblem: int = 4000,
    return_details: bool = False,
    weights: np.ndarray | None = None,
    n_jobs: int | None = 1,
) -> Clustering | tuple[Clustering, SamplingDetails]:
    """Run the SAMPLING meta-algorithm.

    Parameters
    ----------
    data:
        ``(n, m)`` label matrix (scalable path) or a full
        :class:`CorrelationInstance` (testing convenience).
    inner:
        The aggregation algorithm run on sub-instances, e.g.
        ``lambda inst: agglomerative(inst)`` or ``furthest``.
    sample_size:
        Sample size; defaults to :func:`default_sample_size`.  An
        explicit value larger than ``n`` (or, on weighted inputs, larger
        than the number of rows with non-zero weight) raises a
        ``ValueError`` naming both quantities.
    p:
        Missing-value coin-flip probability (label-matrix path only).
    rng:
        Seed or generator for the uniform sample.
    max_singleton_subproblem:
        Singleton sets larger than this are handled by a recursive
        SAMPLING call instead of a quadratic sub-instance.
    return_details:
        Also return :class:`SamplingDetails`.
    weights:
        Per-row multiplicities for duplicate-collapsed (atom) matrices:
        the sample is drawn proportionally to multiplicity (i.e. uniform
        over the underlying objects) and all cluster masses are weighted.
        Label-matrix path only.
    n_jobs:
        Worker count for the phase-1 sub-instance build and the phase-2
        assignment loop (``None`` consults ``REPRO_JOBS``; see
        :func:`repro.parallel.resolve_jobs`).  Any value is bit-identical
        to the serial run.
    """
    if isinstance(data, CorrelationInstance):
        if weights is not None:
            raise ValueError("weights are only supported on the label-matrix path")
        matrix = None
        instance = data
        n = instance.n
    else:
        matrix = np.asarray(data)
        validate_label_matrix(matrix)
        instance = None
        n = matrix.shape[0]
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (n,):
                raise ValueError("weights must give one multiplicity per row")
            if np.any(weights < 0.0):
                raise ValueError("weights must be non-negative multiplicities")
    generator = np.random.default_rng(rng)
    if sample_size is None:
        size = default_sample_size(n)
    else:
        size = int(sample_size)
        if size > n:
            raise ValueError(
                f"sample_size={size} exceeds the number of objects n={n}; "
                "pass sample_size <= n (or None for the paper default)"
            )
    if size < 1:
        raise ValueError(f"sample_size must be at least 1, got {size}")
    if weights is not None:
        # Without replacement, only rows with non-zero weight are drawable;
        # numpy's own message ("Fewer non-zero entries in p than size") names
        # neither the size nor the support, so resolve the conflict here.
        support = int(np.count_nonzero(weights))
        if support == 0:
            raise ValueError("weights are all zero; no row can be sampled")
        if size > support:
            if sample_size is not None:
                raise ValueError(
                    f"sample_size={size} exceeds the {support} rows with "
                    f"non-zero weight (n={n}); zero-weight rows cannot be "
                    "drawn without replacement"
                )
            size = support

    labels = np.full(n, -1, dtype=np.int64)
    details = SamplingDetails(
        sample_indices=np.empty(0, dtype=np.int64),
        sample_clusters=0,
        assigned_to_clusters=0,
        leftover_singletons=0,
        recursed=False,
    )

    # ------------------------------------------------------------------
    # Phase 1: cluster the sample with the inner algorithm.
    # ------------------------------------------------------------------
    with span("sampling.phase1", n=n, sample=size) as phase1_span:
        if weights is not None:
            probabilities = weights / weights.sum()
            sample = np.sort(generator.choice(n, size=size, replace=False, p=probabilities))
        else:
            sample = np.sort(generator.choice(n, size=size, replace=False))
        details.sample_indices = sample
        if matrix is not None:
            sub = CorrelationInstance.from_label_matrix(
                matrix[sample],
                p=p,
                weights=None if weights is None else weights[sample],
                n_jobs=n_jobs,
            )
        else:
            sub = instance.subinstance(sample)
        sample_clustering = inner(sub)
        details.sample_clusters = sample_clustering.k
        labels[sample] = sample_clustering.labels
        phase1_span.set(clusters=sample_clustering.k)

    # ------------------------------------------------------------------
    # Phase 2: assign every non-sampled object to the cheapest cluster.
    # ------------------------------------------------------------------
    rest = np.setdiff1d(np.arange(n), sample, assume_unique=True)
    with span("sampling.phase2", rest=int(rest.size)):
        if rest.size:
            if matrix is not None:
                from ..parallel.build import parallel_assign

                tables = ClusterCountTables(
                    matrix,
                    sample,
                    sample_clustering.labels,
                    p=p,
                    member_weights=None if weights is None else weights[sample],
                )
                labels[rest] = parallel_assign(
                    tables, rest, n_jobs=n_jobs, block_size=_ASSIGN_BLOCK
                )
            else:
                backend = instance.backend
                sizes = sample_clustering.sizes().astype(np.float64)
                # Not a reduction over the pair grid: each block is an
                # independent O(|block| x |sample|) gather, so the size is
                # tuned to the sample width (and matches parallel_assign's
                # block_size) rather than reduction_block_rows().
                for start in range(0, rest.size, _ASSIGN_BLOCK):  # repolint: disable=RPR013
                    block = rest[start : start + _ASSIGN_BLOCK]
                    # O(|block| * |sample|) gather — the lazy backend computes
                    # it straight from the labels, never touching full rows.
                    rows = backend.gather_block(block, sample).astype(np.float64, copy=False)
                    mass = np.zeros((block.size, sample_clustering.k), dtype=np.float64)
                    for cluster, members in enumerate(sample_clustering.clusters()):
                        mass[:, cluster] = rows[:, members].sum(axis=1)
                    scores = 2.0 * mass - sizes[None, :]
                    best = np.argmin(scores, axis=1)
                    chosen = best.astype(np.int64)
                    chosen[scores[np.arange(block.size), best] > 0.0] = -1
                    labels[block] = chosen

    # ------------------------------------------------------------------
    # Phase 3: collect all singletons and aggregate them among themselves.
    # ------------------------------------------------------------------
    # Cluster mass must be measured in expanded objects: on atom inputs a
    # weight-w atom alone in its cluster represents w co-clustered
    # duplicates, not a stray singleton to re-aggregate.
    with span("sampling.phase3") as phase3_span:
        row_weights = weights if matrix is not None else instance.weights
        attached = np.flatnonzero(labels >= 0)
        if row_weights is None:
            mass = np.bincount(labels[attached], minlength=sample_clustering.k)
        else:
            mass = np.bincount(
                labels[attached], weights=row_weights[attached], minlength=sample_clustering.k
            )
        singleton_clusters = np.flatnonzero(mass == 1)
        is_singleton = labels < 0
        if singleton_clusters.size:
            is_singleton |= np.isin(labels, singleton_clusters)
        singles = np.flatnonzero(is_singleton)
        attached_rest = rest[labels[rest] >= 0] if rest.size else rest
        if row_weights is None:
            details.assigned_to_clusters = int(attached_rest.size)
            details.leftover_singletons = int(singles.size)
        else:
            details.assigned_to_clusters = int(row_weights[attached_rest].sum())
            details.leftover_singletons = int(row_weights[singles].sum())
        phase3_span.set(singletons=int(singles.size))

        next_label = int(labels.max()) + 1 if np.any(labels >= 0) else 0
        if singles.size > 1:
            if singles.size > max_singleton_subproblem:
                details.recursed = True
                inc("sampling.recursions")
                phase3_span.set(recursed=True)
                inner_result = sampling(
                    matrix[singles] if matrix is not None else instance.subinstance(singles),
                    inner,
                    # The singleton set may be smaller than the sample that
                    # produced it; clamp so the explicit-size validation
                    # above never trips on the internal recursion.
                    sample_size=min(size, int(singles.size)),
                    p=p,
                    rng=generator,
                    max_singleton_subproblem=max_singleton_subproblem,
                    weights=None if weights is None or matrix is None else weights[singles],
                    n_jobs=n_jobs,
                )
                labels[singles] = next_label + inner_result.labels
            else:
                if matrix is not None:
                    single_instance = CorrelationInstance.from_label_matrix(
                        matrix[singles],
                        p=p,
                        weights=None if weights is None else weights[singles],
                        n_jobs=n_jobs,
                    )
                else:
                    single_instance = instance.subinstance(singles)
                regrouped = inner(single_instance)
                labels[singles] = next_label + regrouped.labels.astype(np.int64)
        elif singles.size == 1:
            labels[singles] = next_label

    result = Clustering(labels)
    if return_details:
        return result, details
    return result
