"""Exact correlation clustering by branch-and-bound (for small instances).

Both clustering aggregation and correlation clustering are NP-complete, so
an exact solver only serves small instances — we use it as ground truth in
tests and to measure the empirical approximation ratios of the heuristics
(ablation bench A3).

The search assigns objects ``0, 1, 2, ...`` in order; object ``t`` either
joins one of the clusters opened by ``0..t-1`` or opens a new one (this
enumerates each set partition exactly once, in restricted-growth order).
Partial solutions are pruned with

    partial cost + sum_{pairs (i, j), j >= t} w_i w_j min(X_ij, 1 - X_ij) >= best,

i.e. every unresolved pair will cost at least ``min(X, 1-X)`` times its
pair weight (``w_i w_j`` on weighted atom instances, 1 otherwise).  The
incumbent is seeded with the best heuristic solution so pruning bites
immediately.

Weighted (atom) instances are solved natively: a solution over ``K``
atoms is optimal for the expanded duplicate-bearing instance among all
clusterings that keep atoms whole — and some expanded optimum does (see
:mod:`repro.core.atoms`) — so the branch-and-bound over atoms is exact
for the original objects too, at Bell(K) instead of Bell(n) search size.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from typing import Any

from ..core.instance import CorrelationInstance
from ..core.partition import Clustering
from ..registry import register_method
from .agglomerative import agglomerative
from .local_search import local_search

__all__ = ["exact_optimum", "enumerate_partitions"]

#: Hard safety cap; beyond this the search space is astronomically large.
_MAX_EXACT_N = 18


def enumerate_partitions(n: int) -> Iterator[list[int]]:
    """Yield every partition of ``n`` objects as a restricted-growth string.

    A restricted-growth string is a label vector where ``labels[0] == 0``
    and each subsequent label is at most ``1 + max(previous labels)``; each
    set partition corresponds to exactly one such string.  The number of
    partitions is the Bell number ``B_n`` — use only for tiny ``n``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    labels = [0] * n

    def extend(position: int, ceiling: int) -> Iterator[list[int]]:
        if position == n:
            yield labels.copy()
            return
        for value in range(ceiling + 1):
            labels[position] = value
            yield from extend(position + 1, max(ceiling, value + 1))

    yield from extend(1, 1)


def exact_optimum(
    instance: CorrelationInstance, seed_with_heuristics: bool = True
) -> tuple[Clustering, float]:
    """The optimal clustering and its cost, by branch-and-bound.

    Weighted (atom) instances are supported: the returned cost is the
    weighted objective, equal to the expanded instance's cost for the
    same partition of the atoms.  Raises ``ValueError`` for instances
    with more than 18 objects/atoms — the solver is meant for ground
    truth on small cases, not production use.
    """
    n = instance.n
    if n > _MAX_EXACT_N:
        raise ValueError(
            f"exact_optimum handles at most {_MAX_EXACT_N} objects, got {n}; "
            "use the approximation algorithms for larger instances"
        )
    X = instance.backend.materialize(np.float64)
    # Pair weights: w_i * w_j on weighted (atom) instances, exactly 1.0
    # otherwise — multiplying by 1.0 keeps the unweighted path bitwise
    # identical to the historical unweighted-only solver.
    if instance.weights is None:
        pair_weight = np.ones((n, n), dtype=np.float64)
    else:
        pair_weight = np.outer(instance.weights, instance.weights)
    WX = pair_weight * X

    # Remaining-cost lower bound: pairs with the later endpoint >= t are
    # unresolved once objects 0..t-1 are placed.
    cheapest = pair_weight * np.minimum(X, 1.0 - X)
    per_object = np.array(
        [cheapest[j, :j].sum() for j in range(n)], dtype=np.float64
    )
    # future_bound[t] = sum over j >= t of per_object[j]
    future_bound = np.concatenate([np.cumsum(per_object[::-1])[::-1], [0.0]])

    best_labels = np.zeros(n, dtype=np.int64)
    best_cost = instance.cost(Clustering.single_cluster(n))
    if seed_with_heuristics and n >= 2:
        seed = local_search(instance, initial=agglomerative(instance))
        seed_cost = instance.cost(seed)
        if seed_cost < best_cost:
            best_labels = seed.labels.astype(np.int64).copy()
            best_cost = seed_cost

    labels = np.zeros(n, dtype=np.int64)

    def search(t: int, used: int, partial_cost: float) -> None:
        nonlocal best_labels, best_cost
        if partial_cost + future_bound[t] >= best_cost - 1e-12:
            return
        if t == n:
            best_cost = partial_cost
            best_labels = labels[:n].copy()
            return
        # Cost of placing object t given the first t placements: w*X to
        # same-cluster members, w*(1 - X) to different-cluster members.
        row = WX[t, :t]
        mass = pair_weight[t, :t]
        for cluster in range(used + 1):
            same = labels[:t] == cluster
            added = float(row[same].sum()) + float((mass[~same] - row[~same]).sum())
            labels[t] = cluster
            search(t + 1, max(used, cluster + 1), partial_cost + added)

    if n == 1:
        return Clustering.single_cluster(1), 0.0
    search(1, 1, 0.0)
    return Clustering(best_labels), float(best_cost)


@register_method(
    "exact",
    kind="instance",
    supports_weights=True,
    params_from=exact_optimum,
    summary="The optimal clustering by branch-and-bound (ground truth for small n).",
)
def _exact_consensus(instance: CorrelationInstance, **params: Any) -> Clustering:
    """Registry adapter: the clustering half of :func:`exact_optimum`."""
    return exact_optimum(instance, **params)[0]
