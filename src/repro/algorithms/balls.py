"""BALLS — the paper's combinatorial 3-approximation (§4, Theorem 1).

The algorithm exploits the triangle inequality of aggregation-derived
distances: all nodes within distance 1/2 of a node ``u`` (a "ball") are
also pairwise close, so a dense ball is a good cluster.  Nodes are first
sorted by increasing total incident weight (a heuristic the authors found
to work well); repeatedly, the first unclustered node ``u`` is taken, the
ball ``S`` of unclustered nodes within ``radius`` of ``u`` is formed, and
the cluster ``S + {u}`` is emitted when the *average* distance from ``u``
to ``S`` is at most ``alpha`` — otherwise ``u`` becomes a singleton.

``alpha = 1/4`` (:data:`THEORY_ALPHA`) gives the proven 3-approximation;
the paper reports that ``alpha = 0.4`` (:data:`PRACTICAL_ALPHA`) produces
better clusterings on their real datasets (it is less eager to open
singletons).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import CorrelationInstance
from ..core.partition import Clustering
from ..obs.metrics import inc
from ..obs.profile import phase
from ..registry import register_method

__all__ = ["balls", "THEORY_ALPHA", "PRACTICAL_ALPHA"]

#: The alpha of Theorem 1 (3-approximation guarantee).
THEORY_ALPHA = 0.25
#: The alpha the paper recommends on real datasets.
PRACTICAL_ALPHA = 0.4


@register_method("balls", kind="instance", supports_weights=True)
def balls(
    instance: CorrelationInstance,
    alpha: float = THEORY_ALPHA,
    radius: float = 0.5,
    sort_by_weight: bool = True,
) -> Clustering:
    """Run the BALLS algorithm on a correlation instance.

    Parameters
    ----------
    instance:
        Pairwise distances; the approximation guarantee assumes they obey
        the triangle inequality (always true for aggregation instances).
    alpha:
        Acceptance threshold on the average ball distance.  The paper's
        only tunable parameter.
    radius:
        Ball radius (1/2 in the paper; exposed for ablations).
    sort_by_weight:
        Process nodes in increasing total incident weight (paper default);
        ``False`` processes them in index order.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if not 0.0 < radius <= 1.0:
        raise ValueError(f"radius must be in (0, 1], got {radius}")
    backend = instance.backend
    n = instance.n
    node_weights = instance.effective_weights()
    with phase("balls.sort", n=n):
        if sort_by_weight:
            # Blocked matvec: no X.astype(np.float64) full-matrix copy.
            incident = backend.matvec(node_weights)
            order = np.argsort(incident, kind="stable")
        else:
            order = np.arange(n)

    with phase("balls.sweep", n=n, alpha=alpha) as sweep_span:
        labels = np.full(n, -1, dtype=np.int64)
        unclustered = np.ones(n, dtype=bool)
        next_label = 0
        singletons = 0
        for u in order:
            if not unclustered[u]:
                continue
            # One row fetch per emitted cluster/singleton; on the lazy
            # backend this is O(n·m) instead of touching a stored matrix.
            row = backend.row(int(u))
            in_ball = unclustered & (row <= radius)
            in_ball[u] = False
            ball = np.flatnonzero(in_ball)
            accepted = False
            if ball.size > 0:
                # Weighted average over the expanded objects in the ball —
                # including u's own duplicates, which sit at distance 0.
                ball_weight = float(node_weights[ball].sum()) + float(node_weights[u]) - 1.0
                ball_distance = float(row[ball].astype(np.float64) @ node_weights[ball])
                if ball_distance / ball_weight <= alpha:
                    labels[ball] = next_label
                    unclustered[ball] = False
                    accepted = True
            if not accepted:
                singletons += 1
            labels[u] = next_label
            unclustered[u] = False
            next_label += 1
        sweep_span.set(clusters=next_label, singletons=singletons)
    inc("balls.clusters", next_label)
    return Clustering(labels)
