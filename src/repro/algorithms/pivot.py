"""CC-PIVOT / QwickCluster and the CMSY 2.06-approximation rounding.

Every algorithm of the paper consumes pairwise reductions and is
therefore Ω(n²) even on the lazy backend — the matrix is deferred, the
work is not.  The pivot family escapes that: it only ever asks "how far
is the pivot from the remaining objects?", a single-row query the
``(n, m)`` label matrix answers in O(m) per pair without materializing
any ``(n, n)`` structure.

:func:`pivot` is CC-PIVOT (Ailon-Charikar-Newman; QwickCluster): pick a
uniformly random unclustered object as pivot, cluster it with every
remaining object within distance ``threshold`` (1/2 in the analysis),
repeat.  On instances obeying the probability constraint
(``X`` entries in [0, 1], which every aggregation instance does) the
expected cost is at most 3 times the optimum.  Each pivot pass is one
vectorized :func:`repro.core.backend.label_pair_block` call over the
remaining objects, so the total work is expected O(n·m·k) for k emitted
clusters.

:func:`cmsy` is the Chawla-Makarychev-Schramm-Yaroslavtsev rounding
(arXiv 1412.0681): run the same pivot sweep, but join each object to the
pivot *with probability* ``1 - f(x)`` where ``x`` is the (fractional)
distance and ``f`` is the piecewise rounding function of their Theorem
— zero below ``a = 0.19``, one above ``b = 0.5095``, and
``((x - a) / (b - a))²`` between.  Two tiers: for small instances
(``n <= lp_threshold``) the cluster-LP relaxation is solved exactly
(SciPy's HiGHS ``linprog``) and the rounding runs on the LP optimum,
giving the 2.06-approximation of the paper; above the threshold (or
when SciPy is unavailable) the rounding runs directly on the ``X``
entries, which are themselves a feasible fractional solution for
aggregation instances (they obey the triangle inequality), keeping the
same near-linear access pattern as :func:`pivot`.

Determinism: both functions are pure functions of their inputs and one
``rng`` seed.  The selection order is drawn up front (one permutation,
or one batch of exponential race clocks on weighted atoms) and the
per-pivot rows are bitwise identical across the no-backend, dense and
lazy paths, so a fixed seed yields the same clustering on all of them.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.backend import label_pair_block
from ..core.distance import weighted_total_disagreement
from ..core.instance import CorrelationInstance
from ..core.labels import validate_label_matrix
from ..core.partition import Clustering
from ..obs.metrics import inc
from ..obs.profile import phase
from ..registry import register_method

__all__ = [
    "pivot",
    "cmsy",
    "cmsy_rounding",
    "CMSY_A",
    "CMSY_B",
    "DEFAULT_LP_THRESHOLD",
]

#: Lower knee of the CMSY rounding function (their Theorem 3 constants).
CMSY_A = 0.19
#: Upper knee of the CMSY rounding function: separate surely above it.
CMSY_B = 0.5095

#: ``cmsy`` solves the cluster LP exactly up to this many objects.
DEFAULT_LP_THRESHOLD = 20

#: ``(u, remaining) -> X[u, remaining]`` in the instance's dtype.
RowOracle = Callable[[int, np.ndarray], np.ndarray]


def _prepare(
    data: np.ndarray | CorrelationInstance,
    p: float,
    missing: str,
    weights: np.ndarray | None,
) -> tuple[RowOracle, int, np.ndarray | None]:
    """Normalize the input to a per-pivot row oracle.

    Label matrices get the backend-free fast path: each row comes
    straight out of :func:`label_pair_block` with the same dtype rule as
    the instance builders (float64 up to 4096 objects, float32 beyond),
    so the values are bitwise equal to gathering from a built instance.
    Prebuilt instances go through their backend (dense gathers, lazy
    recomputes from its stored labels) and carry their own ``p``,
    ``missing`` and atom weights.
    """
    if isinstance(data, CorrelationInstance):
        if weights is not None:
            raise ValueError("weights are only supported on the label-matrix path")
        backend = data.backend

        def instance_row(u: int, remaining: np.ndarray) -> np.ndarray:
            return backend.gather_block(np.array([u], dtype=np.intp), remaining)[0]

        return instance_row, data.n, data.weights

    matrix = np.asarray(data)
    validate_label_matrix(matrix)
    n = int(matrix.shape[0])
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError("weights must give one multiplicity per row")
        if np.any(weights <= 0.0):
            raise ValueError("weights must be positive multiplicities")
    dtype = np.float64 if n <= 4096 else np.float32

    def matrix_row(u: int, remaining: np.ndarray) -> np.ndarray:
        return label_pair_block(
            matrix, np.array([u], dtype=np.intp), remaining, p=p, dtype=dtype, missing=missing
        )[0]

    return matrix_row, n, weights


def _scorer(
    data: np.ndarray | CorrelationInstance,
    p: float,
    weights: np.ndarray | None,
) -> Callable[[Clustering], float]:
    """The objective used to pick the best of several sweeps.

    Instances score with their own :meth:`~repro.core.instance.CorrelationInstance.cost`;
    label matrices score with the O(n * m) contingency objective
    :func:`~repro.core.distance.weighted_total_disagreement`, keeping the
    fast path free of pair enumeration.  (The label scorer uses the
    coin-flip missing model; under ``missing="average"`` that makes
    candidate *selection* an approximation, never the candidates
    themselves.)
    """
    if isinstance(data, CorrelationInstance):
        return data.cost

    matrix = np.asarray(data)

    def label_score(clustering: Clustering) -> float:
        return weighted_total_disagreement(matrix, clustering, weights=weights, p=p)

    return label_score


def _best_of(
    sweep: Callable[[], Clustering],
    repeats: int,
    score_of: Callable[[], Callable[[Clustering], float]],
) -> Clustering:
    """Run ``sweep`` ``repeats`` times, return the argmin-cost clustering.

    The first candidate is exactly the ``repeats=1`` output (the sweeps
    share one generator), so the best-of cost is monotone in ``repeats``.
    A single repeat skips scoring entirely.
    """
    first = sweep()
    if repeats == 1:
        return first
    scorer = score_of()
    best, best_score = first, scorer(first)
    for _ in range(repeats - 1):
        candidate = sweep()
        score = scorer(candidate)
        if score < best_score:
            best, best_score = candidate, score
    return best


def _selection_order(
    generator: np.random.Generator, n: int, weights: np.ndarray | None
) -> np.ndarray:
    """The pivot order: a uniform permutation over the expanded objects.

    On weighted (atom) rows, "uniform over objects" means each atom must
    be drawn proportionally to its multiplicity among the remaining
    atoms.  Sorting independent exponential race clocks ``E_i / w_i``
    realizes exactly that sequential weighted sampling without
    replacement, in one vectorized draw.
    """
    if weights is None:
        return generator.permutation(n)
    keys = generator.exponential(size=n) / weights
    return np.argsort(keys, kind="stable")


def _threshold_sweep(
    row_of: RowOracle, order: np.ndarray, threshold: float
) -> tuple[np.ndarray, int]:
    """The CC-PIVOT sweep: join everything within ``threshold`` of the pivot."""
    n = order.size
    labels = np.full(n, -1, dtype=np.int64)
    remaining = np.arange(n, dtype=np.intp)
    next_label = 0
    with phase("pivot.sweep", n=int(n), threshold=float(threshold)) as sweep_span:
        for u in order:
            if labels[u] >= 0:
                continue
            row = row_of(int(u), remaining)
            join = row <= threshold
            labels[remaining[join]] = next_label
            remaining = remaining[~join]
            next_label += 1
        sweep_span.set(clusters=next_label)
    return labels, next_label


def _rounded_sweep(
    row_of: RowOracle, order: np.ndarray, generator: np.random.Generator
) -> tuple[np.ndarray, int]:
    """The CMSY sweep: join each object with probability ``1 - f(x)``.

    The pivot always joins its own cluster: its distance is 0, so
    ``f = 0`` and the join probability is 1 (uniform draws live in
    ``[0, 1)``).  One batch of uniforms per pivot keeps the generator
    consumption a function of the join decisions only, which are bitwise
    identical across backends.
    """
    n = order.size
    labels = np.full(n, -1, dtype=np.int64)
    remaining = np.arange(n, dtype=np.intp)
    next_label = 0
    with phase("pivot.sweep", n=int(n), rounding="cmsy") as sweep_span:
        for u in order:
            if labels[u] >= 0:
                continue
            x = row_of(int(u), remaining).astype(np.float64, copy=False)
            join = generator.random(remaining.size) < 1.0 - cmsy_rounding(x)
            labels[remaining[join]] = next_label
            remaining = remaining[~join]
            next_label += 1
        sweep_span.set(clusters=next_label)
    return labels, next_label


@register_method(
    "pivot", kind="label-fast", stochastic=True, supports_weights=True,
    exclude=("p", "weights"),
)
def pivot(
    data: np.ndarray | CorrelationInstance,
    p: float = 0.5,
    rng: np.random.Generator | int | None = None,
    threshold: float = 0.5,
    missing: str = "coin-flip",
    weights: np.ndarray | None = None,
    repeats: int = 1,
) -> Clustering:
    """Run CC-PIVOT / QwickCluster: expected 3-approximation in O(n·m·k).

    Parameters
    ----------
    data:
        ``(n, m)`` label matrix (the near-linear fast path — no instance
        and no ``(n, n)`` structure is ever built) or a prebuilt
        :class:`~repro.core.instance.CorrelationInstance` (portfolio and
        shard membership; lazy instances keep the O(m)-per-pair access).
    p:
        Missing-value coin-flip probability (label-matrix path only;
        instances carry their own).
    rng:
        Seed or generator for the pivot order.  The order is drawn once
        up front — taking the first unclustered entry of a uniform
        permutation is exactly the uniform-pivot process of the
        analysis.
    threshold:
        Join radius (1/2 in the 3-approximation proof; exposed for
        ablations).
    missing:
        §2 missing-value strategy, as in
        :func:`~repro.core.instance.disagreement_fractions` (label-matrix
        path only).
    weights:
        Positive per-row multiplicities for duplicate-collapsed (atom)
        matrices: pivots are then drawn proportionally to multiplicity,
        i.e. still uniformly over the underlying expanded objects.
        Label-matrix path only — instances carry their own weights.
    repeats:
        Run this many independent sweeps (one shared generator, so the
        first is exactly the ``repeats=1`` output) and keep the
        cheapest.  Standard amplification of an expected-factor
        guarantee: by Markov's inequality each sweep lands within
        ``3 * (1 + eps)`` of the optimum with probability at least
        ``eps / (1 + eps)``, so the best of R sweeps fails that bound
        only with probability ``(1 + eps)^-R``.  Scoring is O(n * m)
        per sweep on the label path.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    row_of, n, weights = _prepare(data, p, missing, weights)
    generator = np.random.default_rng(rng)

    def sweep() -> Clustering:
        with phase("pivot.select", n=int(n)):
            order = _selection_order(generator, n, weights)
        labels, clusters = _threshold_sweep(row_of, order, threshold)
        inc("pivot.clusters", clusters)
        return Clustering(labels)

    return _best_of(sweep, repeats, lambda: _scorer(data, p, weights))


def cmsy_rounding(x: np.ndarray) -> np.ndarray:
    """The CMSY separation probability ``f(x)`` (arXiv 1412.0681, Thm 3).

    Zero for ``x <= a``, one for ``x >= b``, the smooth ramp
    ``((x - a) / (b - a))²`` between, with ``a = 0.19`` and
    ``b = 0.5095``.  The sweep joins an object to the pivot with
    probability ``1 - f(x)``.
    """
    ramp = np.clip((np.asarray(x, dtype=np.float64) - CMSY_A) / (CMSY_B - CMSY_A), 0.0, 1.0)
    return np.square(ramp)


def _lp_fractional(X: np.ndarray, weights: np.ndarray | None) -> np.ndarray | None:
    """The exact cluster-LP optimum of a small instance, or ``None``.

    Minimizes ``sum w_u w_v [X_uv (1 - x_uv) + (1 - X_uv) x_uv]`` over
    ``x`` in [0, 1] subject to the triangle inequalities — the relaxation
    whose CMSY rounding is a 2.06-approximation.  Returns the symmetric
    fractional distance matrix, or ``None`` when SciPy is unavailable
    (the caller falls back to rounding ``X`` itself, which is feasible
    for aggregation instances).
    """
    try:
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover - the CI image ships SciPy
        return None

    n = int(X.shape[0])
    if n < 2:
        return np.zeros((n, n), dtype=np.float64)
    iu, ju = np.triu_indices(n, k=1)
    costs = 1.0 - 2.0 * X[iu, ju].astype(np.float64)
    if weights is not None:
        costs = costs * (weights[iu] * weights[ju])
    A_ub = None
    b_ub = None
    if n >= 3:
        from itertools import combinations

        triples = np.array(list(combinations(range(n), 3)), dtype=np.intp)
        index = np.zeros((n, n), dtype=np.intp)
        index[iu, ju] = np.arange(iu.size)
        edge_ij = index[triples[:, 0], triples[:, 1]]
        edge_ik = index[triples[:, 0], triples[:, 2]]
        edge_jk = index[triples[:, 1], triples[:, 2]]
        count = triples.shape[0]
        A_ub = np.zeros((3 * count, iu.size), dtype=np.float64)
        row = 3 * np.arange(count)
        # x_ik <= x_ij + x_jk, and the two rotations.
        A_ub[row, edge_ik] = 1.0
        A_ub[row, edge_ij] = -1.0
        A_ub[row, edge_jk] = -1.0
        A_ub[row + 1, edge_ij] = 1.0
        A_ub[row + 1, edge_ik] = -1.0
        A_ub[row + 1, edge_jk] = -1.0
        A_ub[row + 2, edge_jk] = 1.0
        A_ub[row + 2, edge_ij] = -1.0
        A_ub[row + 2, edge_ik] = -1.0
        b_ub = np.zeros(3 * count, dtype=np.float64)
    solution = linprog(costs, A_ub=A_ub, b_ub=b_ub, bounds=(0.0, 1.0), method="highs")
    if not solution.success:  # pragma: no cover - HiGHS solves every bounded LP here
        return None
    fractional = np.zeros((n, n), dtype=np.float64)
    fractional[iu, ju] = np.clip(solution.x, 0.0, 1.0)
    fractional[ju, iu] = fractional[iu, ju]
    return fractional


@register_method(
    "cmsy", kind="label-fast", stochastic=True, supports_weights=True,
    exclude=("p", "weights"),
)
def cmsy(
    data: np.ndarray | CorrelationInstance,
    p: float = 0.5,
    rng: np.random.Generator | int | None = None,
    missing: str = "coin-flip",
    lp_threshold: int = DEFAULT_LP_THRESHOLD,
    weights: np.ndarray | None = None,
    repeats: int = 1,
) -> Clustering:
    """Run the CMSY rounding: 2.06-approximation on the LP tier.

    Two tiers, selected by instance size:

    * ``n <= lp_threshold`` and SciPy present — solve the cluster LP
      exactly and round its optimum (the 2.06-approximation proper).
    * larger ``n``, or no SciPy — round the ``X`` entries directly.
      For aggregation instances ``X`` obeys the triangle inequality, so
      it is itself a feasible fractional solution; the sweep keeps the
      same O(n·m·k) access pattern as :func:`pivot`.

    Parameters mirror :func:`pivot` (``lp_threshold`` replaces
    ``threshold``; the join radius is implied by the rounding function,
    which separates surely above ``b = 0.5095``).  ``repeats`` keeps the
    cheapest of several rounding sweeps; the LP is solved once and
    shared by all of them.
    """
    if lp_threshold < 0:
        raise ValueError(f"lp_threshold must be >= 0, got {lp_threshold}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    row_of, n, weights = _prepare(data, p, missing, weights)
    tier = "lp" if n <= lp_threshold else "rounding"
    if tier == "lp":
        everything = np.arange(n, dtype=np.intp)
        with phase("cmsy.lp", n=int(n)) as lp_span:
            X = np.stack([row_of(u, everything) for u in range(n)]).astype(np.float64)
            fractional = _lp_fractional(X, weights)
            lp_span.set(solved=fractional is not None)
        if fractional is not None:

            def row_of(u: int, remaining: np.ndarray) -> np.ndarray:
                return fractional[u, remaining]

        else:
            tier = "rounding"
    generator = np.random.default_rng(rng)

    def sweep() -> Clustering:
        with phase("pivot.select", n=int(n)):
            order = _selection_order(generator, n, weights)
        labels, clusters = _rounded_sweep(row_of, order, generator)
        inc("cmsy.clusters", clusters)
        inc(f"cmsy.tier.{tier}")
        return Clustering(labels)

    return _best_of(sweep, repeats, lambda: _scorer(data, p, weights))
