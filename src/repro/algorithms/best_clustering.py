"""BESTCLUSTERING — pick the best of the input clusterings (paper §4).

The trivial ``2(1 - 1/m)``-approximation for clustering aggregation: since
the Mirkin distance is a metric (Observation 1), the input clustering
``C_i`` minimizing ``D(C_i) = sum_j d_V(C_j, C_i)`` is within a factor
``2(1 - 1/m)`` of the optimal aggregate.  The bound is tight, and the paper
notes the solution is usually non-intuitive in practice — it exists here as
the baseline the other algorithms are compared against.

This algorithm is specific to clustering *aggregation*: it needs the input
clusterings themselves, not just the distance matrix, so it consumes a
label matrix rather than a :class:`~repro.core.instance.CorrelationInstance`.

Columns with missing entries are not total partitions; to produce a valid
candidate we group all missing entries of a column into one dedicated
cluster (``missing="own-cluster"``, the behaviour that matches the paper's
Votes table where BESTCLUSTERING returns k=3 on yes/no attributes), or give
each missing entry its own singleton (``missing="singletons"``).  The
candidate's objective is still evaluated with the coin-flip model.
"""

from __future__ import annotations

import numpy as np

from ..core.distance import total_disagreement
from ..core.labels import MISSING, validate_label_matrix
from ..core.partition import Clustering
from ..registry import SolveContext, register_method

__all__ = ["best_clustering", "column_as_candidate"]


def column_as_candidate(column: np.ndarray, missing: str = "own-cluster") -> Clustering:
    """Turn one (possibly partial) label-matrix column into a total clustering."""
    column = np.asarray(column, dtype=np.int64)
    absent = column == MISSING
    if not absent.any():
        return Clustering(column)
    filled = column.copy()
    top = int(column.max()) + 1
    if missing == "own-cluster":
        filled[absent] = top
    elif missing == "singletons":
        filled[absent] = top + np.arange(int(absent.sum()))
    else:
        raise ValueError(f"unknown missing-value policy {missing!r}")
    return Clustering(filled)


def _solve_best(ctx: SolveContext) -> Clustering:
    matrix = ctx.require_matrix("best")
    return best_clustering(matrix, p=ctx.p, **ctx.params)


@register_method(
    "best", kind="matrix", supports_collapse=False, exclude=("p",), solver=_solve_best
)
def best_clustering(
    matrix: np.ndarray, p: float = 0.5, missing: str = "own-cluster"
) -> Clustering:
    """Return the input clustering with the smallest total disagreement.

    Parameters
    ----------
    matrix:
        ``(n, m)`` label matrix of the input clusterings (``-1`` missing).
    p:
        Coin-flip probability of the missing-value model used to evaluate
        ``D(C_i)``.
    missing:
        How a column's missing entries are materialized into the candidate
        clustering (see :func:`column_as_candidate`).
    """
    validate_label_matrix(matrix)
    best: Clustering | None = None
    best_score = np.inf
    for j in range(matrix.shape[1]):
        candidate = column_as_candidate(matrix[:, j], missing=missing)
        score = total_disagreement(matrix, candidate, p=p)
        if score < best_score:
            best, best_score = candidate, score
    assert best is not None  # matrix has at least one column
    return best
