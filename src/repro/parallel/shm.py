"""Shared-memory ndarray plumbing for the process-parallel backend.

Worker pools in this package never pickle the ``O(n²)`` matrices they
cooperate on.  Instead the parent allocates a named
:mod:`multiprocessing.shared_memory` segment, wraps it as a numpy array,
and ships only a tiny :class:`descriptor <SharedNDArray>` (name, shape,
dtype) to the workers, which attach a zero-copy view onto the same
physical pages.  :class:`SharedNDArray` is context-managed: the creating
side unlinks the segment on exit, attached sides merely close their
mapping.

:func:`resolve_jobs` centralizes the worker-count convention used by
every ``n_jobs`` parameter in the library: an explicit integer wins, then
the ``REPRO_JOBS`` environment variable, then the serial default of 1;
zero or a negative value means "all cores".
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from types import TracebackType

import numpy as np

__all__ = ["SharedNDArray", "resolve_jobs"]

#: Environment variable consulted when ``n_jobs`` is ``None``.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(n_jobs: int | None = None) -> int:
    """Resolve an ``n_jobs`` parameter to a concrete worker count.

    Precedence: an explicit ``n_jobs`` integer always wins; ``None``
    consults the ``REPRO_JOBS`` environment variable (unset or empty
    means 1, i.e. the serial path); ``0`` or a negative value — whether
    passed explicitly or via the environment — selects every available
    core.  The result is always at least 1.
    """
    if n_jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {raw!r}") from None
    if n_jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return int(n_jobs)


class SharedNDArray:
    """A numpy array backed by a named shared-memory segment.

    Create the segment (and own its lifetime) with :meth:`create`; attach
    to an existing one from a worker with :meth:`attach`, passing the
    :attr:`descriptor` the parent shipped over.  Both sides see the same
    physical memory through :attr:`array` — nothing is pickled or copied.

    The object is a context manager.  On exit the owning side closes its
    mapping *and unlinks* the segment; attached sides only close.  The
    usual topology is therefore::

        with SharedNDArray.create((n, n), np.float64) as out:
            pool = ...  # workers attach via out.descriptor, write rows
            result = out.array.copy()  # copy out before the segment dies
    """

    __slots__ = ("_shm", "_array", "_owner")

    def __init__(self, shm: shared_memory.SharedMemory, shape: tuple[int, ...],
                 dtype: np.dtype, owner: bool) -> None:
        self._shm = shm
        self._array: np.ndarray = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        self._owner = owner

    @classmethod
    def create(cls, shape: tuple[int, ...], dtype: np.dtype | type) -> "SharedNDArray":
        """Allocate a fresh segment big enough for ``shape`` of ``dtype``."""
        np_dtype = np.dtype(dtype)
        size = max(1, int(np.prod(shape)) * np_dtype.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=size)
        try:
            return cls(shm, tuple(int(s) for s in shape), np_dtype, owner=True)
        except BaseException:
            # The segment exists the moment SharedMemory returns; if the
            # wrapper cannot be built the owner must still unlink it or
            # it outlives the process in /dev/shm.
            shm.close()
            shm.unlink()
            raise

    @classmethod
    def attach(cls, descriptor: tuple[str, tuple[int, ...], str]) -> "SharedNDArray":
        """Attach a zero-copy view onto a segment created elsewhere."""
        name, shape, dtype_name = descriptor
        # Attaching re-registers the segment with the resource tracker;
        # pools here are fork-started, so workers share the parent's
        # tracker process and the re-registration dedupes against the
        # creator's.  The creating side's unlink() is the one cleanup.
        shm = shared_memory.SharedMemory(name=name)
        try:
            return cls(shm, tuple(shape), np.dtype(dtype_name), owner=False)
        except BaseException:
            shm.close()
            raise

    @property
    def array(self) -> np.ndarray:
        """The live array view (valid until :meth:`close`)."""
        return self._array

    @property
    def descriptor(self) -> tuple[str, tuple[int, ...], str]:
        """Picklable ``(name, shape, dtype)`` triple for workers to attach."""
        return (self._shm.name, tuple(self._array.shape), self._array.dtype.name)

    def close(self) -> None:
        """Release the mapping; the owning side also unlinks the segment."""
        # Drop the buffer view first: SharedMemory.close() refuses while
        # exported memoryviews are alive.
        self._array = np.ndarray((0,), dtype=np.uint8)
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __enter__(self) -> "SharedNDArray":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def __repr__(self) -> str:
        role = "owner" if self._owner else "attached"
        return (
            f"SharedNDArray(name={self._shm.name!r}, shape={self._array.shape}, "
            f"dtype={self._array.dtype.name}, {role})"
        )
