"""Process-parallel execution backend (shared-memory pools).

The two embarrassingly parallel choke points of the pipeline live here:
the ``O(m n²)`` construction of the disagreement matrix (fanned out over
row blocks by :mod:`repro.parallel.build`) and the paper's
run-everything-report-the-best experimental pattern
(:mod:`repro.parallel.portfolio`).  Both exchange data through named
shared-memory segments (:mod:`repro.parallel.shm`) — the quadratic
matrices are never pickled — and both are bit-identical to their serial
counterparts for every worker count.

Worker counts follow one convention everywhere, implemented by
:func:`resolve_jobs`: explicit ``n_jobs`` wins, then the ``REPRO_JOBS``
environment variable, then the serial default of 1; zero or negative
means "all cores".
"""

from .build import MIN_PARALLEL_ROWS, parallel_assign, parallel_disagreement_fractions
from .portfolio import DEFAULT_PORTFOLIO, AlgorithmRun, PortfolioResult, portfolio
from .shm import JOBS_ENV_VAR, SharedNDArray, resolve_jobs

__all__ = [
    "AlgorithmRun",
    "DEFAULT_PORTFOLIO",
    "JOBS_ENV_VAR",
    "MIN_PARALLEL_ROWS",
    "PortfolioResult",
    "SharedNDArray",
    "parallel_assign",
    "parallel_disagreement_fractions",
    "portfolio",
    "resolve_jobs",
]
