"""Process-parallel construction of the disagreement matrix ``X``.

The ``O(m n²)`` build of the pairwise separation fractions (§3 of the
paper) is embarrassingly parallel across row blocks: every block of
:func:`~repro.core.instance.disagreement_block` depends only on the label
matrix, and every matrix element is accumulated in the same column order
regardless of how the rows are tiled.  :func:`parallel_disagreement_fractions`
exploits exactly that — the label matrix and the output ``X`` live in
shared memory (:class:`~repro.parallel.shm.SharedNDArray`; nothing
quadratic is ever pickled), the ``_BLOCK_ROWS`` row blocks of the serial
build are fanned out over a worker pool, and each worker writes its
normalized block straight into the shared ``X`` buffer.  The result is
bit-identical to the serial path for any worker count.

:func:`parallel_assign` gives the SAMPLING assignment phase (§4.1) the
same treatment: the per-block cheapest-cluster scoring against fixed
:class:`~repro.core.objective.ClusterCountTables` is independent per
block, so blocks are scored concurrently and reassembled in order.

Worker pools use the ``fork`` start method where the platform offers it
(zero-cost inheritance of the read-only Python state) and fall back to
the platform default elsewhere; all worker payloads are tiny index
ranges.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Iterator
from contextlib import contextmanager
from multiprocessing.pool import Pool
from typing import Any

import numpy as np

from ..core.backend import LazyLabelBackend
from ..core.instance import (
    _BLOCK_ROWS,
    CorrelationInstance,
    disagreement_block,
    disagreement_fractions,
)
from ..core.labels import validate_label_matrix
from ..core.objective import ClusterCountTables
from ..obs.metrics import observe
from ..obs.trace import span
from .shm import SharedNDArray, resolve_jobs

__all__ = [
    "MIN_PARALLEL_ROWS",
    "attach_instance",
    "parallel_assign",
    "parallel_disagreement_fractions",
    "pool",
    "share_instance",
]

#: Below this many objects the dispatch in ``disagreement_fractions``
#: stays serial even when ``n_jobs > 1`` — pool startup would dominate.
MIN_PARALLEL_ROWS = 1024

#: Per-worker state installed by the pool initializers (set in workers only).
_WORKER: dict[str, Any] = {}


def pool(jobs: int, initializer: Any = None, initargs: tuple[Any, ...] = ()) -> Pool:
    """A worker pool with the library-wide start-method policy.

    Every process pool in the repository is created here (lint rule
    RPR006 forbids direct ``multiprocessing.Pool`` use elsewhere), so the
    start-method choice — ``fork`` where available, the platform default
    otherwise — lives in exactly one place.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return context.Pool(jobs, initializer=initializer, initargs=initargs)


# ----------------------------------------------------------------------
# Zero-copy instance fan-out
# ----------------------------------------------------------------------


@contextmanager
def share_instance(instance: CorrelationInstance) -> Iterator[dict[str, Any]]:
    """Share ``instance``'s bulk data for zero-copy worker reconstruction.

    Yields a small picklable payload that forked workers hand to
    :func:`attach_instance`.  Dense-backed instances place the ``(n, n)``
    matrix in a shared segment (the historical portfolio behaviour);
    lazy-backed instances share only the ``(n, m)`` *label matrix* plus
    the kernel parameters, so every worker attaches in O(n * m) memory
    and computes its own row blocks on demand.  The shared segment lives
    until the ``with`` block exits — keep the pool inside it.
    """
    backend = instance.backend
    common: dict[str, Any] = {"m": instance.m, "weights": instance.weights}
    if isinstance(backend, LazyLabelBackend):
        labels = backend.label_matrix
        with SharedNDArray.create(labels.shape, labels.dtype) as shared:
            shared.array[...] = labels
            yield {
                "kind": "lazy",
                "descriptor": shared.descriptor,
                "p": backend.p,
                "missing": backend.missing,
                "dtype": backend.dtype.str,
                "block_rows": backend.block_rows,
                "cache_blocks": backend.cache_blocks,
                **common,
            }
    else:
        X = backend.dense()
        with SharedNDArray.create(X.shape, X.dtype) as shared:
            shared.array[...] = X
            yield {"kind": "dense", "descriptor": shared.descriptor, **common}


def attach_instance(payload: dict[str, Any]) -> tuple[CorrelationInstance, SharedNDArray]:
    """Rebuild a :func:`share_instance` payload inside a worker.

    Returns ``(instance, shared)``; the caller must keep ``shared`` alive
    (and close it eventually) for as long as the instance is used — the
    instance's arrays are zero-copy views into the shared segment.
    """
    shared = SharedNDArray.attach(payload["descriptor"])
    try:
        if payload["kind"] == "lazy":
            lazy = LazyLabelBackend(
                shared.array,
                p=payload["p"],
                dtype=np.dtype(payload["dtype"]),
                missing=payload["missing"],
                block_rows=payload["block_rows"],
                cache_blocks=payload["cache_blocks"],
                validate=False,
            )
            instance = CorrelationInstance(
                m=payload["m"], weights=payload["weights"], backend=lazy
            )
        else:
            instance = CorrelationInstance(
                shared.array, m=payload["m"], validate=False, weights=payload["weights"]
            )
    except BaseException:
        # A malformed payload must not strand the attached mapping: the
        # worker would hold the segment open for its whole lifetime.
        shared.close()
        raise
    return instance, shared


# ----------------------------------------------------------------------
# Instance construction
# ----------------------------------------------------------------------


def _init_build_worker(
    matrix_descriptor: tuple[str, tuple[int, ...], str],
    out_descriptor: tuple[str, tuple[int, ...], str],
    p: float,
    missing: str,
) -> None:
    _WORKER["matrix"] = SharedNDArray.attach(matrix_descriptor)
    _WORKER["out"] = SharedNDArray.attach(out_descriptor)
    _WORKER["p"] = p
    _WORKER["missing"] = missing


def _build_block(bounds: tuple[int, int]) -> tuple[int, float]:
    """Fill one row block of the shared ``X``; returns ``(start, seconds)``.

    The wall time rides back on the result channel so the parent can
    aggregate per-worker block timings into the
    ``parallel.build.block_seconds`` histogram (a forked worker's own
    metrics registry dies with the process).
    """
    start, stop = bounds
    matrix = _WORKER["matrix"].array
    out = _WORKER["out"].array
    with span("build.block", start=start, stop=stop) as block_span:
        out[start:stop] = disagreement_block(
            matrix, start, stop, p=_WORKER["p"], dtype=out.dtype, missing=_WORKER["missing"]
        )
    return start, block_span.seconds


def parallel_disagreement_fractions(
    matrix: np.ndarray,
    p: float = 0.5,
    dtype: np.dtype | type | None = None,
    missing: str = "coin-flip",
    n_jobs: int | None = None,
    block_rows: int = _BLOCK_ROWS,
) -> np.ndarray:
    """The ``X`` matrix of a label matrix, built by a shared-memory pool.

    Semantics are identical to
    :func:`~repro.core.instance.disagreement_fractions` — same missing
    models, same dtype defaults — and the output is bit-identical to the
    serial build for every ``n_jobs`` and ``block_rows`` tiling (each
    element is accumulated in the same column order either way).

    ``block_rows`` is the fan-out granularity; the default matches the
    serial build's ``_BLOCK_ROWS`` and exists as a parameter so the
    equivalence tests can force multi-block schedules on small inputs.
    Falls back to the serial code when one worker (or one block) would do
    all the work anyway.
    """
    matrix = np.asarray(matrix)
    validate_label_matrix(matrix)
    if missing not in ("coin-flip", "average"):
        raise ValueError(f"missing must be 'coin-flip' or 'average', got {missing!r}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")
    if block_rows < 1:
        raise ValueError(f"block_rows must be positive, got {block_rows}")
    n = matrix.shape[0]
    if dtype is None:
        dtype = np.float64 if n <= 4096 else np.float32
    np_dtype = dtype if isinstance(dtype, np.dtype) else np.dtype(dtype)

    blocks = [(start, min(start + block_rows, n)) for start in range(0, n, block_rows)]
    jobs = min(resolve_jobs(n_jobs), len(blocks))
    if jobs <= 1:
        return disagreement_fractions(matrix, p=p, dtype=np_dtype, missing=missing, n_jobs=1)

    with span("parallel.build", n=n, jobs=jobs, blocks=len(blocks)) as build_span:
        with SharedNDArray.create(
            matrix.shape, matrix.dtype
        ) as shared_matrix, SharedNDArray.create((n, n), np_dtype) as shared_out:
            shared_matrix.array[...] = matrix
            workers = pool(
                jobs,
                initializer=_init_build_worker,
                initargs=(shared_matrix.descriptor, shared_out.descriptor, p, missing),
            )
            try:
                timings = workers.map(_build_block, blocks)
            finally:
                workers.close()
                workers.join()
            X = shared_out.array.copy()
        block_seconds = [seconds for _, seconds in timings]
        for seconds in block_seconds:
            observe("parallel.build.block_seconds", seconds)
        build_span.set(busy_seconds=sum(block_seconds))
    np.fill_diagonal(X, 0.0)
    return X


# ----------------------------------------------------------------------
# SAMPLING assignment phase
# ----------------------------------------------------------------------


def _init_assign_worker(tables: ClusterCountTables) -> None:
    _WORKER["tables"] = tables


def _assign_block(rows: np.ndarray) -> np.ndarray:
    tables: ClusterCountTables = _WORKER["tables"]
    return tables.assign(rows)


def parallel_assign(
    tables: ClusterCountTables,
    rows: np.ndarray,
    n_jobs: int | None = None,
    block_size: int = 8192,
) -> np.ndarray:
    """Cheapest-cluster assignment of ``rows``, fanned out over a pool.

    Each block of ``rows`` is scored independently against the fixed
    ``tables`` (shipped to every worker once, at pool start-up), so the
    concatenated result is bit-identical to ``tables.assign(rows)``
    regardless of worker count.  With one worker (or one block) the
    blocks are scored in-process, preserving the serial path's bounded
    per-batch temporaries.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be positive, got {block_size}")
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    blocks = [rows[start : start + block_size] for start in range(0, rows.size, block_size)]
    jobs = min(resolve_jobs(n_jobs), len(blocks))
    with span("parallel.assign", rows=int(rows.size), jobs=jobs, blocks=len(blocks)):
        if jobs <= 1:
            return np.concatenate([tables.assign(block) for block in blocks])
        workers = pool(jobs, initializer=_init_assign_worker, initargs=(tables,))
        try:
            assigned = workers.map(_assign_block, blocks)
        finally:
            workers.close()
            workers.join()
        return np.concatenate(assigned)
