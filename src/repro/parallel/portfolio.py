"""Portfolio aggregation: run several algorithms against one shared instance.

The paper's experiments (§7) never commit to a single heuristic — every
table runs BALLS, AGGLOMERATIVE, FURTHEST and LOCALSEARCH and reports the
best objective.  :func:`portfolio` makes that pattern a first-class,
parallel primitive: the ``X`` matrix is placed in shared memory once,
every selected algorithm runs concurrently against a zero-copy view of
it, and the argmin-cost clustering comes back together with a
per-algorithm :class:`AlgorithmRun` record (cost, cluster count, wall
time) for observability.

Determinism: stochastic portfolio members get independent child
generators spawned from the single ``rng`` argument, one per method
*position*, so the result is bit-identical for any worker count —
including the in-process serial path taken when one worker is requested.
Ties on cost resolve to the earliest method in the requested order.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.instance import CorrelationInstance
from ..core.labels import as_label_matrix
from ..core.partition import Clustering
from ..obs.metrics import inc, observe, set_gauge
from ..obs.profile import export_spans, merge_spans, worker_tracing
from ..obs.trace import span
from ..registry import (
    SolveContext,
    is_stochastic,
    register_method,
    resolve_instance_method,
)
from .build import attach_instance, pool, share_instance
from .shm import resolve_jobs

__all__ = ["DEFAULT_PORTFOLIO", "AlgorithmRun", "PortfolioResult", "portfolio"]

#: The paper's §7 line-up: every deterministic heuristic plus LOCALSEARCH.
DEFAULT_PORTFOLIO = ("balls", "agglomerative", "furthest", "local-search")

#: Per-worker state installed by the pool initializer (set in workers only).
_WORKER: dict[str, Any] = {}


@dataclass(frozen=True)
class AlgorithmRun:
    """Observability record for one portfolio member."""

    method: str
    cost: float
    k: int
    elapsed_seconds: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (CLI ``--json`` output)."""
        return {
            "method": self.method,
            "cost": self.cost,
            "k": self.k,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass(frozen=True)
class PortfolioResult:
    """Outcome of one :func:`portfolio` call.

    ``best`` is the argmin-cost clustering over ``runs`` (ties break to
    the earliest requested method); ``runs`` preserves the requested
    method order regardless of completion order; ``jobs`` is the resolved
    worker count actually used.
    """

    best: Clustering
    best_method: str
    cost: float
    runs: tuple[AlgorithmRun, ...]
    jobs: int
    elapsed_seconds: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (clustering as a label list)."""
        return {
            "best_method": self.best_method,
            "cost": self.cost,
            "k": self.best.k,
            "jobs": self.jobs,
            "elapsed_seconds": self.elapsed_seconds,
            "runs": [run.to_dict() for run in self.runs],
        }

    def summary(self) -> str:
        """One-line human-readable report."""
        losers = ", ".join(
            f"{run.method}={run.cost:.2f}" for run in self.runs if run.method != self.best_method
        )
        line = f"portfolio winner={self.best_method}  d(C)={self.cost:.2f}  k={self.best.k}"
        if losers:
            line += f"  ({losers})"
        return line


def _method_specs(
    methods: Sequence[str],
    params: dict[str, dict[str, Any]] | None,
    rng: np.random.Generator | int | None,
) -> list[tuple[str, dict[str, Any], np.random.Generator | None]]:
    """Validate methods and attach per-position kwargs and child generators."""
    if not methods:
        raise ValueError("portfolio needs at least one method")
    params = dict(params or {})
    unknown = set(params) - set(methods)
    if unknown:
        raise ValueError(f"params given for methods not in the portfolio: {sorted(unknown)}")
    for name in methods:
        resolve_instance_method(name)  # raises on non-instance methods ("best", ...)
    # One independent child generator per *position* (not per name), spawned
    # before any execution — the seeds cannot depend on scheduling order.
    if isinstance(rng, np.random.Generator):
        children = rng.spawn(len(methods))
    else:
        children = [
            np.random.default_rng(s) for s in np.random.SeedSequence(rng).spawn(len(methods))
        ]
    return [
        (name, dict(params.get(name, {})), children[i] if is_stochastic(name) else None)
        for i, name in enumerate(methods)
    ]


def _execute(
    instance: CorrelationInstance,
    spec: tuple[str, dict[str, Any], np.random.Generator | None],
) -> tuple[np.ndarray, float, int, float]:
    """Run one portfolio member; shared by the serial and worker paths."""
    name, kwargs, child_rng = spec
    algorithm = resolve_instance_method(name)
    if child_rng is not None:
        kwargs = {"rng": child_rng, **kwargs}
    with span(f"member:{name}", method=name) as member_span:
        with span("solve") as solve_span:
            clustering = algorithm(instance, **kwargs)
        cost = instance.cost(clustering)
        member_span.set(cost=cost, k=clustering.k)
    observe("portfolio.member.cost", cost)
    observe("portfolio.member.seconds", solve_span.seconds)
    return clustering.labels, cost, clustering.k, solve_span.seconds


def _init_portfolio_worker(
    payload: dict[str, Any],
    specs: list[tuple[str, dict[str, Any], np.random.Generator | None]],
) -> None:
    instance, shared = attach_instance(payload)
    _WORKER["shared"] = shared  # keep the mapping alive for the pool's lifetime
    _WORKER["instance"] = instance
    _WORKER["specs"] = specs


def _run_portfolio_member(
    index: int,
) -> tuple[int, np.ndarray, float, int, float, list[dict[str, Any]]]:
    # Spans recorded in a forked worker would vanish with the process, so
    # each member profiles into a local trace and ships it back with the
    # result payload (a few hundred bytes) for the parent to graft.
    with worker_tracing() as trace:
        labels, cost, k, elapsed = _execute(_WORKER["instance"], _WORKER["specs"][index])
    return (index, labels, cost, k, elapsed, export_spans(trace))


def _solve_portfolio(ctx: SolveContext) -> Clustering:
    # Relocated verbatim from aggregate()'s old "portfolio" branch: the
    # instance is always prebuilt (the spec declares needs_instance), and
    # the per-member records land in ctx.params["portfolio"].
    result = portfolio(ctx.instance, n_jobs=ctx.n_jobs, **ctx.params)
    clustering = result.best
    if ctx.atoms is not None:
        clustering = ctx.atoms.expand(clustering)
    ctx.params["portfolio"] = result.to_dict()
    return clustering


@register_method(
    "portfolio",
    kind="matrix",
    stochastic=True,
    supports_weights=True,
    needs_instance=True,
    exclude=("p", "n_jobs", "backend"),
    solver=_solve_portfolio,
)
def portfolio(
    inputs: Sequence[Clustering] | np.ndarray | CorrelationInstance,
    methods: Sequence[str] = DEFAULT_PORTFOLIO,
    p: float = 0.5,
    n_jobs: int | None = None,
    rng: np.random.Generator | int | None = None,
    params: dict[str, dict[str, Any]] | None = None,
    backend: str = "auto",
) -> PortfolioResult:
    """Run ``methods`` concurrently on one instance, return the argmin cost.

    Parameters
    ----------
    inputs:
        Input clusterings, an ``(n, m)`` label matrix, or a prebuilt
        :class:`CorrelationInstance`.  Label inputs are converted once
        (honouring ``n_jobs`` for the parallel matrix build) and every
        portfolio member sees the same shared, read-only ``X``.
    methods:
        Instance-consuming algorithm names (see
        :func:`repro.registry.resolve_instance_method`); matrix-level methods
        like ``"sampling"`` or ``"best"`` are rejected.  A method may be
        listed more than once — each position draws its own child
        generator, so repeated stochastic entries act as independent
        restarts.
    p:
        Missing-value coin-flip probability for the instance build.
    n_jobs:
        Worker count; ``None`` consults ``REPRO_JOBS``, ``<= 0`` means all
        cores (see :func:`repro.parallel.resolve_jobs`).  Results are
        bit-identical for every value.
    rng:
        Root seed or generator for the stochastic members; one child
        generator is spawned per method position before anything runs, so
        the outcome never depends on scheduling.
    params:
        Optional per-method extra kwargs, e.g. ``{"balls": {"alpha": 0.4}}``.
    backend:
        Pair-distance backend for label inputs (``"auto"``, ``"dense"``
        or ``"lazy"``; see :func:`repro.core.backend.resolve_backend`).
        With the lazy backend only the ``(n, m)`` label matrix is placed
        in shared memory — workers attach zero-copy to the labels instead
        of an ``(n, n)`` matrix.  Ignored for prebuilt instances.
    """
    if isinstance(inputs, CorrelationInstance):
        instance = inputs
    else:
        matrix = inputs if isinstance(inputs, np.ndarray) else as_label_matrix(inputs)
        instance = CorrelationInstance.from_label_matrix(
            matrix, p=p, n_jobs=n_jobs, backend=backend
        )
    specs = _method_specs(methods, params, rng)
    jobs = min(resolve_jobs(n_jobs), len(specs))

    with span("portfolio", jobs=jobs, n=instance.n, methods=[s[0] for s in specs]) as root:
        if jobs <= 1:
            outcomes = [(i, *_execute(instance, spec)) for i, spec in enumerate(specs)]
        else:
            with share_instance(instance) as payload:
                workers = pool(
                    jobs,
                    initializer=_init_portfolio_worker,
                    initargs=(payload, specs),
                )
                try:
                    worker_outcomes = workers.map(_run_portfolio_member, range(len(specs)))
                finally:
                    workers.close()
                    workers.join()
            outcomes = []
            for index, labels, cost, k, member_elapsed, spans in worker_outcomes:
                merge_spans(spans)
                outcomes.append((index, labels, cost, k, member_elapsed))
    elapsed = root.seconds
    inc("portfolio.runs")
    set_gauge("portfolio.jobs", jobs)

    outcomes.sort(key=lambda outcome: outcome[0])
    runs = tuple(
        AlgorithmRun(method=specs[i][0], cost=cost, k=k, elapsed_seconds=run_elapsed)
        for i, _, cost, k, run_elapsed in outcomes
    )
    best_index = min(range(len(runs)), key=lambda i: (runs[i].cost, i))
    best_labels = outcomes[best_index][1]
    root.set(winner=runs[best_index].method, cost=runs[best_index].cost)
    return PortfolioResult(
        best=Clustering(best_labels),
        best_method=runs[best_index].method,
        cost=runs[best_index].cost,
        runs=runs,
        jobs=jobs,
        elapsed_seconds=elapsed,
    )
