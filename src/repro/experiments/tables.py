"""Plain-text table rendering for the benchmark reports.

The benchmark harness prints each reproduced table/figure in the same
row/column layout as the paper, using these helpers (no third-party
table libraries, no colour codes — output is meant for ``tee`` into
bench_output.txt).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

__all__ = ["render_table", "format_number", "banner"]


def format_number(value: Any) -> str:
    """Compact numeric formatting: ints plain, floats to sensible digits."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    text_rows = [[format_number(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def banner(text: str) -> str:
    """A separator headline for bench output."""
    bar = "=" * max(60, len(text) + 4)
    return f"\n{bar}\n  {text}\n{bar}"
