"""Shared experiment routines used by the benchmark harness.

The paper's Tables 2 and 3 share a row structure (class labels, lower
bound, the five aggregation algorithms, ROCK and LIMBO at selected k);
:func:`categorical_table` produces those rows for any categorical dataset.
:func:`kmeans_sweep` builds the k-means ``k = 2..10`` label matrix of the
Figure 4 / Figure 5 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import limbo, rock
from ..core.aggregate import aggregate
from ..core.distance import total_disagreement
from ..core.instance import CorrelationInstance
from ..core.labels import as_label_matrix
from ..core.partition import Clustering
from ..cluster.kmeans import kmeans
from ..datasets.categorical import CategoricalDataset
from ..metrics import classification_error
from ..obs.trace import span

__all__ = ["TableRow", "categorical_table", "kmeans_sweep", "disagreement_cost"]


@dataclass
class TableRow:
    """One row of a Table 2/3-style report."""

    label: str
    k: int | None
    classification_error_pct: float | None
    disagreement_cost: float
    seconds: float


def disagreement_cost(dataset: CategoricalDataset, clustering: Clustering, p: float = 0.5) -> float:
    """The paper's E_D column: the correlation cost ``d(C) = D(C) / m``."""
    return total_disagreement(dataset.label_matrix(), clustering, p=p) / dataset.m


def categorical_table(
    dataset: CategoricalDataset,
    methods: tuple[str, ...] = ("best", "agglomerative", "furthest", "balls", "local-search"),
    balls_alpha: float = 0.4,
    rock_params: tuple[tuple[int, float], ...] = (),
    limbo_params: tuple[tuple[int, float], ...] = (),
    rock_sample: int | None = None,
    instance: CorrelationInstance | None = None,
    n_jobs: int | None = None,
) -> list[TableRow]:
    """Produce the rows of a Table 2/3-style comparison on one dataset.

    ``rock_params`` / ``limbo_params`` are ``(k, theta_or_phi)`` pairs; they
    match the parameter settings the paper cites from the original ROCK and
    LIMBO papers.  ``n_jobs`` selects the shared-memory parallel backend
    for the instance build and the per-method runs (``None`` consults
    ``REPRO_JOBS``); the rows are bit-identical for any worker count.
    """
    matrix = dataset.label_matrix()
    rows: list[TableRow] = []

    if dataset.classes is not None:
        class_clustering = Clustering(dataset.classes)
        rows.append(
            TableRow(
                "Class labels",
                class_clustering.k,
                0.0,
                disagreement_cost(dataset, class_clustering),
                0.0,
            )
        )

    if instance is None:
        instance = CorrelationInstance.from_label_matrix(matrix, n_jobs=n_jobs)
    rows.append(TableRow("Lower bound", None, None, instance.lower_bound(), 0.0))

    for method in methods:
        params = {"alpha": balls_alpha} if method == "balls" else {}
        label = f"BALLS(a={balls_alpha})" if method == "balls" else method.upper()
        with span("experiments.method", label=label) as method_span:
            result = aggregate(instance if method not in ("best", "sampling") else matrix,
                               method=method, compute_lower_bound=False, n_jobs=n_jobs, **params)
        elapsed = method_span.seconds
        error = (
            classification_error(result.clustering, dataset.classes) * 100.0
            if dataset.classes is not None
            else None
        )
        rows.append(
            TableRow(label, result.k, error, disagreement_cost(dataset, result.clustering), elapsed)
        )

    for k, theta in rock_params:
        with span("experiments.rock", k=k, theta=theta) as rock_span:
            clustering = rock(matrix, k=k, theta=theta, sample_size=rock_sample, rng=0)
        elapsed = rock_span.seconds
        error = (
            classification_error(clustering, dataset.classes) * 100.0
            if dataset.classes is not None
            else None
        )
        rows.append(
            TableRow(
                f"ROCK(k={k},t={theta})",
                clustering.k,
                error,
                disagreement_cost(dataset, clustering),
                elapsed,
            )
        )

    for k, phi in limbo_params:
        with span("experiments.limbo", k=k, phi=phi) as limbo_span:
            clustering = limbo(matrix, k=k, phi=phi)
        elapsed = limbo_span.seconds
        error = (
            classification_error(clustering, dataset.classes) * 100.0
            if dataset.classes is not None
            else None
        )
        rows.append(
            TableRow(
                f"LIMBO(k={k},phi={phi})",
                clustering.k,
                error,
                disagreement_cost(dataset, clustering),
                elapsed,
            )
        )
    return rows


def kmeans_sweep(
    points: np.ndarray,
    k_range: range = range(2, 11),
    n_init: int = 4,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """The Figure 4/5 input: k-means labels for each ``k`` as a label matrix."""
    if isinstance(rng, (int, np.integer)):
        # Integer seeds keep the historical per-k derived seeds (rng + k) so
        # existing experiment tables reproduce bit-identically.
        runs = [kmeans(points, k, n_init=n_init, rng=int(rng) + k) for k in k_range]
    else:
        generator = np.random.default_rng(rng)
        runs = [kmeans(points, k, n_init=n_init, rng=generator) for k in k_range]
    return as_label_matrix([run.labels for run in runs])
