"""Experiment scale control.

Every benchmark honours the ``REPRO_SCALE`` environment variable:

* ``ci`` (default) — shape-preserving reductions that finish on a 1-core
  laptop: Mushrooms at 2000 rows, Census at 8000, the scalability sweep up
  to 200K points.
* ``paper`` — the paper's full sizes: Mushrooms 8124, Census 32561, the
  1M-point scalability run.

Benches print which scale they used; EXPERIMENTS.md records paper-vs-
measured values for both.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["Scale", "current_scale"]


@dataclass(frozen=True)
class Scale:
    """Workload sizes for one experiment scale."""

    name: str
    mushrooms_rows: int | None  # None = the generator's full default
    census_rows: int | None
    census_sample: int
    scalability_sizes: tuple[int, ...]
    sampling_sweep: tuple[int, ...]

    def describe(self) -> str:
        return (
            f"scale={self.name} (set REPRO_SCALE=paper for full sizes): "
            f"mushrooms={self.mushrooms_rows or 8124}, census={self.census_rows or 32561}"
        )


_CI = Scale(
    name="ci",
    mushrooms_rows=2000,
    census_rows=8000,
    census_sample=1500,
    scalability_sizes=(20_000, 50_000, 100_000, 200_000),
    sampling_sweep=(100, 200, 400, 800, 1200),
)

_PAPER = Scale(
    name="paper",
    mushrooms_rows=None,
    census_rows=None,
    census_sample=4000,
    scalability_sizes=(50_000, 100_000, 500_000, 1_000_000),
    sampling_sweep=(200, 400, 800, 1600, 3200),
)


def current_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default ``ci``)."""
    name = os.environ.get("REPRO_SCALE", "ci").strip().lower()
    if name == "paper":
        return _PAPER
    if name in ("ci", ""):
        return _CI
    raise ValueError(f"REPRO_SCALE must be 'ci' or 'paper', got {name!r}")
