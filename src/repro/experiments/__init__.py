"""Shared experiment harness: scale control, table rendering, table routines."""

from .runner import TableRow, categorical_table, disagreement_cost, kmeans_sweep
from .scale import Scale, current_scale
from .tables import banner, format_number, render_table

__all__ = [
    "TableRow",
    "categorical_table",
    "disagreement_cost",
    "kmeans_sweep",
    "Scale",
    "current_scale",
    "banner",
    "format_number",
    "render_table",
]
