"""Related-work consensus methods (paper §6), built on the same core.

These are the methods the paper positions itself against: Fred & Jain's
evidence accumulation, Topchy et al.'s mixture model, and Strehl &
Ghosh's hypergraph formulations.  They complement the ROCK/LIMBO
categorical baselines of :mod:`repro.baselines` — those compete on the
categorical-data application; the methods here compete on the consensus
problem itself (and, unlike the paper's algorithms, all need ``k`` or a
model-selection loop).
"""

from .coassociation import coassociation_matrix
from .evidence import evidence_accumulation
from .genetic import genetic_consensus
from .hypergraph import cspa, mcla
from .mixture import MixtureResult, mixture_consensus, mixture_consensus_bic

__all__ = [
    "coassociation_matrix",
    "evidence_accumulation",
    "genetic_consensus",
    "cspa",
    "mcla",
    "MixtureResult",
    "mixture_consensus",
    "mixture_consensus_bic",
]
