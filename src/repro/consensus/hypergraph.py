"""Hypergraph consensus methods of Strehl & Ghosh [19]: CSPA and MCLA.

The paper's §6: "Strehl and Ghosh consider various formulations for the
problem, most of which reduce the problem to a hyper-graph partitioning
problem.  In one of their formulations they consider the same graph as in
the correlation clustering problem.  The solution they propose is to
compute the best k-partition of the graph, which does not take into
account the penalty for merging two nodes that are far apart.  All of
their formulations assume that the correct number of clusters is given."

We implement the two most used members of that family, without external
graph-partitioning software:

* **CSPA** (cluster-based similarity partitioning): the co-association
  matrix is treated as a similarity graph and partitioned into exactly
  ``k`` parts — here with average-linkage cut at ``k``, the dense-matrix
  equivalent of their METIS partitioning.  This is exactly the "same
  graph" reduction the paper describes, and exactly where the missing
  penalty shows: the cut at ``k`` happily merges far-apart nodes.
* **MCLA** (meta-clustering algorithm): every input *cluster* becomes a
  hyperedge; hyperedges are grouped into ``k`` meta-clusters by Jaccard
  similarity of their indicator vectors (average-linkage); each object
  joins the meta-cluster in which it participates most.
"""

from __future__ import annotations

import numpy as np

from ..cluster.linkage import linkage
from ..core.labels import MISSING, validate_label_matrix
from ..core.partition import Clustering
from ..registry import register_method
from .coassociation import coassociation_matrix

__all__ = ["cspa", "mcla"]


@register_method("cspa", role="baseline", kind="matrix", exclude=("p",))
def cspa(matrix: np.ndarray, k: int, p: float = 0.5) -> Clustering:
    """Cluster-based similarity partitioning: cut the co-association graph at ``k``."""
    validate_label_matrix(matrix)
    n = matrix.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}")
    agreement = coassociation_matrix(matrix, p=p)
    distances = 1.0 - agreement
    np.fill_diagonal(distances, 0.0)
    dendrogram = linkage(distances=distances, method="average")
    return Clustering(dendrogram.cut(k))


def _cluster_indicators(matrix: np.ndarray) -> np.ndarray:
    """Stack the indicator vector of every cluster of every input: ``(H, n)``."""
    indicators = []
    for j in range(matrix.shape[1]):
        column = matrix[:, j]
        for value in np.unique(column[column != MISSING]):
            indicators.append((column == value).astype(np.float64))
    return np.array(indicators)


@register_method("mcla", role="baseline", kind="matrix", stochastic=True)
def mcla(matrix: np.ndarray, k: int, rng: np.random.Generator | int | None = 0) -> Clustering:
    """Meta-clustering: group input clusters, then vote objects into groups.

    ``rng`` breaks ties when an object participates equally in several
    meta-clusters.
    """
    validate_label_matrix(matrix)
    n = matrix.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}")
    indicators = _cluster_indicators(matrix)  # (H, n)
    if indicators.shape[0] < k:
        raise ValueError(
            f"only {indicators.shape[0]} input clusters for {k} meta-clusters"
        )
    # Jaccard distances between hyperedges.
    intersections = indicators @ indicators.T
    sizes = indicators.sum(axis=1)
    unions = sizes[:, None] + sizes[None, :] - intersections
    with np.errstate(invalid="ignore", divide="ignore"):
        similarity = np.where(unions > 0, intersections / unions, 0.0)
    distances = 1.0 - similarity
    np.fill_diagonal(distances, 0.0)
    meta_labels = linkage(distances=distances, method="average").cut(k)

    # Association of each object with each meta-cluster: the average of
    # the indicator vectors of the meta-cluster's hyperedges.
    association = np.zeros((n, k), dtype=np.float64)
    for meta in range(k):
        members = np.flatnonzero(meta_labels == meta)
        association[:, meta] = indicators[members].mean(axis=0)
    generator = np.random.default_rng(rng)
    # Argmax with random tie-breaking.
    noise = generator.random(association.shape) * 1e-9
    labels = (association + noise).argmax(axis=1)
    return Clustering(labels)
