"""Mixture-model consensus clustering (Topchy, Jain & Punch [21]).

The paper's §6: "Topchy et al. define clustering aggregation as a maximum
likelihood estimation problem, and they propose an EM algorithm for
finding the consensus clustering."

Model: each object's row of labels ``(l_1, ..., l_m)`` is drawn from one
of ``k`` consensus components; component ``c`` has, independently per
input clustering ``j``, a multinomial ``theta[c][j]`` over that
clustering's labels.  Missing entries are marginalized out (they simply
contribute no factor).  EM alternates soft assignments (E) with
component-weight/multinomial updates (M); the consensus is the MAP
assignment.

Unlike the paper's algorithms the mixture model needs ``k`` — or a model
selection criterion.  We provide BIC selection over a k range, which ties
into the paper's §2 discussion of how aggregation sidesteps exactly this
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.labels import MISSING, validate_label_matrix
from ..core.partition import Clustering
from ..registry import register_method

__all__ = ["MixtureResult", "mixture_consensus", "mixture_consensus_bic"]

_SMOOTHING = 0.05  # Laplace smoothing of the component multinomials


@dataclass
class MixtureResult:
    """Outcome of one EM run."""

    clustering: Clustering
    log_likelihood: float
    n_parameters: int
    iterations: int
    converged: bool

    def bic(self, n: int) -> float:
        """Bayesian information criterion (lower is better)."""
        return -2.0 * self.log_likelihood + self.n_parameters * float(np.log(n))


def _one_hot_columns(matrix: np.ndarray) -> tuple[list[np.ndarray], list[int]]:
    """Per input clustering: an ``(n, arity)`` one-hot (zeros where missing)."""
    encodings = []
    arities = []
    for j in range(matrix.shape[1]):
        column = matrix[:, j]
        arity = int(column.max()) + 1 if column.max() >= 0 else 1
        one_hot = np.zeros((matrix.shape[0], arity), dtype=np.float64)
        present = column != MISSING
        one_hot[np.flatnonzero(present), column[present]] = 1.0
        encodings.append(one_hot)
        arities.append(arity)
    return encodings, arities


@register_method("mixture", role="baseline", kind="matrix", stochastic=True)
def mixture_consensus(
    matrix: np.ndarray,
    k: int,
    max_iter: int = 200,
    tol: float = 1e-6,
    n_init: int = 4,
    rng: np.random.Generator | int | None = 0,
) -> MixtureResult:
    """Fit the multinomial-mixture consensus model with EM.

    Runs ``n_init`` random restarts and keeps the best log-likelihood.
    """
    validate_label_matrix(matrix)
    n, m = matrix.shape
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}")
    generator = np.random.default_rng(rng)
    encodings, arities = _one_hot_columns(matrix)

    best: MixtureResult | None = None
    for _ in range(n_init):
        result = _em_once(encodings, arities, n, k, max_iter, tol, generator)
        if best is None or result.log_likelihood > best.log_likelihood:
            best = result
    assert best is not None
    return best


def _em_once(encodings, arities, n, k, max_iter, tol, generator) -> MixtureResult:
    # Responsibilities initialized from a random soft assignment.
    responsibilities = generator.dirichlet(np.ones(k, dtype=np.float64), size=n)
    log_likelihood = -np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        # ----- M step -----
        weights = responsibilities.sum(axis=0)  # (k,)
        mixing = weights / n
        thetas = []
        for one_hot, arity in zip(encodings, arities):
            counts = responsibilities.T @ one_hot + _SMOOTHING  # (k, arity)
            thetas.append(counts / counts.sum(axis=1, keepdims=True))
        # ----- E step -----
        log_post = np.log(np.maximum(mixing, 1e-300))[None, :].repeat(n, axis=0)
        for one_hot, theta in zip(encodings, thetas):
            # For present entries add log theta[c, label]; absent rows add 0.
            log_post += one_hot @ np.log(theta).T
        row_max = log_post.max(axis=1, keepdims=True)
        stable = np.exp(log_post - row_max)
        normalizer = stable.sum(axis=1, keepdims=True)
        responsibilities = stable / normalizer
        new_log_likelihood = float((np.log(normalizer) + row_max).sum())
        if new_log_likelihood - log_likelihood < tol * max(1.0, abs(new_log_likelihood)):
            log_likelihood = new_log_likelihood
            converged = True
            break
        log_likelihood = new_log_likelihood

    labels = responsibilities.argmax(axis=1)
    # Free parameters: (k-1) mixing weights + per component and input
    # clustering a (arity_j - 1)-dimensional multinomial.
    n_parameters = (k - 1) + k * int(sum(max(a - 1, 0) for a in arities))
    return MixtureResult(
        clustering=Clustering(labels),
        log_likelihood=log_likelihood,
        n_parameters=n_parameters,
        iterations=iteration,
        converged=converged,
    )


def mixture_consensus_bic(
    matrix: np.ndarray,
    k_range: range = range(2, 11),
    rng: np.random.Generator | int | None = 0,
    **em_params,
) -> tuple[MixtureResult, dict[int, float]]:
    """Select ``k`` by BIC over ``k_range``; returns (best result, BIC scores)."""
    generator = np.random.default_rng(rng)
    scores: dict[int, float] = {}
    best: MixtureResult | None = None
    best_score = np.inf
    n = matrix.shape[0]
    for k in k_range:
        if k > n:
            break
        result = mixture_consensus(matrix, k=k, rng=generator, **em_params)
        score = result.bic(n)
        scores[k] = score
        if score < best_score:
            best, best_score = result, score
    assert best is not None
    return best, scores
