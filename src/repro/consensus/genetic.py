"""Genetic-algorithm consensus (Cristofor & Simovici [7]).

The paper's §6: "Dana Cristofor and Dan Simovici observe the connection
between clustering aggregation and clustering of categorical data.  They
propose genetic algorithms for finding the best aggregation solution."

A straightforward GA over label vectors minimizing the same disagreement
objective the paper optimizes:

* **population** — random partitions plus (optionally) heuristic seeds;
* **fitness** — the correlation cost ``d(C)`` (lower is fitter),
  evaluated with the library's weighted-aware cost function;
* **selection** — tournament of two;
* **crossover** — cluster-respecting: the child copies whole clusters
  from one parent restricted onto the other (uniform per-cluster choice),
  which keeps building blocks intact where naive per-gene crossover
  would scramble label names;
* **mutation** — relocate a random object to a random existing cluster or
  a fresh singleton.

GAs need many generations to match the combinatorial heuristics — which
is the point of including one: the A5-style comparison shows why the
paper's direct algorithms won out.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import CorrelationInstance
from ..core.partition import Clustering
from ..registry import register_method

__all__ = ["genetic_consensus"]


def _compact(labels: np.ndarray) -> np.ndarray:
    """Renumber labels densely (0..k-1) so values never grow unboundedly."""
    _, inverse = np.unique(labels, return_inverse=True)
    return inverse.astype(np.int64)


def _crossover(
    first: np.ndarray, second: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Cluster-respecting crossover: inherit whole clusters from `first`."""
    child = second.copy()
    clusters = np.unique(first)
    chosen = clusters[rng.random(clusters.size) < 0.5]
    if chosen.size:
        # Objects of the chosen clusters adopt fresh labels so the copied
        # clusters arrive intact (offset avoids collisions with `second`).
        offset = int(child.max()) + 1
        mask = np.isin(first, chosen)
        child[mask] = first[mask] + offset
    return _compact(child)


def _mutate(labels: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
    mutated = labels.copy()
    hits = np.flatnonzero(rng.random(labels.size) < rate)
    if hits.size:
        top = int(mutated.max()) + 1
        # Move to a random existing cluster or open a new one.
        mutated[hits] = rng.integers(0, top + 1, size=hits.size)
    return mutated


@register_method("genetic", kind="instance", stochastic=True, supports_weights=True)
def genetic_consensus(
    instance: CorrelationInstance,
    population_size: int = 30,
    generations: int = 120,
    mutation_rate: float = 0.02,
    elite: int = 2,
    seeds: list[Clustering] | None = None,
    rng: np.random.Generator | int | None = 0,
) -> Clustering:
    """Minimize the correlation cost with a genetic algorithm.

    Parameters
    ----------
    instance:
        Pairwise distances in [0, 1].
    population_size, generations, mutation_rate, elite:
        Standard GA knobs; the defaults are tuned for the small/medium
        instances of the comparison benches.
    seeds:
        Optional clusterings injected into the initial population (e.g. a
        heuristic's output, making the GA a polish step).
    rng:
        Seed or generator.
    """
    if population_size < 2:
        raise ValueError("population_size must be at least 2")
    if elite < 0 or elite >= population_size:
        raise ValueError("elite must be in 0..population_size-1")
    if not 0.0 <= mutation_rate <= 1.0:
        raise ValueError("mutation_rate must be a probability")
    generator = np.random.default_rng(rng)
    n = instance.n

    population: list[np.ndarray] = []
    if seeds:
        for seed in seeds:
            if seed.n != n:
                raise ValueError("seed clusterings must cover every object")
            population.append(seed.labels.astype(np.int64))
    while len(population) < population_size:
        k = int(generator.integers(1, max(2, n // 2) + 1))
        population.append(generator.integers(0, k, size=n))

    def fitness(labels: np.ndarray) -> float:
        return instance.cost(Clustering(labels))

    costs = np.array([fitness(labels) for labels in population])
    for _ in range(generations):
        order = np.argsort(costs)
        next_population = [population[i].copy() for i in order[:elite]]
        while len(next_population) < population_size:
            # Tournament selection of two parents.
            contenders = generator.integers(0, population_size, size=4)
            first = min(contenders[:2], key=lambda i: costs[i])
            second = min(contenders[2:], key=lambda i: costs[i])
            child = _crossover(population[first], population[second], generator)
            child = _mutate(child, mutation_rate, generator)
            next_population.append(child)
        population = next_population
        costs = np.array([fitness(labels) for labels in population])

    best = int(np.argmin(costs))
    return Clustering(population[best])
