"""Evidence accumulation clustering (Fred & Jain [14]).

The paper's §6: "Fred and Jain propose to use a single linkage algorithm
to combine multiple runs of the k-means algorithm."  The evidence-
accumulation recipe:

1. build the co-association matrix of the input clusterings (typically
   many k-means runs with random k / initializations);
2. run single-linkage hierarchical clustering on ``1 - A``;
3. cut the dendrogram either at a fixed ``k``, at a fixed similarity
   threshold, or — Fred & Jain's signature rule — at the *largest
   lifetime*: the widest merge-height gap of the dendrogram.

The paper contrasts this with its own objective: single linkage on the
evidence matrix never "penalizes for merging dissimilar nodes", which the
A5 comparison bench quantifies.
"""

from __future__ import annotations

import numpy as np

from ..cluster.linkage import linkage
from ..core.labels import validate_label_matrix
from ..core.partition import Clustering
from ..registry import register_method
from .coassociation import coassociation_matrix

__all__ = ["evidence_accumulation"]


@register_method("evidence", role="baseline", kind="matrix", exclude=("p",))
def evidence_accumulation(
    matrix: np.ndarray,
    k: int | None = None,
    threshold: float | None = None,
    p: float = 0.5,
    method: str = "single",
) -> Clustering:
    """Consensus by (single-)linkage over the co-association matrix.

    Parameters
    ----------
    matrix:
        ``(n, m)`` label matrix of the input clusterings.
    k:
        Cut the dendrogram at exactly ``k`` clusters.
    threshold:
        Cut at co-association ``threshold``: pairs that at least this
        fraction of inputs co-cluster can end up together (distance cut
        at ``1 - threshold``).
    p:
        Missing-value coin-flip probability.
    method:
        Linkage flavour; ``"single"`` is Fred & Jain's choice, and
        ``"average"`` makes the method equivalent in spirit to the
        paper's AGGLOMERATIVE with a fixed cut.

    Exactly one of ``k`` / ``threshold`` may be given; with neither, the
    largest-lifetime rule picks the cut automatically.
    """
    validate_label_matrix(matrix)
    if k is not None and threshold is not None:
        raise ValueError("give at most one of k and threshold")
    agreement = coassociation_matrix(matrix, p=p)
    distances = 1.0 - agreement
    np.fill_diagonal(distances, 0.0)
    dendrogram = linkage(distances=distances, method=method)

    if k is not None:
        return Clustering(dendrogram.cut(k))
    if threshold is not None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        return Clustering(dendrogram.cut_height(1.0 - threshold))

    # Largest-lifetime cut (Fred & Jain): the number of clusters that
    # persists over the widest merge-height interval; cut just above the
    # lower end of that interval.  (k = 1 is not a candidate — a consensus
    # of everything is never the interesting answer.)
    heights = dendrogram.heights()
    if heights.size < 2:
        return Clustering.single_cluster(matrix.shape[0])
    gaps = np.diff(heights)
    widest = int(np.argmax(gaps))
    cut_height = float(heights[widest]) + 1e-12
    return Clustering(dendrogram.cut_height(cut_height))
