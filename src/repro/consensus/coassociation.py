"""Co-association (evidence) matrices — shared substrate of the §6 methods.

Most consensus-clustering methods the paper cites operate on the
*co-association matrix*: ``A[u, v]`` = fraction of input clusterings that
place ``u`` and ``v`` together.  It is exactly ``1 - X`` for the
aggregation instance's disagreement fractions, so the two views share one
implementation; this module provides the agreement-flavoured API the
related-work methods are written against, including the missing-value
coin-flip convention (a missing entry contributes ``p`` agreement).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import disagreement_fractions
from ..core.labels import validate_label_matrix

__all__ = ["coassociation_matrix"]


def coassociation_matrix(
    matrix: np.ndarray, p: float = 0.5, dtype: np.dtype | type | None = None
) -> np.ndarray:
    """The agreement fractions ``A = 1 - X`` of a label matrix.

    ``A[u, u]`` is set to 1.  Missing-involved pairs contribute ``p``
    (the coin-flip model of the paper's §2).
    """
    validate_label_matrix(matrix)
    agreement = 1.0 - disagreement_fractions(matrix, p=p, dtype=dtype)
    np.fill_diagonal(agreement, 1.0)
    return agreement
