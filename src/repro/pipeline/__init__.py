"""Declarative consensus pipelines: TOML config → dataset → bases → consensus.

The pipeline layer turns the shape of every experiment in the paper into
one reusable runner: :func:`load_config` validates a TOML file against
the method registry, :func:`run_pipeline` executes it (dataset
materialization, base-clustering generation with parameter sweeps /
feature subsampling / missing-label injection, aggregation, scoring) and
returns a :class:`PipelineResult` report.  ``repro pipeline run
config.toml`` is the CLI front door.
"""

from .config import (
    AggregateStage,
    BaseStage,
    DatasetConfig,
    PipelineConfig,
    PipelineConfigError,
    load_config,
    parse_config,
)
from .runner import BaseRun, PipelineError, PipelineResult, run_pipeline

__all__ = [
    "AggregateStage",
    "BaseRun",
    "BaseStage",
    "DatasetConfig",
    "PipelineConfig",
    "PipelineConfigError",
    "PipelineError",
    "PipelineResult",
    "load_config",
    "parse_config",
    "run_pipeline",
]
