"""Declarative pipeline configs: TOML schema, parsing, validation.

A pipeline config describes one end-to-end consensus experiment — the
shape of every table and figure in the paper:

.. code-block:: toml

    [pipeline]
    name = "fig3-robustness"
    seed = 0

    [dataset]
    source = "seven-groups"          # or gaussian / votes / ... / csv

    [[base]]                         # repeated: one entry per clusterer
    clusterer = "linkage"
    params = { k = 7 }
    sweep = { method = ["single", "complete", "average", "ward"] }

    [[base]]
    clusterer = "kmeans"
    params = { k = 7 }

    [aggregate]
    method = "agglomerative"

    [score]
    metrics = ["ari", "classification-error"]

Every name in the config — clusterers, the aggregation method, metric
names — is validated against :mod:`repro.registry` at load time, so a
typo fails immediately with the accepted alternatives spelled out instead
of surfacing as a stack trace mid-run.  Categorical datasets may omit
``[[base]]`` entirely: their attribute columns *are* the base clusterings
(the paper's §2 mapping).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..registry import MethodSpec, get_method

__all__ = [
    "AggregateStage",
    "BaseStage",
    "DatasetConfig",
    "PipelineConfig",
    "PipelineConfigError",
    "load_config",
    "parse_config",
]

#: Dataset sources the runner knows how to materialize.
DATASET_SOURCES = (
    "census",
    "csv",
    "gaussian",
    "movies",
    "mushrooms",
    "seven-groups",
    "votes",
)

#: Sources that yield 2-D points with ground truth (base clusterers run on
#: the points); the rest yield categorical tables (attributes are the base
#: clusterings unless categorical clusterers are configured).
POINT_SOURCES = ("seven-groups", "gaussian")

#: Metric names accepted in ``[score].metrics``.  ``disagreement`` scores
#: against the inputs; every other metric needs ground-truth labels.
METRIC_NAMES = (
    "ari",
    "classification-error",
    "disagreement",
    "nmi",
    "purity",
    "rand",
    "vi",
)


class PipelineConfigError(ValueError):
    """A pipeline config that cannot be run, with an actionable message."""


def _fail(message: str) -> PipelineConfigError:
    return PipelineConfigError(message)


@dataclass(frozen=True)
class DatasetConfig:
    """The ``[dataset]`` section: a source name plus its options."""

    source: str
    options: dict[str, Any] = field(default_factory=dict)

    @property
    def is_points(self) -> bool:
        return self.source in POINT_SOURCES


@dataclass(frozen=True)
class BaseStage:
    """One ``[[base]]`` entry, expanded into concrete jobs at run time."""

    clusterer: str
    params: dict[str, Any] = field(default_factory=dict)
    sweep: dict[str, list[Any]] = field(default_factory=dict)
    runs: int = 1
    feature_fraction: float = 1.0
    missing_rate: float = 0.0

    def spec(self) -> MethodSpec:
        return get_method(self.clusterer, role="clusterer")

    def expand(self) -> list[dict[str, Any]]:
        """The concrete parameter dicts this entry generates, in order.

        The cartesian product iterates sweep parameters in the order they
        appear in the config, repeated ``runs`` times — a deterministic
        order, so the per-job seed streams are reproducible.
        """
        points: list[dict[str, Any]] = []
        keys = list(self.sweep)
        for values in itertools.product(*(self.sweep[key] for key in keys)):
            merged = dict(self.params)
            merged.update(zip(keys, values))
            points.extend(dict(merged) for _ in range(self.runs))
        return points


@dataclass(frozen=True)
class AggregateStage:
    """The ``[aggregate]`` section."""

    method: str = "agglomerative"
    role: str = "aggregate"
    params: dict[str, Any] = field(default_factory=dict)
    p: float = 0.5
    collapse: bool = False
    lower_bound: bool = False

    def spec(self) -> MethodSpec:
        return get_method(self.method, role=self.role)


@dataclass(frozen=True)
class PipelineConfig:
    """A fully validated pipeline, ready for the runner."""

    name: str
    seed: int
    dataset: DatasetConfig
    bases: tuple[BaseStage, ...]
    aggregate: AggregateStage
    metrics: tuple[str, ...]
    source_path: str | None = None


def _require_table(raw: dict[str, Any], key: str, what: str) -> dict[str, Any]:
    section = raw.get(key)
    if section is None:
        raise _fail(f"pipeline config is missing the required [{key}] section ({what})")
    if not isinstance(section, dict):
        raise _fail(f"[{key}] must be a table, got {type(section).__name__}")
    return section


def _parse_dataset(raw: dict[str, Any]) -> DatasetConfig:
    section = dict(
        _require_table(raw, "dataset", "which data to cluster, e.g. source = \"seven-groups\"")
    )
    source = section.pop("source", None)
    if source is None:
        raise _fail(
            "[dataset] needs a 'source' key; choose from " + ", ".join(DATASET_SOURCES)
        )
    if source not in DATASET_SOURCES:
        raise _fail(
            f"unknown dataset source {source!r}; choose from {', '.join(DATASET_SOURCES)}"
        )
    if source == "csv" and not section.get("path"):
        raise _fail("dataset source 'csv' requires a 'path' key pointing at the CSV file")
    return DatasetConfig(source=source, options=section)


def _parse_base(entry: Any, index: int, dataset: DatasetConfig) -> BaseStage:
    where = f"[[base]] entry #{index + 1}"
    if not isinstance(entry, dict):
        raise _fail(f"{where} must be a table")
    entry = dict(entry)
    clusterer = entry.pop("clusterer", None)
    if clusterer is None:
        raise _fail(f"{where} needs a 'clusterer' key")
    try:
        spec = get_method(clusterer, role="clusterer")
    except ValueError as error:
        raise _fail(f"{where}: {error}") from error

    wants = "points" if dataset.is_points else "categorical"
    if spec.kind != wants:
        raise _fail(
            f"{where}: clusterer {clusterer!r} consumes {spec.kind} data but dataset "
            f"source {dataset.source!r} provides {wants} data"
        )

    params = entry.pop("params", {})
    if not isinstance(params, dict):
        raise _fail(f"{where}: 'params' must be a table of keyword parameters")
    sweep_raw = entry.pop("sweep", {})
    if not isinstance(sweep_raw, dict):
        raise _fail(f"{where}: 'sweep' must be a table mapping parameter -> list of values")
    sweep: dict[str, list[Any]] = {}
    for key, values in sweep_raw.items():
        if not isinstance(values, list) or not values:
            raise _fail(
                f"{where}: sweep grid for parameter {key!r} must be a non-empty "
                f"list of values, got {values!r}"
            )
        sweep[key] = list(values)
    runs = entry.pop("runs", 1)
    if not isinstance(runs, int) or runs < 1:
        raise _fail(f"{where}: 'runs' must be a positive integer, got {runs!r}")
    feature_fraction = float(entry.pop("feature_fraction", 1.0))
    if not 0.0 < feature_fraction <= 1.0:
        raise _fail(
            f"{where}: 'feature_fraction' must be in (0, 1], got {feature_fraction}"
        )
    missing_rate = float(entry.pop("missing_rate", 0.0))
    if not 0.0 <= missing_rate < 1.0:
        raise _fail(f"{where}: 'missing_rate' must be in [0, 1), got {missing_rate}")
    if entry:
        raise _fail(
            f"{where}: unknown key(s) {sorted(entry)}; accepted: clusterer, params, "
            "sweep, runs, feature_fraction, missing_rate"
        )

    # Validate the merged parameter names and required parameters against
    # the clusterer's registry schema, so a bad grid fails at load time.
    merged = {**params, **{key: values[0] for key, values in sweep.items()}}
    try:
        spec.validate_params(merged)
        spec.require_params({**merged, "rng": None})
    except ValueError as error:
        raise _fail(f"{where}: {error}") from error

    return BaseStage(
        clusterer=clusterer,
        params=dict(params),
        sweep=sweep,
        runs=runs,
        feature_fraction=feature_fraction,
        missing_rate=missing_rate,
    )


def _parse_aggregate(raw: dict[str, Any]) -> AggregateStage:
    section = dict(raw.get("aggregate") or {})
    method = section.pop("method", "agglomerative")
    params = section.pop("params", {})
    if not isinstance(params, dict):
        raise _fail("[aggregate].params must be a table of keyword parameters")
    p = float(section.pop("p", 0.5))
    collapse = bool(section.pop("collapse", False))
    lower_bound = bool(section.pop("lower_bound", False))
    if section:
        raise _fail(
            f"[aggregate]: unknown key(s) {sorted(section)}; accepted: method, "
            "params, p, collapse, lower_bound"
        )

    role = "aggregate"
    try:
        spec = get_method(method, role="aggregate")
    except ValueError:
        try:
            spec = get_method(method, role="baseline")
            role = "baseline"
        except ValueError:
            from ..registry import method_names

            raise _fail(
                f"[aggregate]: unknown method {method!r}; choose from "
                f"{', '.join(method_names('aggregate'))} or the consensus "
                f"baselines {', '.join(method_names('baseline'))}"
            ) from None
    try:
        spec.validate_params(params)
        spec.require_params({**params, "rng": None})
    except ValueError as error:
        raise _fail(f"[aggregate]: {error}") from error
    if collapse and not spec.supports_collapse:
        raise _fail(
            f"[aggregate]: method {method!r} does not support collapse=true"
        )
    return AggregateStage(
        method=method,
        role=role,
        params=dict(params),
        p=p,
        collapse=collapse,
        lower_bound=lower_bound,
    )


def _parse_metrics(raw: dict[str, Any]) -> tuple[str, ...]:
    section = raw.get("score") or {}
    metrics = section.get("metrics", ["disagreement"])
    if not isinstance(metrics, list) or not metrics:
        raise _fail("[score].metrics must be a non-empty list of metric names")
    normalized = []
    for name in metrics:
        canonical = str(name).strip().lower().replace("_", "-")
        if canonical not in METRIC_NAMES:
            raise _fail(
                f"unknown metric {name!r} in [score].metrics; choose from "
                + ", ".join(METRIC_NAMES)
            )
        normalized.append(canonical)
    return tuple(normalized)


def parse_config(raw: dict[str, Any], source_path: str | None = None) -> PipelineConfig:
    """Validate a raw (already TOML-decoded) config dict into a PipelineConfig."""
    if not isinstance(raw, dict):
        raise _fail("pipeline config must be a TOML table at top level")
    meta = raw.get("pipeline") or {}
    name = str(meta.get("name", "pipeline"))
    seed = meta.get("seed", 0)
    if not isinstance(seed, int):
        raise _fail(f"[pipeline].seed must be an integer, got {seed!r}")

    dataset = _parse_dataset(raw)
    base_entries = raw.get("base", [])
    if not isinstance(base_entries, list):
        raise _fail("base clusterers must be given as [[base]] array-of-tables entries")
    bases = tuple(
        _parse_base(entry, index, dataset) for index, entry in enumerate(base_entries)
    )
    if dataset.is_points and not bases:
        raise _fail(
            f"dataset source {dataset.source!r} provides raw points, so at least "
            "one [[base]] clusterer entry is required to produce input clusterings"
        )

    known = {"pipeline", "dataset", "base", "aggregate", "score"}
    unknown = set(raw) - known
    if unknown:
        raise _fail(
            f"unknown top-level section(s) {sorted(unknown)}; accepted: "
            + ", ".join(sorted(known))
        )

    return PipelineConfig(
        name=name,
        seed=seed,
        dataset=dataset,
        bases=bases,
        aggregate=_parse_aggregate(raw),
        metrics=_parse_metrics(raw),
        source_path=source_path,
    )


def load_config(path: str | Path) -> PipelineConfig:
    """Read and validate a TOML pipeline config from disk."""
    try:
        import tomllib
    except ImportError as error:  # pragma: no cover - Python < 3.11 only
        raise PipelineConfigError(
            "pipeline configs need the stdlib 'tomllib' module (Python >= 3.11)"
        ) from error

    path = Path(path)
    if not path.exists():
        raise _fail(f"pipeline config not found: {path}")
    with path.open("rb") as handle:
        try:
            raw = tomllib.load(handle)
        except tomllib.TOMLDecodeError as error:
            raise _fail(f"{path} is not valid TOML: {error}") from error
    return parse_config(raw, source_path=str(path))
