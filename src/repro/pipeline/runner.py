"""Execute a validated pipeline config: dataset → bases → aggregate → score.

Determinism contract: the root ``[pipeline].seed`` is expanded through
``numpy.random.SeedSequence.spawn`` into one child stream per stage
position — one for the dataset generator, one per base-clustering job
(in config order), one for the aggregation — before anything runs.  Base
clusterings are generated serially (they are cheap); only the aggregation
itself consults ``n_jobs`` / ``REPRO_JOBS``, and the core layer's
parallel backend is bit-identical for every worker count.  A pipeline run
is therefore reproducible byte-for-byte across ``REPRO_JOBS`` settings.

Each stage runs under a :mod:`repro.obs` span (``pipeline.dataset``,
``pipeline.base``, ``pipeline.aggregate``, ``pipeline.score``), so
``repro pipeline run --trace`` shows the full stage tree with timings.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.aggregate import aggregate
from ..core.distance import total_disagreement
from ..core.labels import MISSING, validate_label_matrix
from ..core.partition import Clustering
from ..datasets import (
    CategoricalDataset,
    Points2D,
    gaussian_with_noise,
    generate_census,
    generate_movies,
    generate_mushrooms,
    generate_votes,
    seven_groups,
)
from ..metrics import (
    adjusted_rand_index,
    classification_error,
    normalized_mutual_information,
    purity,
    rand_index,
    variation_of_information,
)
from ..obs.trace import span
from .config import BaseStage, PipelineConfig

__all__ = ["BaseRun", "PipelineError", "PipelineResult", "run_pipeline"]


class PipelineError(ValueError):
    """A pipeline that validated but cannot run (e.g. metric without truth)."""


@dataclass(frozen=True)
class BaseRun:
    """Report record for one generated base clustering."""

    clusterer: str
    params: dict[str, Any]
    k: int
    missing: int
    elapsed_seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "clusterer": self.clusterer,
            "params": {key: _json_value(value) for key, value in self.params.items()},
            "k": self.k,
            "missing": self.missing,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class PipelineResult:
    """Outcome of one :func:`run_pipeline` call."""

    name: str
    dataset: str
    n: int
    m: int
    method: str
    clustering: Clustering
    disagreements: float | None
    cost: float | None
    lower_bound: float | None
    scores: dict[str, float]
    bases: tuple[BaseRun, ...]
    elapsed_seconds: float
    seed: int

    @property
    def k(self) -> int:
        return self.clustering.k

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly report (the ``--json`` / ``--out`` payload)."""
        return {
            "pipeline": self.name,
            "dataset": {"name": self.dataset, "n": self.n, "m": self.m},
            "seed": self.seed,
            "bases": [run.to_dict() for run in self.bases],
            "aggregate": {
                "method": self.method,
                "k": self.k,
                "disagreements": self.disagreements,
                "cost": self.cost,
                "lower_bound": self.lower_bound,
            },
            "scores": self.scores,
            "elapsed_seconds": self.elapsed_seconds,
            "labels": self.clustering.labels.tolist(),
        }

    def render(self) -> str:
        """Human-readable multi-line report (default CLI output)."""
        lines = [
            f"pipeline         {self.name}",
            f"dataset          {self.dataset}  n={self.n}  inputs={self.m}",
            f"method           {self.method}",
            f"consensus        k={self.k}"
            + (
                f"  D(C)={self.disagreements:.1f}"
                if self.disagreements is not None
                else ""
            ),
        ]
        if self.lower_bound is not None:
            lines.append(f"lower bound      {self.lower_bound:.3f}")
        for name, value in self.scores.items():
            lines.append(f"score            {name}={value:.4f}")
        lines.append(f"elapsed          {self.elapsed_seconds:.3f}s")
        return "\n".join(lines)


def _json_value(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _build_dataset(
    config: PipelineConfig, rng: np.random.Generator
) -> Points2D | CategoricalDataset:
    source = config.dataset.source
    options = dict(config.dataset.options)
    seed: Any = options.pop("rng", rng)
    if source == "seven-groups":
        return seven_groups(rng=seed, **options)
    if source == "gaussian":
        return gaussian_with_noise(rng=seed, **options)
    if source == "csv":
        path = options.pop("path")
        return CategoricalDataset.from_csv(path, **options)
    generator = {
        "votes": generate_votes,
        "mushrooms": generate_mushrooms,
        "census": generate_census,
        "movies": generate_movies,
    }[source]
    return generator(rng=seed, **options)


def _base_jobs(config: PipelineConfig) -> list[tuple[BaseStage, dict[str, Any]]]:
    jobs: list[tuple[BaseStage, dict[str, Any]]] = []
    for stage in config.bases:
        jobs.extend((stage, params) for params in stage.expand())
    return jobs


def _run_base_job(
    stage: BaseStage,
    params: dict[str, Any],
    data: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, BaseRun]:
    """Generate one base clustering column (serial, its own seed stream)."""
    spec = stage.spec()
    view = data
    if stage.feature_fraction < 1.0:
        d = data.shape[1]
        keep = max(1, int(round(stage.feature_fraction * d)))
        columns = np.sort(rng.choice(d, size=keep, replace=False))
        view = data[:, columns]
    call = dict(params)
    if spec.stochastic and "rng" not in call:
        call["rng"] = rng
    with span("pipeline.base", clusterer=stage.clusterer) as base_span:
        labels = np.asarray(spec.func(view, **call)).astype(np.int64, copy=True)
        if stage.missing_rate > 0.0:
            mask = rng.random(labels.shape[0]) < stage.missing_rate
            labels[mask] = MISSING
        k = int(np.unique(labels[labels != MISSING]).size)
        base_span.set(k=k)
    run = BaseRun(
        clusterer=stage.clusterer,
        params={key: _json_value(value) for key, value in params.items()},
        k=k,
        missing=int(np.count_nonzero(labels == MISSING)),
        elapsed_seconds=base_span.seconds,
    )
    return labels, run


def _truth_labels(dataset: Points2D | CategoricalDataset) -> np.ndarray | None:
    if isinstance(dataset, Points2D):
        return dataset.truth
    return dataset.classes


def _score(
    name: str,
    clustering: Clustering,
    truth: np.ndarray | None,
    disagreements: float | None,
    dataset_name: str,
) -> float:
    if name == "disagreement":
        if disagreements is None:  # pragma: no cover - matrix is always known here
            raise PipelineError("disagreement metric needs the input label matrix")
        return float(disagreements)
    if truth is None:
        raise PipelineError(
            f"dataset {dataset_name!r} has no ground-truth labels; metric {name!r} "
            "needs them — drop it from [score].metrics or use a dataset with classes"
        )
    scorers = {
        "ari": adjusted_rand_index,
        "nmi": normalized_mutual_information,
        "rand": rand_index,
        "vi": variation_of_information,
        "purity": purity,
        "classification-error": classification_error,
    }
    return float(scorers[name](clustering, truth))


def run_pipeline(config: PipelineConfig, n_jobs: int | None = None) -> PipelineResult:
    """Run a validated pipeline config end-to-end and return its report.

    Parameters
    ----------
    config:
        A :class:`~repro.pipeline.config.PipelineConfig` from
        :func:`~repro.pipeline.config.load_config` /
        :func:`~repro.pipeline.config.parse_config`.
    n_jobs:
        Worker count for the aggregation stage (``None`` consults
        ``REPRO_JOBS``); the result is bit-identical for every value.
    """
    jobs = _base_jobs(config)
    # One stream per position, spawned up front: dataset, each base job,
    # then the aggregation.  The spawn count is a pure function of the
    # config, so results never depend on scheduling or worker topology.
    streams = [
        np.random.default_rng(s)
        for s in np.random.SeedSequence(config.seed).spawn(len(jobs) + 2)
    ]
    dataset_rng, aggregate_rng = streams[0], streams[-1]

    with span("pipeline", pipeline=config.name) as root:
        with span("pipeline.dataset", source=config.dataset.source) as data_span:
            dataset = _build_dataset(config, dataset_rng)
            data_span.set(n=dataset.n)

        if jobs:
            raw = dataset.points if isinstance(dataset, Points2D) else dataset.data
            columns: list[np.ndarray] = []
            base_runs: list[BaseRun] = []
            for position, (stage, params) in enumerate(jobs):
                labels, run = _run_base_job(stage, params, raw, streams[1 + position])
                columns.append(labels)
                base_runs.append(run)
            matrix = np.column_stack(columns).astype(np.int32)
        else:
            # Categorical datasets need no base stage: their attribute
            # columns are the input clusterings (the paper's §2 mapping).
            matrix = np.asarray(dataset.label_matrix())
            base_runs = []
        validate_label_matrix(matrix)

        stage = config.aggregate
        spec = stage.spec()
        params = dict(stage.params)
        if spec.stochastic and "rng" not in params:
            params["rng"] = aggregate_rng
        with span("pipeline.aggregate", method=stage.method) as agg_span:
            if stage.role == "aggregate":
                outcome = aggregate(
                    matrix,
                    method=stage.method,
                    p=stage.p,
                    compute_lower_bound=stage.lower_bound,
                    collapse=stage.collapse,
                    n_jobs=n_jobs,
                    **params,
                )
                clustering = outcome.clustering
                disagreements = outcome.disagreements
                cost = outcome.cost
                lower_bound = outcome.lower_bound
            else:
                # Related-work baselines follow the (matrix, **params)
                # convention; normalize result objects to a Clustering.
                if "p" in inspect.signature(spec.func).parameters:
                    params.setdefault("p", stage.p)
                result = spec.func(matrix, **params)
                clustering = getattr(result, "clustering", result)
                disagreements = total_disagreement(matrix, clustering, p=stage.p)
                cost = disagreements / matrix.shape[1]
                lower_bound = None
            agg_span.set(k=clustering.k)

        with span("pipeline.score", metrics=list(config.metrics)):
            truth = _truth_labels(dataset)
            scores = {
                name: _score(name, clustering, truth, disagreements, dataset.name)
                for name in config.metrics
            }

    return PipelineResult(
        name=config.name,
        dataset=dataset.name,
        n=dataset.n,
        m=int(matrix.shape[1]),
        method=stage.method,
        clustering=clustering,
        disagreements=disagreements,
        cost=cost,
        lower_bound=lower_bound,
        scores=scores,
        bases=tuple(base_runs),
        elapsed_seconds=root.seconds,
        seed=config.seed,
    )
