"""Checkpointing for long-running streaming aggregation.

A :class:`~repro.stream.engine.StreamingAggregator` owns three kinds of
state: the incremental separation counts (dense arrays), the current
consensus labels, and scalar configuration plus the RNG stream.  All of it
fits naturally in a single ``.npz`` archive:

======================  =====================================================
key                     contents
======================  =====================================================
``separation``          ``(n, n)`` decayed separation-count accumulator
``comparable``          ``(n, n)`` comparable-pair counts (``missing="average"``
                        only; absent otherwise)
``consensus``           consensus label vector (absent before the first update)
``weight``, ``count``   decayed total weight and raw observation count
``meta``                JSON blob: instance config (``n``, ``p``, ``missing``,
                        ``decay``, ``dtype``), engine config
                        (``sampling_threshold``, ``sample_size``,
                        ``max_sweeps``, ``resync_every``), RNG
                        bit-generator state, and a format version
======================  =====================================================

:func:`save_checkpoint` / :func:`load_checkpoint` round-trip an engine
exactly: the restored engine produces bit-identical updates for the same
subsequent ``observe`` calls (counts, consensus, and RNG stream all
resume).  The per-update history is observability data and is not
persisted; neither is the warm-path move evaluator, which is derived
state the engine rebuilds on the next update.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from .engine import StreamingAggregator

__all__ = ["save_checkpoint", "load_checkpoint", "CHECKPOINT_VERSION"]

#: Bump when the archive layout changes incompatibly.
CHECKPOINT_VERSION = 1


def save_checkpoint(engine: StreamingAggregator, path: str | Path) -> Path:
    """Write the engine's full state to ``path`` (``.npz``); returns the path."""
    path = Path(path)
    state = engine.state()
    instance_state = state["instance"]
    meta = {
        "version": CHECKPOINT_VERSION,
        "instance": instance_state["config"],
        "engine": state["config"],
        "rng_state": state["rng_state"],
    }
    arrays: dict[str, Any] = {
        "separation": instance_state["separation"],
        "weight": np.float64(instance_state["weight"]),
        "count": np.int64(instance_state["count"]),
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }
    if instance_state["comparable"] is not None:
        arrays["comparable"] = instance_state["comparable"]
    if state["consensus"] is not None:
        arrays["consensus"] = np.asarray(state["consensus"], dtype=np.int64)
    np.savez_compressed(path, **arrays)
    return path


def _check_config(saved: dict[str, Any], expected: dict[str, Any], path: Path) -> None:
    """Reject a checkpoint whose saved config disagrees with the caller's.

    Silently adopting mismatched state would poison every later update:
    a wrong ``n`` breaks indexing outright, while a wrong ``p``,
    ``missing`` mode, or ``decay`` quietly changes the objective the
    restored engine optimizes.  The ``n`` message keeps the historical
    "checkpoint covers N objects" phrasing callers grep for.
    """
    expected_n = expected.get("n")
    if expected_n is not None and int(saved["n"]) != int(expected_n):
        raise ValueError(
            f"checkpoint covers {int(saved['n'])} objects but {int(expected_n)} "
            f"were requested ({path})"
        )
    for key in ("p", "decay"):
        wanted = expected.get(key)
        if wanted is not None and float(saved[key]) != float(wanted):
            raise ValueError(
                f"checkpoint was written with {key}={saved[key]} but {key}={wanted} "
                f"was requested ({path})"
            )
    wanted_missing = expected.get("missing")
    if wanted_missing is not None and saved["missing"] != wanted_missing:
        raise ValueError(
            f"checkpoint was written with missing={saved['missing']!r} but "
            f"missing={wanted_missing!r} was requested ({path})"
        )


def load_checkpoint(
    path: str | Path,
    *,
    n: int | None = None,
    p: float | None = None,
    missing: str | None = None,
    decay: float | None = None,
) -> StreamingAggregator:
    """Restore a :class:`StreamingAggregator` saved by :func:`save_checkpoint`.

    The keyword arguments are optional *expectations*: pass the config the
    caller is about to resume with and the load fails with a
    :class:`ValueError` when the checkpoint was written under a different
    ``n``/``p``/``missing``/``decay`` instead of silently adopting
    inconsistent state.  Omitted (``None``) expectations are not checked.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        version = meta.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        _check_config(
            meta["instance"], {"n": n, "p": p, "missing": missing, "decay": decay}, path
        )
        state: dict[str, Any] = {
            "instance": {
                "separation": archive["separation"],
                "comparable": archive["comparable"] if "comparable" in archive else None,
                "weight": float(archive["weight"]),
                "count": int(archive["count"]),
                "config": meta["instance"],
            },
            "consensus": archive["consensus"] if "consensus" in archive else None,
            "rng_state": meta["rng_state"],
            "config": meta["engine"],
        }
        return StreamingAggregator.from_state(state)
