"""Streaming aggregation: incremental consensus over arriving clusterings.

The paper's algorithms are batch — every new input clustering would force
a full rebuild of the ``X`` matrix and a from-scratch optimization.  This
subsystem maintains the consensus *online*:

* :class:`IncrementalCorrelationInstance` — running separation counts
  updated in one O(n²) vectorized pass per arriving clustering, with
  optional exponential decay for drifting streams; shares the
  :func:`~repro.core.instance.pair_separation_block` kernel with the
  batch build, so (at ``decay=1``) the two are bit-identical.
* :class:`StreamingAggregator` — ``engine.observe(labels)`` folds a
  clustering in and re-optimizes by warm-starting LOCALSEARCH from the
  previous consensus (SAMPLING fallback past a size threshold), with a
  per-update observability record.
* :func:`save_checkpoint` / :func:`load_checkpoint` — ``.npz``
  round-trip of the full engine state for long-running processes.

Also reachable as ``aggregate(..., method="streaming")`` and the CLI's
``repro-aggregate stream`` subcommand.
"""

from .checkpoint import load_checkpoint, save_checkpoint
from .engine import StreamingAggregator, StreamStats, StreamUpdate
from .instance import IncrementalCorrelationInstance

__all__ = [
    "IncrementalCorrelationInstance",
    "StreamingAggregator",
    "StreamStats",
    "StreamUpdate",
    "save_checkpoint",
    "load_checkpoint",
]
